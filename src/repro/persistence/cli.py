"""Operations CLI for persistence stores — ``python -m repro.persistence``.

Three subcommands, all offline (they open the store read-mostly and
never need a running mediator):

* ``verify PATH`` — load snapshot + log, reconstitute the audit-journal
  chain across the snapshot boundary, and re-verify every sha256 link.
  Exit 0 when the chain holds, 1 when it does not — the runbook's
  post-recovery check.
* ``stats PATH`` — backend counters (log length, snapshot presence,
  last seq) as JSON.
* ``migrate SRC DST`` — copy snapshot and log records between backends
  (e.g. a JSONL WAL directory into a sqlite file), preserving sequence
  numbers so the destination recovers identically.

``PATH`` selects the backend by shape: ``*.sqlite``/``*.db`` opens the
sqlite store, anything else is treated as a WAL directory.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import PersistenceError
from repro.observatory.journal import verify_records
from repro.persistence import resolve_persistence
from repro.persistence.recovery import journal_dicts_from


def open_sink(path):
    """Open the store at ``path`` (sqlite file or WAL directory)."""
    sink = resolve_persistence(str(path))
    if sink is None:
        raise PersistenceError(f"no persistence store at {path!r}")
    return sink


def verify_store(path):
    """Verify the journal chain in the store; returns a report dict."""
    sink = open_sink(path)
    try:
        snapshot, records = sink.load()
        chain = journal_dicts_from(snapshot, records)
        ok, bad_seq = verify_records(chain)
        return {
            "path": str(path),
            "backend": sink.backend.name,
            "snapshot_through_seq": (snapshot["through_seq"]
                                     if snapshot else 0),
            "log_records": len(records),
            "journal_records": len(chain),
            "chain_valid": ok,
            "first_bad_seq": bad_seq,
        }
    finally:
        sink.close()


def migrate_store(src, dst):
    """Copy snapshot + log from ``src`` to ``dst``; returns a summary.

    Sequence numbers are preserved verbatim, so ``recover()`` against
    the destination replays the identical state.  The destination must
    be empty — migrating onto live records would interleave histories.
    """
    source = open_sink(src)
    destination = open_sink(dst)
    try:
        if destination.backend.last_seq() != 0:
            raise PersistenceError(
                f"migration destination {dst!r} is not empty "
                f"(last_seq={destination.backend.last_seq()})"
            )
        snapshot, records = source.load()
        if snapshot is not None:
            destination.backend.compact(snapshot["state"],
                                        snapshot["through_seq"])
        for record in records:
            destination.backend.append(record)
        return {
            "src": str(src),
            "dst": str(dst),
            "src_backend": source.backend.name,
            "dst_backend": destination.backend.name,
            "snapshot_migrated": snapshot is not None,
            "records_migrated": len(records),
        }
    finally:
        source.close()
        destination.close()


def stats_store(path):
    """The store's backend stats, plus its last sequence number."""
    sink = open_sink(path)
    try:
        return sink.stats()
    finally:
        sink.close()


def main(argv=None):
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.persistence",
        description="Inspect, verify, and migrate persistence stores.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    verify = commands.add_parser(
        "verify", help="re-verify the journal hash chain in a store"
    )
    verify.add_argument("path")
    stats = commands.add_parser("stats", help="backend counters as JSON")
    stats.add_argument("path")
    migrate = commands.add_parser(
        "migrate", help="copy snapshot + log between backends"
    )
    migrate.add_argument("src")
    migrate.add_argument("dst")
    arguments = parser.parse_args(argv)

    try:
        if arguments.command == "verify":
            report = verify_store(arguments.path)
            # repro-lint: disable=REP008 -- CLI entry point: human output
            print(json.dumps(report, indent=2, sort_keys=True))
            return 0 if report["chain_valid"] else 1
        if arguments.command == "stats":
            # repro-lint: disable=REP008 -- CLI entry point: human output
            print(json.dumps(stats_store(arguments.path), indent=2,
                             sort_keys=True))
            return 0
        report = migrate_store(arguments.src, arguments.dst)
        # repro-lint: disable=REP008 -- CLI entry point: human output
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    except PersistenceError as error:
        print(  # repro-lint: disable=REP008 -- CLI error rendering
            json.dumps({"error": str(error)}),
            file=sys.stderr,  # repro-lint: disable=REP008 -- CLI stderr
        )
        return 1
