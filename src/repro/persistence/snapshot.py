"""Snapshot state capture — the privacy state folded into one dict.

A snapshot is the durability layer's checkpoint: everything `recover()
<repro.persistence.recovery.recover>` needs that is *not* replayable
from the newer log records.  :func:`capture_state` reads it off a live
:class:`~repro.mediator.engine.MediationEngine` (duck-typed — any
object exposing ``history``/``cache``/``observatory`` works, which is
what keeps this module importable below the mediator layer):

* ``history`` — every :class:`~repro.mediator.history.HistoryEntry`
  (the SequenceGuard derives all its state from these);
* ``epochs`` — the cache's epoch counters (floor-restored, so caches
  can only over-invalidate after a crash, never under-invalidate);
* ``journal`` — the audit-journal records **verbatim, hashes
  included**, so the chain re-verifies across the snapshot boundary
  exactly as it does across records;
* ``watch`` — each requester's SnooperWatch knowledge ledger plus the
  pose cadence counters.

The capture is what the sink's ``state_provider`` calls at compaction
time, while the sink lock serializes it against concurrent appends.
"""

from __future__ import annotations

from repro.errors import PersistenceError

#: Bump when the snapshot layout changes incompatibly; ``recover()``
#: refuses a snapshot from a future version rather than misread it.
STATE_VERSION = 1


def capture_state(engine):
    """Fold the engine's privacy state into one JSON-serializable dict.

    Captures exactly the components that exist: an engine without an
    observatory contributes no ``journal``/``watch`` section, one
    without a cache no ``epochs`` section.  Safe to call at any pose
    boundary — each component snapshot takes that component's own lock.
    """
    state = {
        "version": STATE_VERSION,
        "history": engine.history.state_dict(),
    }
    if engine.cache is not None:
        state["epochs"] = engine.cache.epochs.to_dict()
    if engine.observatory is not None:
        state["journal"] = [
            record.to_dict()
            for record in engine.observatory.journal.records()
        ]
        state["watch"] = engine.observatory.watch.state_dict()
    return state


def validate_state(state):
    """Reject snapshots this code cannot faithfully restore.

    A malformed or future-versioned snapshot is fatal
    (:class:`~repro.errors.PersistenceError`): guessing at privacy
    state would void the cumulative-disclosure guarantee the layer
    exists to protect.
    """
    if not isinstance(state, dict):
        raise PersistenceError(
            f"snapshot state must be a dict, not {type(state).__name__}"
        )
    version = state.get("version")
    if version != STATE_VERSION:
        raise PersistenceError(
            f"snapshot state version {version!r} is not supported "
            f"(this build reads version {STATE_VERSION})"
        )
    return state
