"""Recovery — replaying snapshot + log into a freshly built mediator.

The restart protocol: rebuild the system exactly as at first boot
(sources, policies, the same ``persistence=`` argument), then call
``PrivateIye.recover()`` — which lands here — *before* serving queries.
:func:`recover` then

1. loads the backend's ``(snapshot, records)``;
2. restores :class:`~repro.mediator.history.MediatorHistory` from the
   snapshot entries plus each logged pose's history delta — the
   SequenceGuard needs nothing else, so **a refusal that was final
   before the crash is final after it**;
3. re-verifies the audit journal's sha256 chain across the restart
   boundary (snapshot head + log tail form one chain) and restores it,
   which also restores the per-requester cumulative disclosure
   ``1 − Π(1 − loss_i)``;
4. rebuilds each requester's SnooperWatch ledger (snapshot knowledge +
   logged cells/publications) and replays a check pass — alerts
   deliberately re-fire after a restart (at-least-once alerting:
   ``_alerted`` dedup state is process-local by design, so an operator
   who lost the alert to the crash gets it again);
5. floor-restores cache epoch counters from the snapshot and the
   logged bump records, and re-seeds probe-novelty sets from history —
   a rebuilt cache can only over-invalidate, never serve an entry
   validated under pre-crash state.

Every step is suspended-sink replay: nothing recovered is re-appended.
Any parse failure, version mismatch, or chain break is a fatal
:class:`~repro.errors.PersistenceError` — serving queries over privacy
accounting that may have lost releases would void the guarantee.
"""

from __future__ import annotations

from repro.errors import PersistenceError
from repro.observatory.journal import verify_records
from repro.persistence import KIND_EPOCH, KIND_POSE, KIND_PUBLICATION
from repro.persistence.snapshot import validate_state


class RecoveryReport:
    """What one :func:`recover` call rebuilt — the operator's receipt."""

    def __init__(self, backend, snapshot_through_seq, log_records,
                 history_entries, journal_records, cumulative_loss,
                 epochs, requesters, alerts):
        self.backend = backend
        self.snapshot_through_seq = snapshot_through_seq
        self.log_records = log_records
        self.history_entries = history_entries
        self.journal_records = journal_records
        self.chain_valid = True   # recover() raises before building
        self.cumulative_loss = cumulative_loss
        self.epochs = epochs
        self.requesters = requesters
        self.alerts = alerts

    def to_dict(self):
        """JSON-serializable form (ops runbooks print this)."""
        return {
            "backend": self.backend,
            "snapshot_through_seq": self.snapshot_through_seq,
            "log_records": self.log_records,
            "history_entries": self.history_entries,
            "journal_records": self.journal_records,
            "chain_valid": self.chain_valid,
            "cumulative_loss": self.cumulative_loss,
            "epochs": self.epochs,
            "requesters": self.requesters,
            "alerts": [a.to_dict() for a in self.alerts],
        }

    def __repr__(self):
        return (f"RecoveryReport(history={self.history_entries}, "
                f"journal={self.journal_records}, "
                f"alerts={len(self.alerts)})")


def journal_dicts_from(snapshot, records):
    """The full journal chain: snapshot head + logged pose tails.

    Snapshots store journal records verbatim (hashes included) and the
    log stores each pose's record the same way, so concatenating them
    in order reconstitutes one chain that :func:`~repro.observatory.
    journal.verify_records` can walk from the genesis hash — this is
    what makes ``verify_chain()`` meaningful *across* the snapshot
    boundary and the restart.
    """
    state = snapshot["state"] if snapshot else {}
    chain = list(state.get("journal") or [])
    for record in records:
        if record.get("kind") == KIND_POSE and record.get("journal"):
            chain.append(record["journal"])
    return chain


def recover(engine):
    """Rebuild the engine's privacy state from its persistence sink.

    Call on a freshly built engine (same sources/policies, empty
    history) whose ``persistence`` points at the pre-crash store.
    Returns a :class:`RecoveryReport`; raises
    :class:`~repro.errors.PersistenceError` on any corruption, chain
    break, or attempt to recover into a non-empty engine.
    """
    sink = engine.persistence
    if sink is None:
        raise PersistenceError(
            "recover() needs persistence enabled "
            "(PrivateIye(persistence=...))"
        )
    snapshot, records = sink.load()
    state = validate_state(snapshot["state"]) if snapshot else {}

    chain = journal_dicts_from(snapshot, records)
    ok, bad_seq = verify_records(chain)
    if not ok:
        raise PersistenceError(
            f"audit journal chain fails verification at seq {bad_seq}; "
            "refusing to recover on top of tampered or damaged accounting"
        )

    entries = list(state.get("history", {}).get("entries", []))
    pose_records = [r for r in records if r.get("kind") == KIND_POSE]
    for record in pose_records:
        if record.get("history"):
            entries.append(record["history"])

    observatory = engine.observatory
    with sink.suspended():
        engine.history.restore(entries)
        if observatory is not None:
            if chain:
                observatory.journal.restore(chain)
            _restore_watch(observatory.watch, state, records)
        if engine.cache is not None:
            _restore_cache(engine.cache, state, records, engine.history)

    alerts = []
    if observatory is not None:
        for requester in observatory.watch.requesters():
            alerts.extend(observatory.watch.check(requester))

    cumulative = {}
    for record in chain:
        if record.get("status") == "answered":
            cumulative[record["requester"]] = record["cumulative_loss"]
    return RecoveryReport(
        backend=sink.backend.name,
        snapshot_through_seq=snapshot["through_seq"] if snapshot else 0,
        log_records=len(records),
        history_entries=len(entries),
        journal_records=len(chain),
        cumulative_loss=cumulative,
        epochs=(engine.cache.epochs.to_dict()
                if engine.cache is not None else {}),
        requesters=sorted({e["requester"] for e in entries}
                          | set(cumulative)),
        alerts=alerts,
    )


def _restore_watch(watch, state, records):
    """Snapshot knowledge first, then the logged releases, in order.

    ``note_*`` calls are idempotent on identical values, so a record
    that straddled compaction (in both snapshot and log after a crash
    between the two steps) cannot double-count — the second fold simply
    overwrites the first with the same value.
    """
    watch_state = state.get("watch")
    if watch_state:
        watch.restore_state(watch_state)
    for record in records:
        kind = record.get("kind")
        requester = record.get("requester")
        if kind == KIND_POSE and record.get("status") == "answered":
            for measure, source, value in record.get("cells") or ():
                watch.note_cell(requester, measure, source, value)
            if record.get("pose_counted"):
                watch.absorb_poses({requester: 1})
        elif kind == KIND_PUBLICATION:
            for measure, stat in (record.get("row_stats") or {}).items():
                mean, std = stat
                watch.note_row_stat(requester, measure, mean, std=std,
                                    over=record.get("sources"))
            for source, mean in (record.get("source_means") or {}).items():
                watch.note_source_mean(requester, source, mean,
                                       over=record.get("measures"))
            for source, values in (record.get("own_data") or {}).items():
                watch.note_own_data(requester, source, values)


def _restore_cache(cache, state, records, history):
    """Epoch floors from snapshot + bump records; probe sets from history.

    ``restore_floor`` takes the max with the live counter, so epochs
    bumped *during rebuild* (source registration bumps the schema
    epoch before recover() runs) are never rolled back.  Probe sets
    are re-seeded without bumping — the recorded epoch values already
    include those bumps.
    """
    for name, value in (state.get("epochs") or {}).items():
        cache.epochs.restore_floor(name, value)
    for record in records:
        if record.get("kind") == KIND_EPOCH:
            cache.epochs.restore_floor(record["name"], record["value"])
    for entry in history.entries():
        if entry.is_aggregate and not entry.refused:
            cache.restore_probe(entry.requester, sorted(entry.attributes),
                                entry.predicate_signature)
