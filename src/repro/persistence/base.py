"""Backend interface of the durability layer, plus the in-memory stand-in.

A backend is a dumb, durable record store: the :class:`~repro.persistence.
PersistenceSink` above it decides *what* to write (one record per pose,
publication, or epoch bump) and *when* to compact; the backend only
guarantees that an :meth:`~PersistenceBackend.append` that returned has
reached its medium, and that :meth:`~PersistenceBackend.load` returns
exactly the accepted records.  Two real implementations ship —
:class:`~repro.persistence.wal.WalBackend` (append-only JSONL +
snapshot file) and :class:`~repro.persistence.sqlite.SqliteBackend`
(WAL-mode sqlite) — plus :class:`MemoryBackend` for tests.

Records are flat JSON-serializable dicts carrying a strictly increasing
``seq`` assigned by the sink.  A snapshot is ``(state, through_seq)``:
``state`` folds every record with ``seq <= through_seq``, so ``load()``
must never return log records at or below the snapshot's
``through_seq`` — that filter is what makes compaction crash-safe (a
crash between snapshot publication and log truncation merely leaves
already-folded records for the filter to drop).
"""

from __future__ import annotations

import abc

from repro.errors import PersistenceError


class PersistenceBackend(abc.ABC):
    """Durable record store under a :class:`~repro.persistence.PersistenceSink`.

    Durability contract: once :meth:`append` returns, the record must
    survive a process crash (for the memory backend: survive the
    *object*, which is the medium tests share across simulated
    restarts).  ``load()`` after any crash returns the newest published
    snapshot plus every accepted record newer than it, in append order.
    """

    #: Human-readable backend name (benchmarks, recovery reports, CLI).
    name = "backend"

    @abc.abstractmethod
    def append(self, record):
        """Durably append one record dict; returns its ``seq``.

        Must not return until the record would survive a crash.  Raises
        :class:`~repro.errors.PersistenceError` if the record cannot be
        made durable — the caller treats that as a failed pose, never a
        silently-lost one.
        """

    @abc.abstractmethod
    def load(self):
        """Return ``(snapshot, records)`` — the recovery inputs.

        ``snapshot`` is the newest compacted state dict (with its
        ``through_seq`` under the ``"through_seq"`` key and the folded
        state under ``"state"``) or ``None``; ``records`` are the log
        records with ``seq`` strictly greater than the snapshot's
        ``through_seq``, oldest first.  Raises
        :class:`~repro.errors.PersistenceError` on corruption that loses
        accepted records (a torn *final* WAL line — an append that never
        returned — is tolerated and reported via :meth:`stats`).
        """

    @abc.abstractmethod
    def compact(self, state, through_seq):
        """Atomically publish ``state`` as the snapshot through ``through_seq``.

        After a successful compaction, records with ``seq <=
        through_seq`` may be dropped from the log.  A crash at any point
        inside ``compact`` must leave the backend recoverable: either
        the old snapshot + full log, or the new snapshot + a log whose
        already-folded prefix ``load()`` filters out.
        """

    @abc.abstractmethod
    def last_seq(self):
        """The highest ``seq`` ever accepted (snapshot or log), else 0.

        The sink resumes numbering from here when it attaches to an
        existing store, so sequence numbers stay unique across restarts.
        """

    def stats(self):
        """Diagnostic counters (shape is backend-specific, JSON-safe)."""
        return {"backend": self.name}

    def close(self):
        """Release file handles/connections; further appends may fail."""

    def __repr__(self):
        return f"{type(self).__name__}()"


class MemoryBackend(PersistenceBackend):
    """List-backed backend whose medium is the Python object itself.

    Survives a *simulated* restart — tests discard the system but keep
    the backend instance — which is exactly the boundary the recovery
    protocol is defined over.  Provides no real crash durability, so it
    is never a production choice; it exists so recovery logic can be
    exercised without touching disk.
    """

    name = "memory"

    def __init__(self):
        self._snapshot = None
        self._log = []
        self._last_seq = 0

    def append(self, record):
        """Append to the in-object log; durable only as long as the object."""
        seq = int(record["seq"])
        self._log.append(dict(record))
        self._last_seq = max(self._last_seq, seq)
        return seq

    def load(self):
        """Return the held snapshot and the records newer than it."""
        through = self._snapshot["through_seq"] if self._snapshot else 0
        records = [dict(r) for r in self._log if r["seq"] > through]
        snapshot = dict(self._snapshot) if self._snapshot else None
        return snapshot, records

    def compact(self, state, through_seq):
        """Replace the snapshot and drop the folded log prefix."""
        if through_seq < 0:
            raise PersistenceError("through_seq must be >= 0")
        self._snapshot = {"through_seq": through_seq, "state": state}
        self._log = [r for r in self._log if r["seq"] > through_seq]
        self._last_seq = max(self._last_seq, through_seq)

    def last_seq(self):
        """Highest seq accepted so far (0 on a fresh backend)."""
        return self._last_seq

    def stats(self):
        """Log length and snapshot presence."""
        return {
            "backend": self.name,
            "log_records": len(self._log),
            "has_snapshot": self._snapshot is not None,
        }
