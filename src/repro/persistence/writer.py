"""A dedicated writer thread in front of any persistence backend.

:class:`ThreadedWriter` wraps a :class:`~repro.persistence.base.
PersistenceBackend` and funnels every append through one long-lived
writer thread.  The motivation is the sharded-service roadmap item: a
single owning thread serializes the log without the sink lock being
held across fsync, and gives the WAL a stable thread identity that
telemetry can attribute I/O stalls to (``persistence.wal.append`` spans,
profiler samples on ``repro-wal-writer``).

**The durability contract survives the indirection**: :meth:`append`
blocks the calling thread until the writer thread has durably appended
the record (or re-raises the writer's exception), so "when ``append``
returns, the record is durable" holds exactly as it does for the
wrapped backend — the write-ahead point does not move, it just executes
on another thread.

**Trace propagation**: each record carrying a ``trace_id`` (stamped by
the engine inside the ``mediator.pose`` span) is restored into a
:class:`~repro.telemetry.obs.context.TraceContext` on the writer
thread, so the append span joins the *pose's* trace even though it runs
threads away from it — the serialization boundary the ISSUE's
process-pool design point is about: the id travels in the record, not
in a live object.
"""

from __future__ import annotations

import queue
import threading

from repro.errors import PersistenceError
from repro.persistence.base import PersistenceBackend
from repro.telemetry import NOOP
from repro.telemetry.obs.context import TraceContext

#: Sentinel shutting down the writer thread.
_CLOSE = object()


class _Ticket:
    """One append's rendezvous: the caller waits, the writer resolves."""

    __slots__ = ("record", "done", "result", "error")

    def __init__(self, record):
        self.record = record
        self.done = threading.Event()
        self.result = None
        self.error = None

    def resolve(self, result=None, error=None):
        """Writer side: publish the outcome and wake the caller."""
        self.result = result
        self.error = error
        self.done.set()


class ThreadedWriter(PersistenceBackend):
    """Single-writer-thread front for a persistence backend.

    Wrap any backend (``ThreadedWriter(WalBackend(path))``) and pass the
    result to ``PrivateIye(persistence=...)``; the sink sees a normal
    backend.  ``telemetry`` may be injected at construction or adopted
    later via :meth:`adopt_telemetry` (the sink calls it from ``bind``),
    so the writer traces with the engine's telemetry, not its own.
    """

    name = "threaded"

    def __init__(self, backend, telemetry=None, max_queue=256):
        if not isinstance(backend, PersistenceBackend):
            raise PersistenceError(
                "ThreadedWriter needs a PersistenceBackend, not "
                f"{type(backend).__name__}"
            )
        self.wal = backend
        self.telemetry = telemetry if telemetry is not None else NOOP
        self.name = f"threaded-{backend.name}"
        self._queue = queue.Queue(maxsize=max_queue)
        self._closed = False
        self.appended = 0
        self._thread = threading.Thread(
            target=self._drain, name="repro-wal-writer", daemon=True
        )
        self._thread.start()

    def adopt_telemetry(self, telemetry):
        """Trace future appends with ``telemetry`` (engine wiring hook).

        Called by :meth:`PersistenceSink.bind
        <repro.persistence.PersistenceSink.bind>` so writer spans land
        in the same tracer as the poses that caused them.  Safe to call
        while appends are in flight: the writer reads the attribute per
        record.
        """
        self.telemetry = telemetry

    # -- the durable path ----------------------------------------------------

    def append(self, record):
        """Enqueue for the writer thread; block until durably appended.

        Preserves the write-ahead contract: control does not return to
        the sink (and therefore the answer is not released) until the
        wrapped backend's ``append`` has returned on the writer thread.
        A writer-side failure re-raises here as
        :class:`~repro.errors.PersistenceError` — a failed pose, never a
        silently-lost record.
        """
        if self._closed:
            raise PersistenceError("ThreadedWriter is closed")
        ticket = _Ticket(record)
        self._queue.put(ticket)
        ticket.done.wait()
        if ticket.error is not None:
            raise ticket.error
        return ticket.result

    def _drain(self):
        """Writer-thread loop: restore trace context, append, resolve."""
        while True:
            ticket = self._queue.get()
            if ticket is _CLOSE:
                return
            tracer = self.telemetry.tracer
            context = TraceContext.from_dict(ticket.record)
            try:
                with context.activate(tracer):
                    with tracer.span(
                        "persistence.wal.append",
                        kind=ticket.record.get("kind"),
                        seq=ticket.record.get("seq"),
                    ):
                        result = self.wal.append(ticket.record)
                self.appended += 1
            except BaseException as error:  # resolved, not swallowed:
                # the waiting caller re-raises it (REP005's intent).
                ticket.resolve(error=error)
            else:
                ticket.resolve(result=result)

    # -- pass-through backend surface ----------------------------------------

    def load(self):
        """Delegate to the wrapped backend (see its durability notes)."""
        return self.wal.load()

    def compact(self, state, through_seq):
        """Delegate compaction to the wrapped backend.

        Called by the sink under its own lock, from the append path —
        which on this backend runs in the *calling* thread, after the
        writer resolved the ticket, so compaction never races the
        writer on the medium for the record being compacted.
        """
        return self.wal.compact(state, through_seq)

    def last_seq(self):
        """Delegate to the wrapped backend."""
        return self.wal.last_seq()

    def stats(self):
        """Wrapped backend's stats plus the writer's own counters."""
        info = self.wal.stats()
        info["writer_thread"] = self._thread.name
        info["writer_appended"] = self.appended
        return info

    def close(self):
        """Stop the writer thread, then close the wrapped backend.

        Appends already accepted (ticket enqueued) are drained and made
        durable before the thread exits; later appends raise.
        """
        if self._closed:
            return
        self._closed = True
        self._queue.put(_CLOSE)
        self._thread.join(timeout=5.0)
        # A ticket that raced past the closed check lands behind the
        # sentinel: fail it loudly rather than leave its caller waiting.
        while True:
            try:
                ticket = self._queue.get_nowait()
            except queue.Empty:
                break
            if ticket is not _CLOSE:
                ticket.resolve(
                    error=PersistenceError("ThreadedWriter closed")
                )
        self.wal.close()

    def __repr__(self):
        return f"ThreadedWriter({self.wal!r})"
