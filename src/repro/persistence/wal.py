"""Append-only JSONL write-ahead log with snapshot + compaction.

The simplest durable layout that satisfies the backend contract: one
``wal.jsonl`` file of newline-delimited record dicts, plus one
``snapshot.json`` holding the newest compacted state.  Appends are
``write → flush → fsync`` so a returned append survives power loss;
snapshots are published with the classic ``tmp + fsync + os.replace``
dance so a reader never observes a half-written snapshot.

Crash anatomy, file by file:

* crash mid-append — the log ends in a torn final line.  That append
  never returned, so the pose it belonged to was never released;
  :meth:`WalBackend.load` drops the torn tail (and counts it in
  :meth:`WalBackend.stats`).  A torn line *followed by intact lines*
  is real corruption — an accepted record was damaged — and raises
  :class:`~repro.errors.PersistenceError`.
* crash between snapshot publish and log truncation — the log still
  holds records the snapshot already folded; ``load()`` filters them
  out by ``seq <= through_seq``, so replay never double-counts.
* crash mid-truncation — truncation is itself a ``tmp + os.replace``,
  so the log is either the old file or the rewritten one, never a
  prefix.
"""

from __future__ import annotations

import json
import os
import threading

from repro.errors import PersistenceError
from repro.persistence.base import PersistenceBackend

#: On-disk file names inside the backend's directory.
LOG_NAME = "wal.jsonl"
SNAPSHOT_NAME = "snapshot.json"


def _dump(record):
    """Canonical one-line JSON for a log record."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def write_atomic(path, text, fsync=True):
    """Write ``text`` to ``path`` via tmp + fsync + ``os.replace``.

    The replace is atomic on POSIX, so a reader (or a recovery after a
    crash anywhere inside this function) sees either the old file or
    the complete new one — never a torn intermediate.
    """
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(tmp, path)


class WalBackend(PersistenceBackend):
    """JSONL write-ahead log + snapshot file in one directory.

    Durability: :meth:`append` does not return before the line is
    flushed and (by default) fsynced, so every record the sink has
    acknowledged survives a crash.  ``fsync=False`` trades that for
    speed — the OS page cache still survives *process* crashes, just
    not power loss — and is what the benchmark's throughput ceiling
    measures.
    """

    name = "wal"

    def __init__(self, directory, fsync=True):
        self.directory = str(directory)
        self.fsync = fsync
        os.makedirs(self.directory, exist_ok=True)
        self._log_path = os.path.join(self.directory, LOG_NAME)
        self._snapshot_path = os.path.join(self.directory, SNAPSHOT_NAME)
        self._lock = threading.Lock()
        self._torn_tail_dropped = 0
        self._handle = open(self._log_path, "a", encoding="utf-8")

    def append(self, record):
        """Append one JSONL line; returns after flush+fsync (durable)."""
        line = _dump(record) + "\n"
        with self._lock:
            try:
                self._handle.write(line)
                self._handle.flush()
                if self.fsync:
                    os.fsync(self._handle.fileno())
            except (OSError, ValueError) as error:
                raise PersistenceError(
                    f"wal append failed on {self._log_path}: {error}"
                ) from error
        return record["seq"]

    def load(self):
        """Read snapshot + log; tolerates exactly one torn *final* line."""
        with self._lock:
            self._handle.flush()
            snapshot = self._read_snapshot()
            through = snapshot["through_seq"] if snapshot else 0
            records = [r for r in self._read_log() if r["seq"] > through]
        return snapshot, records

    def compact(self, state, through_seq):
        """Publish the snapshot atomically, then truncate the folded log.

        Two independently-atomic steps; a crash between them leaves
        folded records in the log for ``load()``'s ``through_seq``
        filter to drop, so the pair is crash-safe without needing to
        be jointly atomic.
        """
        with self._lock:
            self._handle.flush()
            write_atomic(
                self._snapshot_path,
                json.dumps({"through_seq": through_seq, "state": state},
                           sort_keys=True),
                fsync=self.fsync,
            )
            keep = [r for r in self._read_log() if r["seq"] > through_seq]
            self._handle.close()
            write_atomic(
                self._log_path,
                "".join(_dump(r) + "\n" for r in keep),
                fsync=self.fsync,
            )
            self._handle = open(self._log_path, "a", encoding="utf-8")

    def last_seq(self):
        """Highest seq across snapshot and log (0 on a fresh directory)."""
        with self._lock:
            self._handle.flush()
            snapshot = self._read_snapshot()
            last = snapshot["through_seq"] if snapshot else 0
            for record in self._read_log():
                last = max(last, record["seq"])
        return last

    def stats(self):
        """Log size/record counts plus torn-tail drops seen by loads."""
        with self._lock:
            self._handle.flush()
            log_bytes = (os.path.getsize(self._log_path)
                         if os.path.exists(self._log_path) else 0)
        return {
            "backend": self.name,
            "directory": self.directory,
            "log_bytes": log_bytes,
            "has_snapshot": os.path.exists(self._snapshot_path),
            "torn_tail_dropped": self._torn_tail_dropped,
            "fsync": self.fsync,
        }

    def close(self):
        """Flush and close the log handle."""
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()

    # -- internals (all called with self._lock held) ------------------------

    def _read_snapshot(self):
        """Parse ``snapshot.json``; a corrupt snapshot is fatal.

        The snapshot is only ever published atomically, so a parse
        failure means accepted state was damaged after the fact —
        unlike a torn log tail there is no benign explanation.
        """
        if not os.path.exists(self._snapshot_path):
            return None
        try:
            with open(self._snapshot_path, "r", encoding="utf-8") as handle:
                snapshot = json.load(handle)
        except (OSError, ValueError) as error:
            raise PersistenceError(
                f"corrupt wal snapshot {self._snapshot_path}: {error}"
            ) from error
        if not isinstance(snapshot, dict) or "through_seq" not in snapshot:
            raise PersistenceError(
                f"malformed wal snapshot {self._snapshot_path}: "
                "missing through_seq"
            )
        return snapshot

    def _read_log(self):
        """Parse the log; drop a torn tail, raise on interior corruption."""
        if not os.path.exists(self._log_path):
            return []
        with open(self._log_path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        while lines and not lines[-1].strip():
            lines.pop()
        records = []
        for position, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError as error:
                if position == len(lines) - 1:
                    # A torn final line is the signature of a crash
                    # mid-append: the write never returned, so nothing
                    # downstream of it was released.  Safe to drop.
                    # repro-lint: disable=REP001 -- load() holds self._lock
                    self._torn_tail_dropped += 1
                    break
                raise PersistenceError(
                    f"corrupt wal record at {self._log_path}:"
                    f"{position + 1}: {error}"
                ) from error
            if not isinstance(record, dict) or "seq" not in record:
                raise PersistenceError(
                    f"malformed wal record at {self._log_path}:"
                    f"{position + 1}: missing seq"
                )
            records.append(record)
        return records

    def __repr__(self):
        return f"WalBackend({self.directory!r})"
