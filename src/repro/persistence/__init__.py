"""Durable, restart-safe privacy state — the ``repro.persistence`` layer.

A PRIVATE-IYE mediator's inference-control guarantee is defined over the
*cumulative* sequence of releases, so the one thing it must never forget
across a restart is what each requester has already learned.  This
package puts that state — query history, cumulative disclosure loss,
the hash-chained audit journal, SnooperWatch knowledge, cache epochs —
behind a write-ahead log:

* :class:`PersistenceSink` — the engine-facing front.  One record per
  pose (requester, fingerprint, history delta, journal record,
  per-source losses, released cells), appended durably **before** the
  answer is released; plus records for out-of-band publications and
  epoch bumps.  Periodically folds the log into a snapshot and
  compacts.
* backends — :class:`~repro.persistence.wal.WalBackend` (append-only
  JSONL + snapshot file), :class:`~repro.persistence.sqlite.
  SqliteBackend` (WAL-mode sqlite), :class:`~repro.persistence.base.
  MemoryBackend` (tests).  Select via ``PrivateIye(persistence=...)``;
  the default ``None`` keeps today's in-memory behavior byte for byte.
* :func:`~repro.persistence.recovery.recover` — replays snapshot + log
  into a freshly built system, re-verifying the journal's sha256 chain
  across the restart boundary.

The write-ahead discipline means a crash can leave a pose *charged but
unreleased* — the conservative direction — and never the reverse; see
``docs/persistence.md`` for the full crash-consistency argument and the
operations runbook.
"""

from __future__ import annotations

import contextlib
import threading

from repro.errors import PersistenceError
from repro.persistence.base import MemoryBackend, PersistenceBackend
from repro.persistence.snapshot import capture_state
from repro.persistence.sqlite import SqliteBackend
from repro.persistence.wal import WalBackend
from repro.persistence.writer import ThreadedWriter

__all__ = [
    "KIND_EPOCH",
    "KIND_POSE",
    "KIND_PUBLICATION",
    "MemoryBackend",
    "PersistenceBackend",
    "PersistenceSink",
    "SqliteBackend",
    "ThreadedWriter",
    "WalBackend",
    "resolve_persistence",
]

#: Record kinds in the write-ahead log.
KIND_POSE = "pose"
KIND_PUBLICATION = "publication"
KIND_EPOCH = "epoch"

#: Default compaction cadence (records between snapshots).
DEFAULT_SNAPSHOT_EVERY = 256


class PersistenceSink:
    """The engine-facing front of a durability backend.

    Owns the global sequence numbering, the write-ahead ordering, and
    the compaction cadence.  The invariant every caller relies on:
    **when a ``record_*`` call returns, the record is durable** — the
    engine releases an answer only after :meth:`record_pose` returns,
    so a crash at any instant leaves the store describing a superset of
    what requesters were actually shown (charged-but-unreleased, never
    released-but-forgotten).

    ``crash_hook`` is the fault-injection point the crash-recovery
    tests use: it runs *after* the durable append and *before* the
    caller regains control — exactly the window the write-ahead
    discipline is about.
    """

    def __init__(self, backend, snapshot_every=DEFAULT_SNAPSHOT_EVERY,
                 crash_hook=None):
        if not isinstance(backend, PersistenceBackend):
            raise PersistenceError(
                "PersistenceSink needs a PersistenceBackend, not "
                f"{type(backend).__name__}"
            )
        if snapshot_every is not None and snapshot_every < 1:
            raise PersistenceError("snapshot_every must be >= 1 or None")
        self.backend = backend
        self.snapshot_every = snapshot_every
        self.crash_hook = crash_hook
        #: Zero-argument callable returning the snapshot state dict;
        #: set by :meth:`bind` (or directly by tests).
        self.state_provider = None
        self._lock = threading.Lock()
        self._seq = backend.last_seq()
        self._since_compact = 0
        self._suspended = False

    # -- wiring --------------------------------------------------------------

    def bind(self, engine):
        """Attach the sink to a mediation engine (called by the engine).

        Sets the snapshot ``state_provider``, subscribes to epoch bumps
        (so every bump lands in the log the moment it happens — no
        polling), and hands the observatory a reference so out-of-band
        publications are journaled write-ahead too.
        """
        with self._lock:
            self.state_provider = lambda: capture_state(engine)
        if engine.cache is not None:
            engine.cache.epochs.subscribe(self.record_epoch)
        if engine.observatory is not None:
            engine.observatory.persistence = self
        adopt = getattr(self.backend, "adopt_telemetry", None)
        if adopt is not None:
            # A ThreadedWriter backend traces its appends; binding hands
            # it the engine's telemetry so its ``persistence.wal.append``
            # spans join the poses' traces.
            adopt(engine.telemetry)

    # -- recording (all durable before return) -------------------------------

    def record_pose(self, effects):
        """Durably append one pose's privacy effects; returns its seq.

        ``effects`` carries requester, fingerprint, status, the history
        entry, the journal record (verbatim, hashes included), losses,
        and released cells.  The engine calls this *before* releasing
        the answer (or re-raising the refusal) — the write-ahead point.
        """
        record = dict(effects)
        record["kind"] = KIND_POSE
        return self._append(record)

    def record_publication(self, requester, row_stats=None,
                           source_means=None, own_data=None, sources=None,
                           measures=None):
        """Durably append one out-of-band publication (Figure 1 tables).

        Called by :meth:`Observatory.note_publication
        <repro.observatory.Observatory.note_publication>` before the
        knowledge is folded into the snooper ledger, so a crash cannot
        forget what a requester was already shown.
        """
        return self._append({
            "kind": KIND_PUBLICATION,
            "requester": requester,
            "row_stats": {
                measure: list(stat) for measure, stat in
                (row_stats or {}).items()
            },
            "source_means": dict(source_means or {}),
            "own_data": {source: dict(values) for source, values in
                         (own_data or {}).items()},
            "sources": list(sources) if sources is not None else None,
            "measures": list(measures) if measures is not None else None,
        })

    def record_epoch(self, name, value):
        """Durably append one epoch bump (subscribed to the registry).

        Epoch records make the counters *observable* instead of polled:
        recovery floor-restores from them, so a rebuilt cache can never
        serve an entry validated under a pre-crash epoch.
        """
        return self._append({"kind": KIND_EPOCH, "name": name,
                             "value": int(value)})

    # -- maintenance ---------------------------------------------------------

    @contextlib.contextmanager
    def suspended(self):
        """Context manager: drop appends while recovery replays state.

        Replaying history re-runs ``note_probe`` and friends, which
        would re-emit records that are already in the log; suspension
        makes the replay side-effect-free on the store.
        """
        with self._lock:
            self._suspended = True
        try:
            yield self
        finally:
            with self._lock:
                self._suspended = False

    def load(self):
        """The backend's ``(snapshot, records)`` — recovery's inputs."""
        return self.backend.load()

    def compact_now(self):
        """Snapshot + compact immediately; returns the folded seq.

        Requires a bound ``state_provider``.  Held under the sink lock
        so the captured state and the folded seq agree — no record can
        land between the capture and the compaction.
        """
        if self.state_provider is None:
            raise PersistenceError(
                "compact_now needs a state_provider (bind the sink first)"
            )
        with self._lock:
            return self._compact_locked()

    def stats(self):
        """Backend stats plus the sink's own counters."""
        info = self.backend.stats()
        info["last_seq"] = self._seq
        info["snapshot_every"] = self.snapshot_every
        return info

    def close(self):
        """Close the backend."""
        self.backend.close()

    # -- internals -----------------------------------------------------------

    def _append(self, record):
        """Assign a seq, durably append, run the crash hook, maybe compact.

        The crash hook runs after the append (the record is already
        durable) and before control returns (the answer is not yet
        released) — a hook that raises simulates a crash in exactly the
        window the write-ahead discipline protects.
        """
        if self._suspended:
            return None
        with self._lock:
            self._seq += 1
            record["seq"] = self._seq
            self.backend.append(record)
            seq = self._seq
            self._since_compact += 1
            if self.crash_hook is not None:
                self.crash_hook(record)
            if (self.snapshot_every is not None
                    and self.state_provider is not None
                    and self._since_compact >= self.snapshot_every):
                self._compact_locked()
        return seq

    def _compact_locked(self):
        """Capture state and compact through the current seq (lock held)."""
        state = self.state_provider()
        self.backend.compact(state, self._seq)
        # repro-lint: disable=REP001 -- caller holds self._lock
        self._since_compact = 0
        return self._seq

    def __repr__(self):
        return (f"PersistenceSink({self.backend!r}, "
                f"seq={self._seq})")


def resolve_persistence(persistence):
    """Normalize the ``persistence`` constructor argument.

    ``None``/``False`` → ``None`` (today's in-memory behavior, the
    default); ``True`` → a sink over a fresh :class:`MemoryBackend`
    (restart-simulation without disk); a backend → wrapped in a sink; a
    :class:`PersistenceSink` passes through (share one across rebuilds
    — that *is* the restart story).  A string selects a disk backend by
    shape: paths ending in ``.sqlite``/``.db`` open a
    :class:`~repro.persistence.sqlite.SqliteBackend`, anything else is
    a :class:`~repro.persistence.wal.WalBackend` directory.
    """
    if persistence is None or persistence is False:
        return None
    if persistence is True:
        return PersistenceSink(MemoryBackend())
    if isinstance(persistence, PersistenceSink):
        return persistence
    if isinstance(persistence, PersistenceBackend):
        return PersistenceSink(persistence)
    if isinstance(persistence, str):
        if persistence.endswith((".sqlite", ".db")):
            return PersistenceSink(SqliteBackend(persistence))
        return PersistenceSink(WalBackend(persistence))
    raise PersistenceError(
        "persistence must be None, a bool, a path, a PersistenceBackend, "
        f"or a PersistenceSink, not {type(persistence).__name__}"
    )
