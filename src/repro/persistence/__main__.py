"""``python -m repro.persistence`` — store verification and migration."""

from __future__ import annotations

import sys

from repro.persistence.cli import main

if __name__ == "__main__":
    sys.exit(main())
