"""Sqlite (WAL-mode) backend — one file, transactional compaction.

The JSONL backend trades two files and a filter rule for zero
dependencies; this backend leans on sqlite's own write-ahead log to get
the same durability with *transactional* compaction: snapshot publish
and log truncation commit together, so there is no between-files crash
window at all.  Records are still opaque JSON — the schema is two
tables (``log`` keyed by ``seq``, a single-row ``snapshot``), so the
store stays inspectable with the stock ``sqlite3`` shell.

Durability knobs: ``journal_mode=WAL`` (readers never block the
appender), ``synchronous=FULL`` by default (an acknowledged commit
survives power loss; ``"NORMAL"`` relaxes that to surviving process
crashes, the benchmark's faster setting).
"""

from __future__ import annotations

import json
import sqlite3
import threading

from repro.errors import PersistenceError
from repro.persistence.base import PersistenceBackend

_SCHEMA = """
CREATE TABLE IF NOT EXISTS log (
    seq INTEGER PRIMARY KEY,
    record TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS snapshot (
    id INTEGER PRIMARY KEY CHECK (id = 1),
    through_seq INTEGER NOT NULL,
    state TEXT NOT NULL
);
"""


class SqliteBackend(PersistenceBackend):
    """Single-file sqlite store for the durability layer.

    Durability: :meth:`append` commits before returning, so under the
    default ``synchronous=FULL`` an acknowledged record survives power
    loss.  :meth:`compact` replaces the snapshot row and deletes the
    folded log rows in one transaction — a crash anywhere inside it
    rolls the whole compaction back, leaving the previous snapshot and
    the full log.
    """

    name = "sqlite"

    def __init__(self, path, synchronous="FULL"):
        self.path = str(path)
        self._lock = threading.Lock()
        try:
            self._conn = sqlite3.connect(self.path, check_same_thread=False)
            self._conn.executescript(_SCHEMA)
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute(f"PRAGMA synchronous={synchronous}")
            self._conn.commit()
        except sqlite3.Error as error:
            raise PersistenceError(
                f"cannot open sqlite store {self.path}: {error}"
            ) from error

    def append(self, record):
        """INSERT + COMMIT one record; durable once this returns."""
        seq = int(record["seq"])
        with self._lock:
            try:
                self._conn.execute(
                    "INSERT INTO log (seq, record) VALUES (?, ?)",
                    (seq, json.dumps(record, sort_keys=True,
                                     separators=(",", ":"))),
                )
                self._conn.commit()
            except sqlite3.Error as error:
                self._conn.rollback()
                raise PersistenceError(
                    f"sqlite append failed on {self.path}: {error}"
                ) from error
        return seq

    def load(self):
        """Read the snapshot row and every newer log record, in order."""
        with self._lock:
            try:
                row = self._conn.execute(
                    "SELECT through_seq, state FROM snapshot WHERE id = 1"
                ).fetchone()
                through = row[0] if row else 0
                lines = self._conn.execute(
                    "SELECT record FROM log WHERE seq > ? ORDER BY seq",
                    (through,),
                ).fetchall()
            except sqlite3.Error as error:
                raise PersistenceError(
                    f"sqlite load failed on {self.path}: {error}"
                ) from error
        snapshot = None
        if row:
            snapshot = {"through_seq": row[0],
                        "state": self._parse(row[1], "snapshot state")}
        return snapshot, [self._parse(line, "log record")
                          for (line,) in lines]

    def compact(self, state, through_seq):
        """Snapshot replace + folded-row delete in ONE transaction.

        This is the backend's advantage over the two-file WAL layout:
        the commit makes both effects (or neither) durable, so recovery
        never needs a dedup filter — though ``load()`` keeps one anyway
        via the ``seq > through_seq`` predicate.
        """
        with self._lock:
            try:
                self._conn.execute(
                    "INSERT OR REPLACE INTO snapshot (id, through_seq, state)"
                    " VALUES (1, ?, ?)",
                    (through_seq, json.dumps(state, sort_keys=True)),
                )
                self._conn.execute(
                    "DELETE FROM log WHERE seq <= ?", (through_seq,)
                )
                self._conn.commit()
            except sqlite3.Error as error:
                self._conn.rollback()
                raise PersistenceError(
                    f"sqlite compaction failed on {self.path}: {error}"
                ) from error

    def last_seq(self):
        """Highest seq across the snapshot row and the log table."""
        with self._lock:
            try:
                (log_max,) = self._conn.execute(
                    "SELECT COALESCE(MAX(seq), 0) FROM log"
                ).fetchone()
                row = self._conn.execute(
                    "SELECT through_seq FROM snapshot WHERE id = 1"
                ).fetchone()
            except sqlite3.Error as error:
                raise PersistenceError(
                    f"sqlite last_seq failed on {self.path}: {error}"
                ) from error
        return max(log_max, row[0] if row else 0)

    def stats(self):
        """Row counts and pragma settings (diagnostics, JSON-safe)."""
        with self._lock:
            (log_records,) = self._conn.execute(
                "SELECT COUNT(*) FROM log"
            ).fetchone()
            (has_snapshot,) = self._conn.execute(
                "SELECT COUNT(*) FROM snapshot"
            ).fetchone()
            (journal_mode,) = self._conn.execute(
                "PRAGMA journal_mode"
            ).fetchone()
        return {
            "backend": self.name,
            "path": self.path,
            "log_records": log_records,
            "has_snapshot": bool(has_snapshot),
            "journal_mode": journal_mode,
        }

    def close(self):
        """Close the connection; later appends raise PersistenceError."""
        with self._lock:
            self._conn.close()

    @staticmethod
    def _parse(text, what):
        """Decode stored JSON; damage to committed rows is fatal."""
        try:
            return json.loads(text)
        except ValueError as error:
            raise PersistenceError(
                f"corrupt sqlite {what}: {error}"
            ) from error

    def __repr__(self):
        return f"SqliteBackend({self.path!r})"
