"""Deterministic test instruments for the PRIVATE-IYE reproduction.

* :mod:`repro.testing.faults` — a seeded fault-injection harness
  (:class:`FaultSchedule`, :class:`FlakySource`) that wraps real
  :class:`~repro.source.server.RemoteSource` objects in scripted delays,
  transient errors, hangs, and refusals, plus a scenario builder shared
  by the fan-out test suites and ``benchmarks/bench_fanout.py``.
* :mod:`repro.testing.adversaries` — the canonical attack fixtures
  (the Figure 1 publication, the tracker-attack salary table and
  predicates) shared by the inference/statdb test suites, the ablation
  benchmarks, and the :mod:`repro.validation` adversary zoo.

Everything here is stdlib-only and deterministic under a seed — the same
schedule replays the same faults in the same order, so concurrency tests
never flake on timing accidents.
"""

from repro.testing.adversaries import (
    figure1_published,
    salaries_table,
    tracker_predicate,
    victim_predicate,
)
from repro.testing.faults import (
    FaultSchedule,
    FlakySource,
    build_flaky_system,
)

__all__ = [
    "FaultSchedule",
    "FlakySource",
    "build_flaky_system",
    "figure1_published",
    "salaries_table",
    "tracker_predicate",
    "victim_predicate",
]
