"""Shared adversary fixtures for tests, benchmarks, and the zoo.

These helpers used to be copy-pasted across ``tests/inference``,
``tests/statdb``, and ``benchmarks/bench_ablations.py``; the validation
suite (:mod:`repro.validation`) made a single canonical implementation
necessary.  Everything here is deterministic and stdlib-cheap — the
heavy machinery stays in the subsystems under attack.
"""

from __future__ import annotations

from repro.data import FIGURE1
from repro.inference.snooper import PublishedAggregates
from repro.relational import Comparison, Table


def figure1_published(precision=None):
    """The Figure 1 aggregate publication the snooper attacks.

    Row means, sample standard deviations, and per-source column means
    for the three quality measures over the four HMOs, published at
    ``precision`` decimals (default: the paper's one decimal).
    """
    if precision is None:
        precision = FIGURE1.precision
    return PublishedAggregates(
        FIGURE1.measures,
        FIGURE1.sources,
        FIGURE1.row_means,
        FIGURE1.row_stds,
        FIGURE1.source_means,
        precision=precision,
    )


def salaries_table(n_rows=30):
    """The canonical statdb fixture: 30 salaries, two departments.

    Row ``i`` earns ``1000 + 100*i``; every third employee is an
    ``exec``, the rest ``sales``.  Small enough that tracker attacks are
    exact and brute-force oracles are cheap.
    """
    rows = [
        {"id": i, "dept": "sales" if i % 3 else "exec",
         "salary": 1000.0 + 100.0 * i}
        for i in range(n_rows)
    ]
    return Table.from_dicts("salaries", rows)


def victim_predicate():
    """The individual the tracker attack targets (row 0, an exec)."""
    return Comparison("id", "=", 0)


def tracker_predicate():
    """The general tracker: a large set not containing the victim."""
    return Comparison("dept", "=", "sales")
