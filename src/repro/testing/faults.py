"""Seeded fault injection for sources: delays, transients, hangs, refusals.

The fan-out dispatcher's whole job is surviving misbehaving sources, so
its tests need sources that misbehave *on demand and deterministically*.
A :class:`FaultSchedule` is a scripted (or seeded-random) sequence of
events — one consumed per ``answer()`` call — and a :class:`FlakySource`
wraps a real :class:`~repro.source.server.RemoteSource`, replaying the
schedule in front of the genuine pipeline:

====================  ====================================================
event                 behaviour of the wrapped ``answer()``
====================  ====================================================
``("ok",)``           delegate straight through
``("delay", s)``      sleep ``s`` seconds, then delegate (slow source)
``("transient", ...)``raise :class:`~repro.errors.TransientSourceError`
``("hang", s)``       sleep ``s`` seconds *then delegate* — paired with a
                      dispatcher deadline shorter than ``s``, this is a
                      hung source the coordinator must abandon
``("refuse", ...)``   raise :class:`~repro.errors.PrivacyViolation` —
                      a final policy answer, must never be retried
====================  ====================================================

Schedules are thread-safe (attempts arrive from pool workers) and
deterministic: :meth:`FaultSchedule.seeded` drives event choice from
``random.Random(seed)`` alone, so the same seed yields the same faults
regardless of thread interleaving.  Exhausted schedules return ``ok``.

:func:`build_flaky_system` builds a ready-to-query
:class:`~repro.core.system.PrivateIye` whose sources are all wrapped —
the shared fixture of the fault suites and ``benchmarks/bench_fanout.py``.
"""

from __future__ import annotations

import random
import threading
import time

from repro.errors import PrivacyViolation, ReproError, TransientSourceError

OK = ("ok",)

_EVENT_KINDS = ("ok", "delay", "transient", "hang", "refuse")


class FaultSchedule:
    """A scripted sequence of fault events, one per wrapped call.

    Build explicitly (``FaultSchedule([("transient",), ("ok",)])``) for
    exact scenarios, or with :meth:`seeded` for property-style tests and
    benchmarks.  ``take()`` pops the next event; after the script runs
    out every call is ``("ok",)``.
    """

    def __init__(self, events=()):
        checked = []
        for event in events:
            event = tuple(event)
            if not event or event[0] not in _EVENT_KINDS:
                raise ReproError(f"unknown fault event {event!r}")
            checked.append(event)
        self._events = checked
        self._cursor = 0
        self._lock = threading.Lock()
        self.consumed = []  # every event handed out, in call order

    @classmethod
    def seeded(cls, seed, calls, transient_rate=0.0, refuse_rate=0.0,
               delay_rate=0.0, hang_rate=0.0, delay_s=0.02, hang_s=0.25):
        """A ``calls``-long schedule drawn from ``random.Random(seed)``.

        Rates are independent probabilities checked in the order
        transient → refuse → hang → delay; whatever remains is ``ok``.
        Identical arguments always produce the identical schedule.
        """
        rng = random.Random(seed)
        events = []
        for _ in range(calls):
            roll = rng.random()
            if roll < transient_rate:
                events.append(("transient",))
            elif roll < transient_rate + refuse_rate:
                events.append(("refuse",))
            elif roll < transient_rate + refuse_rate + hang_rate:
                events.append(("hang", hang_s))
            elif roll < (transient_rate + refuse_rate + hang_rate
                         + delay_rate):
                events.append(("delay", delay_s))
            else:
                events.append(OK)
        return cls(events)

    @classmethod
    def always(cls, event, calls):
        """``calls`` repetitions of one event (then ``ok`` forever)."""
        return cls([tuple(event)] * calls)

    def take(self):
        """The next event (thread-safe); ``("ok",)`` once exhausted."""
        with self._lock:
            if self._cursor < len(self._events):
                event = self._events[self._cursor]
                self._cursor += 1
            else:
                event = OK
            self.consumed.append(event)
            return event

    @property
    def remaining(self):
        with self._lock:
            return len(self._events) - self._cursor

    def __len__(self):
        return len(self._events)

    def __repr__(self):
        return f"FaultSchedule({len(self._events)} events, {self.remaining} left)"


class FlakySource:
    """A :class:`RemoteSource` wrapper that replays a fault schedule.

    Ducks as a ``RemoteSource`` for everything the mediation engine
    needs — ``name``, ``policy_store``, ``table``, the ``telemetry``
    property (the engine reassigns it at registration) — and intercepts
    only :meth:`answer`.  Register it with
    ``engine.register_source(FlakySource(remote, schedule))``.

    ``calls`` counts every intercepted ``answer()``; ``faults_injected``
    counts the non-``ok`` events actually replayed.  Both are visible
    after a dispatch to assert e.g. "the refusal was not retried".
    """

    def __init__(self, inner, schedule=None, sleep=time.sleep):
        self._inner = inner
        self.schedule = schedule or FaultSchedule()
        self._sleep = sleep
        self.calls = 0
        self._calls_lock = threading.Lock()
        self.faults_injected = 0

    # -- RemoteSource surface the engine touches ---------------------------

    @property
    def name(self):
        return self._inner.name

    @property
    def telemetry(self):
        return self._inner.telemetry

    @telemetry.setter
    def telemetry(self, value):
        # repro-lint: disable=REP011 -- harness wiring: the engine sets
        # telemetry on registration, before any fan-out thread exists.
        self._inner.telemetry = value

    def __getattr__(self, attribute):
        # policy_store, table, queries_answered, ... — delegate untouched.
        return getattr(self._inner, attribute)

    # -- the intercepted call ----------------------------------------------

    def answer(self, piql, requester=None, role=None, subjects=(),
               shared=None):
        with self._calls_lock:
            self.calls += 1
        event = self.schedule.take()
        kind = event[0]
        if kind != "ok":
            with self._calls_lock:
                self.faults_injected += 1
        if kind == "transient":
            raise TransientSourceError(
                f"{self.name}: injected transient fault"
            )
        if kind == "refuse":
            raise PrivacyViolation(f"{self.name}: injected policy refusal")
        if kind in ("delay", "hang"):
            self._sleep(event[1] if len(event) > 1 else 0.05)
        if shared is not None:
            # pose_many batch sharing rides through the fault layer
            return self._inner.answer(
                piql, requester=requester, role=role, subjects=subjects,
                shared=shared,
            )
        return self._inner.answer(
            piql, requester=requester, role=role, subjects=subjects
        )

    def __repr__(self):
        return f"FlakySource({self.name!r}, {self.schedule!r})"


_POLICY_TEMPLATE = """
POLICY {name} DEFAULT deny {{
    ALLOW //patient/age FOR research;
    ALLOW //patient/visits FOR research;
}}
"""


def build_flaky_system(n_sources, schedule_for=None, rows_per_source=8,
                       seed=7, dispatch=None, telemetry=None, cache=True,
                       noise_epsilon=None):
    """A :class:`PrivateIye` whose every source is a :class:`FlakySource`.

    ``schedule_for(name, index)`` returns the :class:`FaultSchedule` for
    each source (default: no faults).  Tables share the mediated
    attributes ``age``/``visits`` with seeded per-source values, so any
    two builds with the same arguments expose identical data — the basis
    of the sequential-vs-concurrent (and cached-vs-uncached) equivalence
    properties.  ``cache`` is forwarded to :class:`PrivateIye` — pass
    ``False`` (with ``warehouse_mode`` left hybrid or switched off via
    ``use_warehouse=False`` at pose time) for an always-recompute
    baseline, or a preconfigured ``MediationCache``.

    ``seed`` drives the table data *and* seeds the system
    (``PrivateIye(seed=seed)``), so with ``noise_epsilon`` set every
    source gets a Laplace output mechanism whose noise stream derives
    deterministically from the one seed — two builds with identical
    arguments answer aggregates with identical noise.

    Returns ``(system, {name: FlakySource})``.
    """
    from repro.core.system import PrivateIye
    from repro.relational.catalog import Catalog
    from repro.relational.table import Table
    from repro.source.server import RemoteSource

    system = PrivateIye(telemetry=telemetry, dispatch=dispatch, cache=cache,
                        seed=seed)
    rng = random.Random(seed)
    flaky = {}
    for index in range(n_sources):
        name = f"src{index:02d}"
        system.load_policies(_POLICY_TEMPLATE.format(name=name))
        rows = [
            {"age": 20 + rng.randrange(60),
             "visits": rng.randrange(12),
             "name": f"{name}-p{i}"}
            for i in range(rows_per_source)
        ]
        table = Table.from_dicts("patients", rows)
        catalog = Catalog(name)
        catalog.add(table)
        mechanism = None
        if noise_epsilon is not None:
            from repro.statdb.laplace import LaplaceMechanism

            mechanism = LaplaceMechanism(
                noise_epsilon, rng=system.spawn_rng()
            )
        remote = RemoteSource(
            name, catalog, "patients", system.policy_store.replicate(),
            pseudonym_secret=system.engine.shared_secret,
            output_mechanism=mechanism,
        )
        schedule = schedule_for(name, index) if schedule_for else None
        wrapped = FlakySource(remote, schedule)
        system.engine.register_source(wrapped)
        flaky[name] = wrapped
    return system, flaky
