"""Serializer for the element tree.

Produces well-formed XML that round-trips through
:func:`repro.xmlkit.parser.parse_xml`.  ``indent=None`` gives compact output
(exact text preservation); an integer indent gives pretty-printed output for
human consumption (text-bearing elements stay on one line so their content
is not polluted with whitespace).
"""

from __future__ import annotations

from repro.xmlkit.node import Element


def serialize(node, indent=None):
    """Serialize ``node`` (and subtree) to an XML string."""
    parts = []
    if indent is None:
        _write_compact(node, parts)
    else:
        _write_pretty(node, parts, 0, indent)
    return "".join(parts)


def escape_text(text):
    """Escape ``&``, ``<``, ``>`` in text content."""
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attr(text):
    """Escape text for use inside a double-quoted attribute value."""
    return escape_text(text).replace('"', "&quot;")


def _start_tag(node):
    attrs = "".join(f' {k}="{escape_attr(v)}"' for k, v in node.attrs.items())
    return f"<{node.tag}{attrs}>"


def _empty_tag(node):
    attrs = "".join(f' {k}="{escape_attr(v)}"' for k, v in node.attrs.items())
    return f"<{node.tag}{attrs}/>"


def _write_compact(node, parts):
    if not node.children:
        parts.append(_empty_tag(node))
        return
    parts.append(_start_tag(node))
    for child in node.children:
        if isinstance(child, Element):
            _write_compact(child, parts)
        else:
            parts.append(escape_text(child))
    parts.append(f"</{node.tag}>")


def _write_pretty(node, parts, level, indent):
    pad = " " * (indent * level)
    if not node.children:
        parts.append(f"{pad}{_empty_tag(node)}\n")
        return
    has_element_children = any(isinstance(c, Element) for c in node.children)
    if not has_element_children:
        text = escape_text("".join(node.children))
        parts.append(f"{pad}{_start_tag(node)}{text}</{node.tag}>\n")
        return
    parts.append(f"{pad}{_start_tag(node)}\n")
    for child in node.children:
        if isinstance(child, Element):
            _write_pretty(child, parts, level + 1, indent)
        elif child.strip():
            child_pad = " " * (indent * (level + 1))
            parts.append(f"{child_pad}{escape_text(child.strip())}\n")
    parts.append(f"{pad}</{node.tag}>\n")
