"""Recursive-descent parser for a well-formed XML subset.

Supported: elements, attributes (single- or double-quoted), text content,
comments, processing instructions (skipped), character entities
(``&amp; &lt; &gt; &quot; &apos;`` and numeric ``&#NN;``), and an optional
XML declaration.  Not supported (by design): DTDs, namespaces, and CDATA —
none of the system's documents need them.
"""

from __future__ import annotations

from repro.errors import XmlError
from repro.xmlkit.node import Element

_ENTITIES = {"amp": "&", "lt": "<", "gt": ">", "quot": '"', "apos": "'"}


def parse_xml(text):
    """Parse ``text`` and return the root :class:`Element`."""
    parser = _Parser(text)
    root = parser.parse_document()
    return root


class _Parser:
    def __init__(self, text):
        if not isinstance(text, str):
            raise XmlError("XML input must be a string")
        self.text = text
        self.pos = 0
        self.length = len(text)

    # -- document ----------------------------------------------------------

    def parse_document(self):
        self._skip_prolog()
        root = self._parse_element()
        self._skip_misc()
        if self.pos != self.length:
            raise self._error("trailing content after document element")
        return root

    def _skip_prolog(self):
        self._skip_whitespace()
        if self.text.startswith("<?xml", self.pos):
            end = self.text.find("?>", self.pos)
            if end < 0:
                raise self._error("unterminated XML declaration")
            self.pos = end + 2
        self._skip_misc()

    def _skip_misc(self):
        while True:
            self._skip_whitespace()
            if self.text.startswith("<!--", self.pos):
                self._skip_comment()
            elif self.text.startswith("<?", self.pos):
                self._skip_pi()
            else:
                return

    # -- elements ----------------------------------------------------------

    def _parse_element(self):
        if self._peek() != "<":
            raise self._error("expected '<'")
        self.pos += 1
        tag = self._read_name()
        attrs = self._parse_attributes()
        self._skip_whitespace()
        if self.text.startswith("/>", self.pos):
            self.pos += 2
            return Element(tag, attrs)
        if self._peek() != ">":
            raise self._error(f"malformed start tag <{tag}>")
        self.pos += 1
        node = Element(tag, attrs)
        self._parse_content(node)
        return node

    def _parse_attributes(self):
        attrs = {}
        while True:
            self._skip_whitespace()
            ch = self._peek()
            if ch in (">", "/") or ch is None:
                return attrs
            name = self._read_name()
            self._skip_whitespace()
            if self._peek() != "=":
                raise self._error(f"attribute {name!r} missing '='")
            self.pos += 1
            self._skip_whitespace()
            quote = self._peek()
            if quote not in ("'", '"'):
                raise self._error(f"attribute {name!r} value must be quoted")
            self.pos += 1
            end = self.text.find(quote, self.pos)
            if end < 0:
                raise self._error(f"unterminated attribute value for {name!r}")
            attrs[name] = _decode_entities(self.text[self.pos:end])
            self.pos = end + 1

    def _parse_content(self, node):
        buffer = []
        while True:
            if self.pos >= self.length:
                raise self._error(f"unterminated element <{node.tag}>")
            ch = self.text[self.pos]
            if ch == "<":
                if buffer:
                    node.append(_decode_entities("".join(buffer)))
                    buffer = []
                if self.text.startswith("</", self.pos):
                    self.pos += 2
                    closing = self._read_name()
                    self._skip_whitespace()
                    if self._peek() != ">":
                        raise self._error(f"malformed end tag </{closing}>")
                    self.pos += 1
                    if closing != node.tag:
                        raise self._error(
                            f"mismatched tags: <{node.tag}> closed by </{closing}>"
                        )
                    return
                if self.text.startswith("<!--", self.pos):
                    self._skip_comment()
                elif self.text.startswith("<?", self.pos):
                    self._skip_pi()
                else:
                    node.append(self._parse_element())
            else:
                buffer.append(ch)
                self.pos += 1

    # -- lexical helpers -----------------------------------------------------

    def _skip_comment(self):
        end = self.text.find("-->", self.pos)
        if end < 0:
            raise self._error("unterminated comment")
        self.pos = end + 3

    def _skip_pi(self):
        end = self.text.find("?>", self.pos)
        if end < 0:
            raise self._error("unterminated processing instruction")
        self.pos = end + 2

    def _skip_whitespace(self):
        while self.pos < self.length and self.text[self.pos].isspace():
            self.pos += 1

    def _read_name(self):
        start = self.pos
        while self.pos < self.length and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_-."
        ):
            self.pos += 1
        name = self.text[start:self.pos]
        if not name:
            raise self._error("expected a name")
        return name

    def _peek(self):
        if self.pos < self.length:
            return self.text[self.pos]
        return None

    def _error(self, message):
        line = self.text.count("\n", 0, self.pos) + 1
        return XmlError(f"{message} (line {line}, offset {self.pos})")


def _decode_entities(text):
    if "&" not in text:
        return text
    parts = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch != "&":
            parts.append(ch)
            i += 1
            continue
        end = text.find(";", i)
        if end < 0:
            raise XmlError(f"unterminated entity in text: {text[i:i + 10]!r}")
        name = text[i + 1:end]
        if name.startswith("#x") or name.startswith("#X"):
            parts.append(chr(int(name[2:], 16)))
        elif name.startswith("#"):
            parts.append(chr(int(name[1:])))
        elif name in _ENTITIES:
            parts.append(_ENTITIES[name])
        else:
            raise XmlError(f"unknown entity &{name};")
        i = end + 1
    return "".join(parts)
