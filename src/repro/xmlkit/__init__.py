"""Minimal XML data model used throughout PRIVATE-IYE.

The paper builds the whole system on an XML data model ("XML provides much
greater flexibility in the kinds of data that can be handled by our
system").  This package provides the element tree (:mod:`repro.xmlkit.node`),
a small well-formed-subset parser (:mod:`repro.xmlkit.parser`), a serializer
(:mod:`repro.xmlkit.serializer`), an XPath subset evaluator
(:mod:`repro.xmlkit.path`), and the loosely-structured path matcher
(:mod:`repro.xmlkit.loose`) needed by the privacy-conscious query language
of Section 5 (the ``//patient//dob`` vs ``//patient//dateOfBirth`` problem).
"""

from repro.xmlkit.node import Element, element, text_of
from repro.xmlkit.parser import parse_xml
from repro.xmlkit.serializer import serialize
from repro.xmlkit.path import PathExpr, parse_path, evaluate_path
from repro.xmlkit.loose import LoosePathMatcher, SynonymTable
from repro.xmlkit.flatten import table_from_xml, xml_from_table

__all__ = [
    "table_from_xml",
    "xml_from_table",
    "Element",
    "element",
    "text_of",
    "parse_xml",
    "serialize",
    "PathExpr",
    "parse_path",
    "evaluate_path",
    "LoosePathMatcher",
    "SynonymTable",
]
