"""Element tree for the XML data model.

An :class:`Element` has a tag, an attribute dictionary, an ordered list of
children (elements or text strings), and a parent back-pointer maintained by
the mutation helpers.  The tree is deliberately small: it supports exactly
what the mediation engine and the per-source result transformers need —
construction, navigation, deep copies, and structural equality.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import XmlError


class Element:
    """A single XML element.

    Children are kept in document order and may be :class:`Element` nodes or
    plain strings (text nodes).  Attribute values are always strings.
    """

    __slots__ = ("tag", "attrs", "children", "parent")

    def __init__(self, tag, attrs=None, children=None):
        if not tag or not _is_name(tag):
            # repro-lint: disable=REP010 -- element tags are column
            # names / mapping labels, not text content (REP010 taints
            # whole documents; text() never reaches this message)
            raise XmlError(f"invalid element tag: {tag!r}")
        self.tag = tag
        self.attrs = dict(attrs) if attrs else {}
        self.children = []
        self.parent = None
        for child in children or []:
            self.append(child)

    # -- construction -----------------------------------------------------

    def append(self, child):
        """Append ``child`` (an :class:`Element` or a text string)."""
        if isinstance(child, Element):
            child.parent = self
        elif not isinstance(child, str):
            raise XmlError(f"child must be Element or str, got {type(child).__name__}")
        self.children.append(child)
        return child

    def extend(self, children):
        """Append every item of ``children``."""
        for child in children:
            self.append(child)

    def set(self, name, value):
        """Set attribute ``name`` to ``value`` (coerced to str)."""
        if not _is_name(name):
            raise XmlError(f"invalid attribute name: {name!r}")
        self.attrs[name] = str(value)

    def remove(self, child):
        """Remove a direct child element."""
        self.children.remove(child)
        if isinstance(child, Element):
            child.parent = None

    # -- navigation -------------------------------------------------------

    def child_elements(self):
        """Return the direct element children, in document order."""
        return [c for c in self.children if isinstance(c, Element)]

    def find(self, tag):
        """Return the first direct child element with ``tag``, or ``None``."""
        for child in self.children:
            if isinstance(child, Element) and child.tag == tag:
                return child
        return None

    def find_all(self, tag):
        """Return all direct child elements with ``tag``."""
        return [c for c in self.child_elements() if c.tag == tag]

    def iter(self) -> Iterator["Element"]:
        """Yield this element and every descendant element, pre-order."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter()

    def get(self, name, default=None):
        """Return attribute ``name`` or ``default``."""
        return self.attrs.get(name, default)

    @property
    def text(self):
        """Concatenated direct text content of this element."""
        return "".join(c for c in self.children if isinstance(c, str))

    def depth(self):
        """Distance from the root (root has depth 0)."""
        node, count = self, 0
        while node.parent is not None:
            node = node.parent
            count += 1
        return count

    def path_tags(self):
        """Tags from the root down to this element, inclusive."""
        tags = []
        node = self
        while node is not None:
            tags.append(node.tag)
            node = node.parent
        return list(reversed(tags))

    # -- copying / equality ------------------------------------------------

    def copy(self):
        """Deep-copy this subtree (the copy has no parent)."""
        clone = Element(self.tag, self.attrs)
        for child in self.children:
            clone.append(child.copy() if isinstance(child, Element) else child)
        return clone

    def structurally_equal(self, other):
        """True when both subtrees have identical tags, attrs, and text."""
        if not isinstance(other, Element):
            return False
        if self.tag != other.tag or self.attrs != other.attrs:
            return False
        mine = _normalized_children(self)
        theirs = _normalized_children(other)
        if len(mine) != len(theirs):
            return False
        for a, b in zip(mine, theirs):
            if isinstance(a, Element) != isinstance(b, Element):
                return False
            if isinstance(a, Element):
                if not a.structurally_equal(b):
                    return False
            elif a != b:
                return False
        return True

    def __repr__(self):
        n_children = len(self.children)
        return f"Element({self.tag!r}, attrs={self.attrs!r}, children={n_children})"


def element(tag, _text=None, _attrs=None, **attr_kwargs):
    """Convenience constructor: ``element('dob', '1970-01-01', unit='year')``."""
    attrs = dict(_attrs or {})
    attrs.update({k: str(v) for k, v in attr_kwargs.items()})
    node = Element(tag, attrs)
    if _text is not None:
        node.append(str(_text))
    return node


def text_of(node):
    """Concatenated text of ``node`` and all its descendants."""
    parts = []
    _collect_text(node, parts)
    return "".join(parts)


def _collect_text(node, parts):
    for child in node.children:
        if isinstance(child, str):
            parts.append(child)
        else:
            _collect_text(child, parts)


def _normalized_children(node):
    """Children with whitespace-only text dropped and adjacent text merged."""
    merged = []
    for child in node.children:
        if isinstance(child, str):
            if not child.strip():
                continue
            if merged and isinstance(merged[-1], str):
                merged[-1] += child
                continue
        merged.append(child)
    return merged


def _is_name(name):
    if not isinstance(name, str) or not name:
        return False
    head = name[0]
    if not (head.isalpha() or head == "_"):
        return False
    return all(ch.isalnum() or ch in "_-." for ch in name[1:])
