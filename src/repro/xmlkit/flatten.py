"""Bridging hierarchical stores into the relational engine.

The paper's architecture handles "data from hierarchical stores and data
in structured files" alongside relational sources.  This module flattens
an XML document into a typed :class:`~repro.relational.table.Table` — one
row per *record node*, one column per child element tag or attribute — so
the whole §4 pipeline (rewriter, clusterer, optimizer, defenses) applies
unchanged to XML sources.  :func:`xml_from_table` is the inverse, used to
materialize relational results as documents.
"""

from __future__ import annotations

from repro.errors import XmlError
from repro.relational.table import Table
from repro.xmlkit.node import Element, element, text_of
from repro.xmlkit.path import evaluate_path, parse_path


def table_from_xml(root, record_path, table_name="records"):
    """Flatten the record nodes of a document into a table.

    ``record_path`` selects the record elements (e.g. ``//patient``).
    Each record's columns are its attributes plus its child elements'
    concatenated text; repeated child tags keep the first occurrence (a
    deliberate, documented simplification — multi-valued children belong
    in their own record path).  Column types are inferred from the values.
    """
    records = evaluate_path(record_path, root)
    if not records:
        raise XmlError(
            f"record path {record_path!r} selects no elements"
        )
    if not all(isinstance(node, Element) for node in records):
        raise XmlError("record path must select elements, not attributes")

    column_order = []
    seen = set()
    rows = []
    for node in records:
        row = {}
        for name, value in node.attrs.items():
            row[name] = _coerce(value)
            if name not in seen:
                seen.add(name)
                column_order.append(name)
        for child in node.child_elements():
            if child.tag in row:
                continue  # first occurrence wins
            row[child.tag] = _coerce(text_of(child).strip())
            if child.tag not in seen:
                seen.add(child.tag)
                column_order.append(child.tag)
        rows.append(row)
    # Fill missing cells with NULL so rows align on one schema.
    for row in rows:
        for name in column_order:
            row.setdefault(name, None)
    return Table.from_dicts(table_name, rows, column_order=column_order)


def xml_from_table(table, root_tag="records", record_tag="record"):
    """Materialize a table as an XML document (inverse of flattening)."""
    root = Element(root_tag, {"table": table.name})
    for row in table.rows_as_dicts():
        record = root.append(Element(record_tag))
        for column, value in row.items():
            if value is None:
                record.append(Element(_safe_tag(column), {"null": "true"}))
            else:
                record.append(element(_safe_tag(column), value))
    return root


def _coerce(text):
    """Best-effort typing of element text: int, float, bool, or str."""
    if text == "":
        return None
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        number = float(text)
    except ValueError:
        return text
    if number.is_integer() and "." not in text and "e" not in lowered:
        return int(number)
    return number


def _safe_tag(column):
    tag = "".join(ch if ch.isalnum() or ch in "_-." else "_" for ch in column)
    if not tag or not (tag[0].isalpha() or tag[0] == "_"):
        tag = f"c_{tag}"
    return tag


def validate_record_path(record_path):
    """Parse-and-check helper for source constructors."""
    path = parse_path(record_path) if isinstance(record_path, str) else record_path
    if path.selects_attribute:
        raise XmlError("record path must select elements")
    return path
