"""Loosely-structured path matching.

Section 5 of the paper observes that in PRIVATE-IYE the mediated schema may
not reveal the nominal identifier of an attribute — a requester writes
``//patient//dateOfBirth`` while the source calls the element ``dob``.  A
privacy-conscious query language therefore needs *loose* path resolution:
each name test in a requested path is matched against the target source's
element vocabulary using a synonym table plus string similarity over
normalized name tokens, and the path is rewritten with the best candidates.

The same name-scoring machinery is reused by the mediator's
privacy-preserving schema matcher.
"""

from __future__ import annotations

from repro.errors import PathError
from repro.xmlkit.path import PathExpr, Step, parse_path

_DEFAULT_SYNONYMS = {
    "dob": {"dateofbirth", "birthdate", "birthday", "borndate"},
    "ssn": {"socialsecuritynumber", "socialsecurity"},
    "hmo": {"healthmaintenanceorganization", "healthplan", "insurer"},
    "md": {"physician", "doctor"},
    "rx": {"prescription", "medication", "drug"},
    "dx": {"diagnosis", "disease", "condition"},
    "addr": {"address", "residence"},
    "tel": {"telephone", "phone", "phonenumber"},
    "zip": {"zipcode", "postalcode", "postcode"},
    "id": {"identifier", "code"},
}


def normalize_name(name):
    """Lower-case ``name`` and strip separators (camelCase/snake aware).

    ``dateOfBirth``, ``date_of_birth``, and ``date-of-birth`` all normalize
    to ``dateofbirth``.
    """
    return "".join(ch for ch in name.lower() if ch.isalnum())


def name_tokens(name):
    """Split ``name`` into lower-case word tokens.

    Splits on non-alphanumerics and on camelCase boundaries, so
    ``dateOfBirth`` → ``['date', 'of', 'birth']``.
    """
    words = []
    current = []
    previous = ""
    for ch in name:
        boundary = (not ch.isalnum()) or (ch.isupper() and previous.islower())
        if boundary and current:
            words.append("".join(current).lower())
            current = []
        if ch.isalnum():
            current.append(ch)
        previous = ch
    if current:
        words.append("".join(current).lower())
    return words


def trigram_dice(a, b):
    """Dice coefficient over character trigrams of two normalized names."""
    ta, tb = _trigrams(a), _trigrams(b)
    if not ta and not tb:
        return 1.0 if a == b else 0.0
    if not ta or not tb:
        return 0.0
    overlap = len(ta & tb)
    return 2.0 * overlap / (len(ta) + len(tb))


def _trigrams(text):
    padded = f"##{text}#"
    return {padded[i:i + 3] for i in range(len(padded) - 2)}


class SynonymTable:
    """A symmetric synonym dictionary over *normalized* names."""

    def __init__(self, entries=None, include_defaults=True):
        self._groups = {}
        if include_defaults:
            for key, values in _DEFAULT_SYNONYMS.items():
                self.add(key, *values)
        for key, values in (entries or {}).items():
            self.add(key, *values)

    def add(self, name, *synonyms):
        """Declare every name in ``{name} | synonyms`` mutually synonymous."""
        group = {normalize_name(name)}
        group.update(normalize_name(s) for s in synonyms)
        merged = set(group)
        for member in group:
            merged |= self._groups.get(member, set())
        for member in merged:
            self._groups[member] = merged

    def are_synonyms(self, a, b):
        """True when the two (raw) names belong to one synonym group."""
        na, nb = normalize_name(a), normalize_name(b)
        if na == nb:
            return True
        return nb in self._groups.get(na, ())

    def group_of(self, name):
        """The full normalized synonym group of ``name`` (incl. itself)."""
        normalized = normalize_name(name)
        return set(self._groups.get(normalized, set())) | {normalized}


class LoosePathMatcher:
    """Resolves loosely-specified paths against a source vocabulary."""

    def __init__(self, synonyms=None, threshold=0.55):
        self.synonyms = synonyms or SynonymTable()
        self.threshold = threshold

    def score_name(self, requested, candidate):
        """Similarity in [0, 1] between a requested and a candidate name.

        Exact normalized match and synonym match score 1.0; otherwise the
        score blends trigram Dice on normalized names with token-set
        overlap, which rewards ``dateOfBirth`` vs ``birth_date`` style
        rearrangements.
        """
        if normalize_name(requested) == normalize_name(candidate):
            return 1.0
        if self.synonyms.are_synonyms(requested, candidate):
            return 1.0
        dice = trigram_dice(normalize_name(requested), normalize_name(candidate))
        tokens_a, tokens_b = set(name_tokens(requested)), set(name_tokens(candidate))
        if tokens_a and tokens_b:
            jaccard = len(tokens_a & tokens_b) / len(tokens_a | tokens_b)
        else:
            jaccard = 0.0
        return max(dice, 0.5 * dice + 0.5 * jaccard)

    def best_match(self, requested, vocabulary):
        """Return ``(best_name, score)`` from ``vocabulary``, or ``(None, 0)``.

        Ties break deterministically by name to keep query plans stable.
        """
        best_name, best_score = None, 0.0
        for candidate in sorted(vocabulary):
            score = self.score_name(requested, candidate)
            if score > best_score:
                best_name, best_score = candidate, score
        if best_score < self.threshold:
            return None, best_score
        return best_name, best_score

    def resolve(self, path, vocabulary):
        """Rewrite ``path`` so every name test uses the source's vocabulary.

        ``path`` may be a :class:`PathExpr` or a string.  Name tests already
        present in the vocabulary (or ``*``) are kept.  Unresolvable steps
        raise :class:`~repro.errors.PathError` listing the offending name,
        since silently dropping a step would change query semantics.
        """
        if isinstance(path, str):
            path = parse_path(path)
        vocabulary = set(vocabulary)
        new_steps = []
        for step in path.steps:
            if step.name == "*" or step.name in vocabulary:
                new_steps.append(step)
                continue
            match, score = self.best_match(step.name, vocabulary)
            if match is None:
                raise PathError(
                    f"cannot resolve step {step.name!r} against source "
                    f"vocabulary (best score {score:.2f} < {self.threshold})"
                )
            new_steps.append(
                Step(step.axis, match, step.predicates, step.is_attribute)
            )
        return PathExpr(new_steps, source_text=path.source_text)
