"""XPath-subset path expressions.

The privacy-conscious query language (PIQL) and the privacy views both use
path expressions of the form::

    /clinic/patient/dob
    //patient//dob
    //patient[@id='p7']/test[type='HbA1c']/result
    //hmo/compliance[2]
    //patient/@id

Supported steps: child (``/``) and descendant-or-self (``//``) axes, name
tests and ``*``, attribute selection (``@name``, only as the final step),
and predicates: positional (``[n]``, 1-based), attribute comparisons
(``[@a='v']``, all six comparison operators, numeric when both sides parse
as numbers), child-value comparisons (``[child='v']``), and existence tests
(``[@a]`` / ``[child]``).
"""

from __future__ import annotations

from repro.errors import PathError
from repro.xmlkit.node import Element, text_of

_OPS = ("!=", "<=", ">=", "=", "<", ">")


class Step:
    """One location step: axis + name test + predicates."""

    __slots__ = ("axis", "name", "predicates", "is_attribute")

    def __init__(self, axis, name, predicates=(), is_attribute=False):
        self.axis = axis  # "child" or "descendant"
        self.name = name  # tag/attribute name or "*"
        self.predicates = list(predicates)
        self.is_attribute = is_attribute

    def __repr__(self):
        sep = "//" if self.axis == "descendant" else "/"
        at = "@" if self.is_attribute else ""
        preds = "".join(f"[{p}]" for p in self.predicates)
        return f"{sep}{at}{self.name}{preds}"

    def __eq__(self, other):
        return (
            isinstance(other, Step)
            and self.axis == other.axis
            and self.name == other.name
            and self.is_attribute == other.is_attribute
            and self.predicates == other.predicates
        )


class Predicate:
    """A step predicate: positional, comparison, or existence test."""

    __slots__ = ("kind", "operand", "op", "value")

    def __init__(self, kind, operand, op=None, value=None):
        self.kind = kind  # "position" | "attr" | "child" | "attr_exists" | "child_exists"
        self.operand = operand  # position int, or attr/child name
        self.op = op
        self.value = value

    def __repr__(self):
        if self.kind == "position":
            return str(self.operand)
        prefix = "@" if self.kind.startswith("attr") else ""
        if self.kind.endswith("_exists"):
            return f"{prefix}{self.operand}"
        return f"{prefix}{self.operand}{self.op}{self.value!r}"

    def __eq__(self, other):
        return (
            isinstance(other, Predicate)
            and (self.kind, self.operand, self.op, self.value)
            == (other.kind, other.operand, other.op, other.value)
        )


class PathExpr:
    """A parsed path expression: an ordered list of :class:`Step`."""

    __slots__ = ("steps", "source_text")

    def __init__(self, steps, source_text=""):
        if not steps:
            raise PathError("empty path expression")
        for step in steps[:-1]:
            if step.is_attribute:
                raise PathError(
                    f"attribute step {step!r} allowed only in final position"
                )
        self.steps = list(steps)
        self.source_text = source_text

    @property
    def selects_attribute(self):
        """True when the expression selects attribute values, not elements."""
        return self.steps[-1].is_attribute

    def tag_names(self):
        """The name tests along the path (used by loose matching)."""
        return [s.name for s in self.steps]

    def __repr__(self):
        return "".join(repr(s) for s in self.steps)

    def __eq__(self, other):
        return isinstance(other, PathExpr) and self.steps == other.steps


def parse_path(text):
    """Parse ``text`` into a :class:`PathExpr`."""
    if not isinstance(text, str) or not text.strip():
        raise PathError("path expression must be a non-empty string")
    stripped = text.strip()
    if not stripped.startswith("/"):
        raise PathError(f"path must start with '/' or '//': {text!r}")
    steps = []
    pos = 0
    while pos < len(stripped):
        if stripped.startswith("//", pos):
            axis = "descendant"
            pos += 2
        elif stripped.startswith("/", pos):
            axis = "child"
            pos += 1
        else:
            raise PathError(f"expected '/' at offset {pos} in {text!r}")
        step, pos = _parse_step(stripped, pos, axis, text)
        steps.append(step)
    return PathExpr(steps, source_text=stripped)


def evaluate_path(path, root):
    """Evaluate ``path`` (a :class:`PathExpr` or string) against ``root``.

    Returns a list of :class:`Element` nodes, or a list of attribute-value
    strings when the path's final step is an attribute step.  The root
    element itself is a candidate for the first step (so ``/clinic`` matches
    a document whose root tag is ``clinic``).
    """
    if isinstance(path, str):
        path = parse_path(path)
    if not isinstance(root, Element):
        raise PathError("evaluation root must be an Element")

    current = [root]
    virtual_parent = True  # first step matches the root itself
    for step in path.steps:
        if step.is_attribute:
            # ``node/@a`` reads attributes of the context nodes themselves;
            # ``node//@a`` also reads attributes of every descendant.
            if step.axis == "child":
                holders = list(current)
            else:
                holders = _axis_candidates(current, "descendant", include_self=True)
            values = []
            for node in holders:
                if step.name == "*":
                    values.extend(node.attrs.values())
                elif step.name in node.attrs:
                    values.append(node.attrs[step.name])
            # No value-level dedup: two patients may share an attribute
            # value and aggregates must still count both.
            return values
        matched = []
        if virtual_parent:
            candidates = _first_step_candidates(current, step.axis)
            virtual_parent = False
        else:
            candidates = _axis_candidates(current, step.axis, include_self=False)
        for node in candidates:
            if step.name in ("*", node.tag):
                matched.append(node)
        current = _apply_predicates(matched, step.predicates)
    return _dedup_preserving_order(current)


# -- internals ---------------------------------------------------------------


def _first_step_candidates(roots, axis):
    if axis == "child":
        return list(roots)
    out = []
    for root in roots:
        out.extend(root.iter())
    return out


def _axis_candidates(nodes, axis, include_self):
    out = []
    for node in nodes:
        if axis == "child":
            out.extend(node.child_elements())
        else:
            iterator = node.iter()
            if not include_self:
                next(iterator)  # skip the context node itself
            out.extend(iterator)
    return out


def _apply_predicates(nodes, predicates):
    current = nodes
    for pred in predicates:
        if pred.kind == "position":
            index = pred.operand - 1
            current = [current[index]] if 0 <= index < len(current) else []
        else:
            current = [n for n in current if _check_predicate(n, pred)]
    return current


def _check_predicate(node, pred):
    if pred.kind == "attr_exists":
        return pred.operand in node.attrs
    if pred.kind == "child_exists":
        return node.find(pred.operand) is not None
    if pred.kind == "attr":
        if pred.operand not in node.attrs:
            return False
        return _compare(node.attrs[pred.operand], pred.op, pred.value)
    if pred.kind == "child":
        for child in node.find_all(pred.operand):
            if _compare(text_of(child), pred.op, pred.value):
                return True
        return False
    raise PathError(f"unknown predicate kind {pred.kind!r}")


def _compare(left, op, right):
    left_num, right_num = _try_float(left), _try_float(right)
    if left_num is not None and right_num is not None:
        left, right = left_num, right_num
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    try:
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        return False
    raise PathError(f"unknown comparison operator {op!r}")


def _try_float(value):
    if isinstance(value, (int, float)):
        return float(value)
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def _parse_step(text, pos, axis, original):
    is_attribute = False
    if pos < len(text) and text[pos] == "@":
        is_attribute = True
        pos += 1
    name, pos = _read_name_or_star(text, pos, original)
    predicates = []
    while pos < len(text) and text[pos] == "[":
        end = _matching_bracket(text, pos, original)
        predicates.append(_parse_predicate(text[pos + 1:end], original))
        pos = end + 1
    if is_attribute and predicates:
        raise PathError(f"attribute steps cannot carry predicates: {original!r}")
    return Step(axis, name, predicates, is_attribute), pos


def _read_name_or_star(text, pos, original):
    if pos < len(text) and text[pos] == "*":
        return "*", pos + 1
    start = pos
    while pos < len(text) and (text[pos].isalnum() or text[pos] in "_-."):
        pos += 1
    name = text[start:pos]
    if not name:
        raise PathError(f"expected a name at offset {start} in {original!r}")
    return name, pos


def _matching_bracket(text, pos, original):
    depth = 0
    in_quote = None
    for i in range(pos, len(text)):
        ch = text[i]
        if in_quote:
            if ch == in_quote:
                in_quote = None
        elif ch in "'\"":
            in_quote = ch
        elif ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
            if depth == 0:
                return i
    raise PathError(f"unbalanced '[' in {original!r}")


def _parse_predicate(body, original):
    body = body.strip()
    if not body:
        raise PathError(f"empty predicate in {original!r}")
    if body.isdigit():
        position = int(body)
        if position < 1:
            raise PathError(f"positions are 1-based: [{body}] in {original!r}")
        return Predicate("position", position)
    is_attr = body.startswith("@")
    if is_attr:
        body = body[1:]
    for op in _OPS:
        index = _find_operator(body, op)
        if index >= 0:
            operand = body[:index].strip()
            value = _parse_literal(body[index + len(op):].strip(), original)
            kind = "attr" if is_attr else "child"
            if not operand:
                raise PathError(f"predicate missing operand in {original!r}")
            return Predicate(kind, operand, op, value)
    operand = body.strip()
    if not operand:
        raise PathError(f"empty predicate in {original!r}")
    return Predicate("attr_exists" if is_attr else "child_exists", operand)


def _find_operator(body, op):
    """Index of ``op`` outside quotes, or -1.  Skips '=' inside '!=' etc."""
    in_quote = None
    i = 0
    while i < len(body):
        ch = body[i]
        if in_quote:
            if ch == in_quote:
                in_quote = None
            i += 1
            continue
        if ch in "'\"":
            in_quote = ch
            i += 1
            continue
        if body.startswith(op, i):
            if op == "=" and i > 0 and body[i - 1] in "!<>":
                i += 1
                continue
            if op in ("<", ">") and body[i + 1:i + 2] == "=":
                i += 1
                continue
            return i
        i += 1
    return -1


def _parse_literal(text, original):
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
        return text[1:-1]
    number = _try_float(text)
    if number is not None:
        return number
    raise PathError(f"bad literal {text!r} in {original!r}")


def _dedup_preserving_order(items):
    seen = set()
    out = []
    for item in items:
        key = id(item) if isinstance(item, Element) else ("v", item)
        if key not in seen:
            seen.add(key)
            out.append(item)
    return out
