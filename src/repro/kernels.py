"""Kernel-mode switch: vectorized numpy kernels vs scalar references.

The four hot kernels (inference-bound solver sweeps, k-anonymity
class counting / lattice scoring, Laplace noise draws, the loss
fixed-point) each ship two implementations:

* a **vectorized** numpy path — the default, the one production traffic
  runs; and
* a **scalar reference** — the original per-row Python, kept as the
  executable specification.

Setting ``REPRO_SCALAR_KERNELS=1`` in the environment switches every
kernel back to its scalar reference.  The differential test suites run
both modes against each other (seeded inputs, tight tolerances), and CI
runs the smoke benchmarks under both settings, so the fast path can
never drift from the reference semantics unnoticed.

The flag is read **per call**, not at import time, so a test can flip
modes with ``monkeypatch.setenv`` without reloading modules.
"""

from __future__ import annotations

import os

#: Environment variable selecting the scalar reference kernels.
SCALAR_ENV = "REPRO_SCALAR_KERNELS"

_TRUTHY = {"1", "true", "yes", "on"}


def use_scalar_kernels():
    """True when ``REPRO_SCALAR_KERNELS`` asks for the scalar references."""
    return os.environ.get(SCALAR_ENV, "").strip().lower() in _TRUTHY


def kernel_mode():
    """``"scalar"`` or ``"vectorized"`` — for benchmarks and ledgers."""
    return "scalar" if use_scalar_kernels() else "vectorized"
