"""Privacy-conscious query clustering and cluster matching (paper §4).

Queries with similar features have similar privacy breaches, hence similar
preservation techniques.  The clusterer maintains a *cluster knowledge
base*: leader-style clusters over normalized feature vectors, each carrying
the breach types and techniques of its leader (derived once from the
preservation KB).  ``match`` assigns an incoming query to the nearest
cluster — O(#clusters) — so technique selection never requires executing
the query.
"""

from __future__ import annotations

import math

from repro.errors import ReproError
from repro.query.features import QueryFeatures
from repro.source.knowledge import PreservationKnowledgeBase


class QueryCluster:
    """One cluster: a centroid plus its breach/technique assignment."""

    def __init__(self, cluster_id, centroid, breaches, techniques):
        self.cluster_id = cluster_id
        self.centroid = list(centroid)
        self.breaches = set(breaches)
        self.techniques = list(techniques)
        self.members = 1

    def absorb(self, vector):
        """Update the centroid with a new member (running mean)."""
        self.members += 1
        weight = 1.0 / self.members
        self.centroid = [
            c + weight * (v - c) for c, v in zip(self.centroid, vector)
        ]

    def __repr__(self):
        return (
            f"QueryCluster(#{self.cluster_id}, members={self.members}, "
            f"breaches={sorted(b.value for b in self.breaches)})"
        )


class QueryClusterer:
    """Leader clustering of query feature vectors.

    ``radius`` is the maximum normalized Euclidean distance at which a
    query joins an existing cluster; beyond it a new cluster is formed and
    its techniques are derived from the knowledge base.
    """

    def __init__(self, knowledge=None, radius=0.8):
        if radius <= 0:
            raise ReproError("cluster radius must be positive")
        self.knowledge = knowledge or PreservationKnowledgeBase()
        self.radius = radius
        self.clusters = []
        self.kb_derivations = 0  # how often we had to consult the KB

    def match(self, features):
        """The cluster for ``features`` (creating one if none is close).

        Returns the :class:`QueryCluster`; its ``techniques`` are the
        preservation techniques to apply to this query's results.
        """
        if not isinstance(features, QueryFeatures):
            raise ReproError("match needs QueryFeatures")
        vector = _normalize(features.to_vector())
        best, best_distance = None, math.inf
        for cluster in self.clusters:
            distance = _euclidean(cluster.centroid, vector)
            if distance < best_distance:
                best, best_distance = cluster, distance
        if best is not None and best_distance <= self.radius:
            best.absorb(vector)
            return best
        breaches, techniques = self.knowledge.plan_for(features)
        self.kb_derivations += 1
        cluster = QueryCluster(len(self.clusters), vector, breaches, techniques)
        self.clusters.append(cluster)
        return cluster

    def peek(self, features):
        """The techniques :meth:`match` *would* assign, without mutating.

        Leader clustering is order-sensitive: ``match`` absorbs the vector
        into the nearest cluster (shifting its centroid) or creates a new
        cluster.  The static plan analyzer must know which techniques a
        query would receive without performing either mutation, otherwise
        analysing a plan would change how the real query later clusters.
        Returns the technique list the immediately following ``match`` call
        for the same ``features`` would return.
        """
        if not isinstance(features, QueryFeatures):
            raise ReproError("peek needs QueryFeatures")
        vector = _normalize(features.to_vector())
        best, best_distance = None, math.inf
        for cluster in self.clusters:
            distance = _euclidean(cluster.centroid, vector)
            if distance < best_distance:
                best, best_distance = cluster, distance
        if best is not None and best_distance <= self.radius:
            return list(best.techniques)
        _breaches, techniques = self.knowledge.plan_for(features)
        return list(techniques)

    def __repr__(self):
        return f"QueryClusterer(clusters={len(self.clusters)}, radius={self.radius})"


def _normalize(vector):
    """Squash each feature into [0, 1] (counts via x/(1+x))."""
    return [v / (1.0 + v) if v > 1.0 else max(0.0, v) for v in vector]


def _euclidean(a, b):
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))
