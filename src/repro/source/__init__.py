"""The privacy-preserving query processing framework at a remote source.

This package is Figure 2(a) of the paper, module for module:

* :mod:`repro.source.transformer` — *Query Transformer*: rewrites the
  (possibly approximate) mediated XML query into the source's local
  language (SQL over the mini relational engine), resolving loose paths
  against the source vocabulary.
* :mod:`repro.source.rewriter` — *Privacy-preserving Query Rewriting*:
  integrates access rules and privacy policies into the query before
  execution, choosing the candidate with minimum privacy loss.
* :mod:`repro.source.knowledge` — *Privacy Preservation Knowledge Base*:
  breach types per query class and the preservation techniques that
  address them.
* :mod:`repro.source.clustering` — *Privacy-conscious Query Clustering /
  Cluster Matching*: maps a query's features to a cluster of queries with
  similar breaches, hence similar techniques — without executing it.
* :mod:`repro.source.loss` — *Privacy Loss Computation*.
* :mod:`repro.source.optimizer` — *Privacy-conscious Query Optimization*:
  plans privacy checks with the query (rewrite-then-execute vs
  execute-then-filter) under a cost model.
* :mod:`repro.source.results` — *XML Transformer + Privacy Metadata
  Tagger*: result rows → privacy-tagged XML.
* :mod:`repro.source.server` — the :class:`RemoteSource` facade wiring the
  whole pipeline together.
"""

from repro.source.transformer import PathMapping, QueryTransformer
from repro.source.rewriter import PrivacyRewriter, RewriteResult
from repro.source.knowledge import (
    BreachType,
    PreservationKnowledgeBase,
    Technique,
)
from repro.source.clustering import QueryCluster, QueryClusterer
from repro.source.loss import PrivacyLossEstimator
from repro.source.optimizer import ExecutionPlan, PrivacyAwareOptimizer
from repro.source.results import tag_results
from repro.source.statistics import ColumnStats, TableStatistics
from repro.source.server import RemoteSource, SourceResponse

__all__ = [
    "ColumnStats",
    "TableStatistics",
    "PathMapping",
    "QueryTransformer",
    "PrivacyRewriter",
    "RewriteResult",
    "BreachType",
    "Technique",
    "PreservationKnowledgeBase",
    "QueryClusterer",
    "QueryCluster",
    "PrivacyLossEstimator",
    "PrivacyAwareOptimizer",
    "ExecutionPlan",
    "tag_results",
    "RemoteSource",
    "SourceResponse",
]
