"""Privacy-conscious query optimization (paper §4).

Builds the execution plan for a rewritten query, weighing the cost of
privacy checking and perturbation alongside scan cost, and compares the two
enforcement strategies the paper discusses:

* **rewrite-then-execute** (chosen by the paper): policy predicates are
  already folded into the query, so the scan touches only disclosable
  rows; technique cost applies to the (small) result.
* **execute-then-filter** (the baseline): the raw query runs first, every
  row is post-filtered against policy, and techniques apply to the larger
  intermediate — strictly more work, quantified by benchmark A1.

The optimizer also exploits the requester's MAXLOSS: when the estimated
loss already exceeds the budget, the plan is pruned to refusal before any
execution happens.
"""

from __future__ import annotations

from repro.errors import PrivacyViolation, ReproError


class ExecutionPlan:
    """An ordered list of plan steps plus the cost model's estimate."""

    def __init__(self, strategy, steps, estimated_cost):
        self.strategy = strategy
        self.steps = list(steps)
        self.estimated_cost = estimated_cost

    def __repr__(self):
        return (
            f"ExecutionPlan({self.strategy}, cost={self.estimated_cost:.1f}, "
            f"steps={self.steps})"
        )


class PrivacyAwareOptimizer:
    """Cost-based planner over the two enforcement strategies."""

    # relative cost units
    ROW_SCAN_COST = 1.0
    ROW_FILTER_COST = 0.6     # post-hoc policy check per row
    TECHNIQUE_BASE_COST = 5.0

    def __init__(self, table_size):
        if table_size < 1:
            raise ReproError("table_size must be positive")
        self.table_size = table_size

    def plan(self, rewrite, loss_estimate, techniques, max_loss=1.0,
             selectivity=None):
        """The chosen :class:`ExecutionPlan` for one query.

        Raises :class:`PrivacyViolation` when the loss estimate exceeds the
        requester's (or policy's) budget — pruning before execution is the
        optimization the paper highlights ("the maximum … privacy loss …
        can also be used in the query plan to filter out irrelevant
        processing of data").
        """
        budget = min(max_loss, rewrite.loss_budget)
        if not loss_estimate.within_budget(budget):
            raise PrivacyViolation(
                f"estimated privacy loss {loss_estimate.privacy_loss:.3f} "
                f"exceeds budget {budget:.3f}; refusing before execution"
            )
        selectivity = self._selectivity(rewrite, selectivity)
        candidates = [
            self._rewrite_plan(techniques, selectivity),
            self._filter_plan(techniques, selectivity),
        ]
        return min(candidates, key=lambda p: p.estimated_cost)

    def _selectivity(self, rewrite, override):
        if override is not None:
            if not 0.0 < override <= 1.0:
                raise ReproError("selectivity must be in (0, 1]")
            return override
        # Equality predicates folded by the rewriter shrink the scan.
        n_predicates = len(rewrite.query.where.columns_used())
        return max(0.01, 0.5 ** n_predicates)

    def _rewrite_plan(self, techniques, selectivity):
        touched = self.table_size * selectivity
        cost = touched * self.ROW_SCAN_COST
        cost += sum(
            self.TECHNIQUE_BASE_COST + t.cpu_cost * touched * 0.01
            for t in techniques
        )
        steps = ["scan(rewritten)"]
        steps.extend(f"apply:{t.name}" for t in techniques)
        steps.append("tag+emit")
        return ExecutionPlan("rewrite-then-execute", steps, cost)

    def _filter_plan(self, techniques, selectivity):
        # full scan + per-row policy filter + techniques over full interim
        cost = self.table_size * (self.ROW_SCAN_COST + self.ROW_FILTER_COST)
        cost += sum(
            self.TECHNIQUE_BASE_COST + t.cpu_cost * self.table_size * 0.01
            for t in techniques
        )
        steps = ["scan(raw)", "filter(policy)"]
        steps.extend(f"apply:{t.name}" for t in techniques)
        steps.append("tag+emit")
        return ExecutionPlan("execute-then-filter", steps, cost)
