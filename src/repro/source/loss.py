"""Privacy Loss Computation (paper §4).

Estimates, before execution, the privacy loss of answering a rewritten
query, and quantifies the information loss the chosen preservation
techniques will inflict.  Both use the probabilistic interval-shrink notion
from :mod:`repro.metrics`: loss is how much the release narrows what an
adversary can infer.

The estimate is intentionally conservative (upper bound): record-level
exact values count full loss for their form; aggregates amortize over the
(estimated) query-set size.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.policy.model import DisclosureForm

_FORM_LOSS = {
    DisclosureForm.EXACT: 1.0,
    DisclosureForm.RANGE: 0.6,
    DisclosureForm.AGGREGATE: 0.25,
    DisclosureForm.SUPPRESSED: 0.0,
}


class LossEstimate:
    """Estimated privacy loss and technique-induced information loss."""

    def __init__(self, privacy_loss, information_loss, per_column):
        self.privacy_loss = privacy_loss
        self.information_loss = information_loss
        self.per_column = dict(per_column)

    def within_budget(self, budget):
        """Whether the estimated privacy loss fits a policy budget."""
        return self.privacy_loss <= budget + 1e-9

    def __repr__(self):
        return (
            f"LossEstimate(privacy={self.privacy_loss:.3f}, "
            f"information={self.information_loss:.3f})"
        )


class PrivacyLossEstimator:
    """Feature- and rewrite-based loss estimation."""

    def __init__(self, table_size, private_columns=()):
        if table_size < 1:
            raise ReproError("table_size must be positive")
        self.table_size = table_size
        self.private_columns = set(private_columns)

    def estimate(self, rewrite, features, techniques=()):
        """Estimate losses for a rewritten query.

        ``rewrite`` is a :class:`~repro.source.rewriter.RewriteResult`,
        ``features`` the query's :class:`~repro.query.features.QueryFeatures`,
        ``techniques`` the preservation techniques the cluster match chose.
        """
        per_column = {}
        for column, form in rewrite.column_forms.items():
            base = _FORM_LOSS[form]
            if column not in self.private_columns:
                base *= 0.3  # public data leaks less by definition
            per_column[column] = base

        query = rewrite.query
        if query.is_aggregate:
            set_size = self._estimated_set_size(features)
            aggregate_loss = _FORM_LOSS[DisclosureForm.AGGREGATE] / max(
                1.0, set_size ** 0.5
            )
            for aggregate in query.aggregates:
                if aggregate.column == "*":
                    continue
                weight = 1.0 if aggregate.column in self.private_columns else 0.3
                per_column[f"{aggregate.func}({aggregate.column})"] = (
                    aggregate_loss * weight
                )
            privacy_loss = max(per_column.values(), default=aggregate_loss)
        else:
            privacy_loss = max(per_column.values(), default=0.0)

        technique_gain = 1.0
        information_loss = 0.0
        for technique in techniques:
            technique_gain *= 1.0 - technique.privacy_gain
            information_loss = 1.0 - (1.0 - information_loss) * (
                1.0 - technique.utility_loss
            )
        privacy_loss *= technique_gain

        # Generalized columns lose information even without techniques.
        for column in rewrite.generalized_columns:
            information_loss = max(information_loss, 0.3)

        return LossEstimate(
            min(1.0, privacy_loss), min(1.0, information_loss), per_column
        )

    def _estimated_set_size(self, features):
        """Crude selectivity model: each equality predicate divides by 10,
        each range predicate by 3."""
        size = float(self.table_size)
        size /= 10.0 ** features["n_equality_predicates"]
        size /= 3.0 ** features["n_range_predicates"]
        return max(1.0, size)
