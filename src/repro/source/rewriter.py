"""Privacy-preserving query rewriting (paper §4).

Given the transformed local query and the per-column policy decisions, the
rewriter produces a query ``q'`` that "will only retrieve the information
that can be accessed by the requester as well as preserves the privacy of
the data".  It prefers rewriting over post-filtering (the paper's stated
choice) and, among legal rewrites, picks the one with minimum privacy loss.

Rewrites applied, most- to least-preserving per column:

* **denied column in the projection** → dropped (or the whole query is
  refused when nothing would remain);
* **denied column in a predicate** → the query is refused — evaluating a
  predicate over forbidden data leaks through the result set;
* **EXACT grant** → untouched;
* **RANGE grant** → the column is marked for generalization in the result
  (the executor substitutes range labels);
* **AGGREGATE grant** → legal only inside aggregate functions; a
  record-level projection of the column is downgraded to dropped.

Each rewrite emits a ``source.rewrite`` span (dropped/generalized column
counts, granted loss budget) and ``rewriter.*`` metrics, so explain
reports can show *why* a projection shrank (:mod:`repro.telemetry`).
"""

from __future__ import annotations

from repro.errors import AccessDenied, PrivacyViolation, QueryError
from repro.policy.model import Decision, DisclosureForm
from repro.telemetry import NOOP


class RewriteResult:
    """The rewritten query plus how each column must be treated."""

    def __init__(self, query, column_forms, dropped, loss_budget, reasons):
        self.query = query
        self.column_forms = dict(column_forms)  # column → DisclosureForm
        self.dropped = list(dropped)
        self.loss_budget = loss_budget  # tightest policy max_loss granted
        self.reasons = list(reasons)

    @property
    def generalized_columns(self):
        """Columns to release as ranges rather than exact values."""
        return sorted(
            c for c, f in self.column_forms.items()
            if f is DisclosureForm.RANGE
        )

    def __repr__(self):
        return (
            f"RewriteResult(forms={ {c: f.name for c, f in self.column_forms.items()} }, "
            f"dropped={self.dropped})"
        )


class PrivacyRewriter:
    """Integrates access rules and policy decisions into local queries."""

    def __init__(self, rbac=None, resource_prefix=None, telemetry=None):
        self.rbac = rbac
        self.resource_prefix = resource_prefix
        # Kept in sync with the owning RemoteSource's telemetry setter.
        self.telemetry = telemetry or NOOP

    def rewrite(self, query, decisions, requester=None):
        """Rewrite ``query`` under per-column ``decisions``.

        ``decisions`` maps column name → :class:`Decision`.  Columns
        without a decision are treated as denied (least privilege).
        Raises :class:`PrivacyViolation` when the query cannot be answered
        at all, :class:`AccessDenied` when RBAC blocks the requester.

        Emits a ``source.rewrite`` span recording how many columns were
        dropped or generalized and the tightest loss budget granted.
        """
        with self.telemetry.span("source.rewrite") as span:
            result = self._rewrite(query, decisions, requester)
            span.set(
                dropped=len(result.dropped),
                generalized=len(result.generalized_columns),
                loss_budget=result.loss_budget,
            )
        metrics = self.telemetry.metrics
        metrics.counter("rewriter.rewrites").inc()
        if result.dropped:
            metrics.counter("rewriter.columns_dropped").inc(
                len(result.dropped)
            )
        metrics.histogram("rewriter.loss_budget").observe(result.loss_budget)
        return result

    def dry_run(self, query, decisions, requester=None):
        """Rewrite without telemetry side effects.

        Identical semantics to :meth:`rewrite` (same refusals, same
        :class:`RewriteResult`) but emits no span and increments no
        counters, so the static plan analyzer
        (:mod:`repro.analysis.plancheck`) can probe the rewrite outcome
        ahead of dispatch without perturbing the source's metrics.
        """
        return self._rewrite(query, decisions, requester)

    def _rewrite(self, query, decisions, requester):
        for column, decision in decisions.items():
            if not isinstance(decision, Decision):
                raise QueryError(f"decision for {column!r} is not a Decision")

        self._check_rbac(query, requester)

        reasons = []
        column_forms = {}
        dropped = []
        loss_budget = 1.0

        def decision_for(column):
            decision = decisions.get(column)
            if decision is None:
                return Decision.deny(f"no policy decision for column {column!r}")
            return decision

        # Predicates must be fully legal — rewriting can't fix a predicate
        # over forbidden data without changing query semantics.
        for column in sorted(query.where.columns_used()):
            decision = decision_for(column)
            if not decision.allowed:
                raise PrivacyViolation(
                    f"predicate uses denied column {column!r}: "
                    f"{'; '.join(decision.reasons)}"
                )
            loss_budget = min(loss_budget, decision.max_loss)
            reasons.extend(decision.reasons)

        # Group-by columns behave like projections of category values.
        for column in query.group_by:
            decision = decision_for(column)
            if not decision.allowed:
                raise PrivacyViolation(
                    f"GROUP BY uses denied column {column!r}"
                )
            column_forms[column] = decision.form
            loss_budget = min(loss_budget, decision.max_loss)

        new_columns = []
        for column in query.columns:
            if column == "*":
                raise QueryError(
                    "rewriter requires explicit projections (no SELECT *)"
                )
            decision = decision_for(column)
            if not decision.allowed:
                dropped.append(column)
                reasons.extend(decision.reasons)
                continue
            if decision.form is DisclosureForm.AGGREGATE:
                # record-level projection not allowed at aggregate-only form
                dropped.append(column)
                reasons.append(
                    f"column {column!r} only disclosable in aggregate form"
                )
                continue
            column_forms[column] = decision.form
            loss_budget = min(loss_budget, decision.max_loss)
            new_columns.append(column)

        new_aggregates = []
        for aggregate in query.aggregates:
            if aggregate.column == "*":
                new_aggregates.append(aggregate)
                continue
            decision = decision_for(aggregate.column)
            if not decision.allowed:
                dropped.append(f"{aggregate.func}({aggregate.column})")
                reasons.extend(decision.reasons)
                continue
            # any allowed form ≥ AGGREGATE permits aggregation
            new_aggregates.append(aggregate)
            loss_budget = min(loss_budget, decision.max_loss)

        if not new_columns and not new_aggregates:
            raise PrivacyViolation(
                "nothing disclosable remains after rewriting: "
                + "; ".join(reasons or ["no columns requested"])
            )

        rewritten = query.replace(
            columns=new_columns or [],
            aggregates=new_aggregates or [],
        )
        return RewriteResult(rewritten, column_forms, dropped, loss_budget, reasons)

    def _check_rbac(self, query, requester):
        if self.rbac is None or requester is None:
            return
        prefix = self.resource_prefix or query.table
        action = "aggregate" if query.is_aggregate else "read"
        for column in sorted(query.columns_used()):
            self.rbac.require(requester, action, f"{prefix}.{column}")
