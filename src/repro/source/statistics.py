"""Table statistics for the privacy-conscious optimizer.

The §4 optimizer needs predicate selectivities to choose plans and to
estimate aggregate query-set sizes without executing the query.  This
module builds classic single-column statistics — equi-width histograms for
numeric columns, distinct-value counts for categoricals, null fractions —
and estimates the selectivity of any predicate AST over them (attribute
independence assumed, as in textbook System-R estimation).
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.relational.expr import And, Comparison, InList, IsNull, Not, Or, _True

DEFAULT_BUCKETS = 20
_DEFAULT_EQUALITY_SELECTIVITY = 0.1
_DEFAULT_RANGE_SELECTIVITY = 0.33


class ColumnStats:
    """Statistics of one column."""

    def __init__(self, values, buckets=DEFAULT_BUCKETS):
        values = list(values)
        self.n_total = len(values)
        present = [v for v in values if v is not None]
        self.null_fraction = (
            1.0 - len(present) / self.n_total if self.n_total else 0.0
        )
        self.n_distinct = len(set(present))
        numeric = [
            float(v) for v in present
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        ]
        self.is_numeric = bool(numeric) and len(numeric) == len(present)
        self.histogram = None
        self.low = self.high = None
        if self.is_numeric and self.n_distinct > 1:
            self.low, self.high = min(numeric), max(numeric)
            width = (self.high - self.low) / buckets
            counts = [0] * buckets
            for value in numeric:
                index = min(buckets - 1, int((value - self.low) / width))
                counts[index] = counts[index] + 1
            self.histogram = counts
        self._value_counts = {}
        if not self.is_numeric:
            for value in present:
                self._value_counts[value] = self._value_counts.get(value, 0) + 1

    def equality_selectivity(self, value):
        """Estimated fraction of rows with column = value."""
        if self.n_total == 0:
            return 0.0
        if not self.is_numeric:
            count = self._value_counts.get(value)
            if count is not None:
                return count / self.n_total
            return 0.0 if self._value_counts else _DEFAULT_EQUALITY_SELECTIVITY
        if self.n_distinct == 0:
            return 0.0
        return (1.0 - self.null_fraction) / self.n_distinct

    def range_selectivity(self, op, value):
        """Estimated fraction of rows with column <op> value."""
        if self.n_total == 0:
            return 0.0
        if not self.is_numeric or self.histogram is None:
            return _DEFAULT_RANGE_SELECTIVITY
        try:
            value = float(value)
        except (TypeError, ValueError):
            return _DEFAULT_RANGE_SELECTIVITY
        if self.high == self.low:
            below = 1.0 if value > self.low else 0.0
        else:
            below = self._fraction_below(value)
        present = 1.0 - self.null_fraction
        if op in ("<", "<="):
            return min(present, below * present)
        if op in (">", ">="):
            return min(present, (1.0 - below) * present)
        raise ReproError(f"not a range operator: {op!r}")

    def _fraction_below(self, value):
        if value <= self.low:
            return 0.0
        if value >= self.high:
            return 1.0
        buckets = len(self.histogram)
        width = (self.high - self.low) / buckets
        position = (value - self.low) / width
        full = int(position)
        partial = position - full
        total = sum(self.histogram) or 1
        below = sum(self.histogram[:full])
        if full < buckets:
            below += self.histogram[full] * partial
        return below / total


class TableStatistics:
    """Per-column statistics of one table, with predicate estimation."""

    def __init__(self, table, buckets=DEFAULT_BUCKETS):
        self.n_rows = len(table)
        self.columns = {
            name: ColumnStats(table.column_values(name), buckets)
            for name in table.schema.column_names()
        }

    def selectivity(self, expr):
        """Estimated fraction of rows satisfying ``expr`` (in [0, 1])."""
        estimate = self._selectivity(expr)
        return min(1.0, max(0.0, estimate))

    def estimated_rows(self, expr):
        """Estimated matching row count."""
        return self.selectivity(expr) * self.n_rows

    def _selectivity(self, expr):
        if isinstance(expr, _True):
            return 1.0
        if isinstance(expr, Comparison):
            stats = self.columns.get(expr.column)
            if stats is None:
                return _DEFAULT_EQUALITY_SELECTIVITY
            if expr.op == "=":
                return stats.equality_selectivity(expr.value)
            if expr.op == "!=":
                return 1.0 - stats.equality_selectivity(expr.value)
            return stats.range_selectivity(expr.op, expr.value)
        if isinstance(expr, InList):
            stats = self.columns.get(expr.column)
            if stats is None:
                return min(
                    1.0, _DEFAULT_EQUALITY_SELECTIVITY * len(expr.values)
                )
            return min(
                1.0,
                sum(stats.equality_selectivity(v) for v in expr.values),
            )
        if isinstance(expr, IsNull):
            stats = self.columns.get(expr.column)
            fraction = stats.null_fraction if stats else 0.05
            return 1.0 - fraction if expr.negated else fraction
        if isinstance(expr, And):
            product = 1.0
            for part in expr.parts:
                product *= self._selectivity(part)
            return product
        if isinstance(expr, Or):
            miss = 1.0
            for part in expr.parts:
                miss *= 1.0 - self._selectivity(part)
            return 1.0 - miss
        if isinstance(expr, Not):
            return 1.0 - self._selectivity(expr.part)
        raise ReproError(f"cannot estimate selectivity of {type(expr).__name__}")
