"""The Privacy Preservation Knowledge Base (paper §4).

Stores two things:

* how to *infer possible privacy breaches* for a class of queries from its
  features (``infer_breaches``), and
* which *preservation techniques* address each breach type, with the cost
  and utility-loss factors the privacy-conscious optimizer weighs.

Breach taxonomy (from the paper's discussion and its citations):

* ``REIDENTIFICATION`` — record-level output joinable to external data;
* ``ATTRIBUTE_DISCLOSURE`` — exact release of a private attribute;
* ``SMALL_SET_AGGREGATE`` — aggregates over few records identify them;
* ``TRACKER_SEQUENCE`` — combinations of aggregate queries isolate a
  record (Example 1 / the tracker attack);
* ``LINKAGE`` — identifiers in output enable cross-source linkage.
"""

from __future__ import annotations

import enum

from repro.errors import ReproError


class BreachType(enum.Enum):
    """The privacy-breach taxonomy the KB reasons over."""

    REIDENTIFICATION = "reidentification"
    ATTRIBUTE_DISCLOSURE = "attribute-disclosure"
    SMALL_SET_AGGREGATE = "small-set-aggregate"
    TRACKER_SEQUENCE = "tracker-sequence"
    LINKAGE = "linkage"


class Technique:
    """One preservation technique with optimizer-facing cost factors.

    ``privacy_gain`` estimates how much of the targeted breach the
    technique removes (0..1); ``utility_loss`` how much answer quality it
    costs (0..1); ``cpu_cost`` a relative execution-cost factor.
    ``parameters`` are technique-specific (k, sigma, base, ...).
    """

    def __init__(self, name, addresses, privacy_gain, utility_loss, cpu_cost,
                 parameters=None):
        if not 0.0 <= privacy_gain <= 1.0 or not 0.0 <= utility_loss <= 1.0:
            raise ReproError("gain/loss factors must be in [0, 1]")
        if cpu_cost < 0:
            raise ReproError("cpu_cost must be non-negative")
        self.name = name
        self.addresses = frozenset(addresses)
        self.privacy_gain = privacy_gain
        self.utility_loss = utility_loss
        self.cpu_cost = cpu_cost
        self.parameters = dict(parameters or {})

    def __repr__(self):
        return f"Technique({self.name!r}, addresses={sorted(b.value for b in self.addresses)})"


def default_techniques():
    """The standard technique registry."""
    return [
        Technique(
            "k-anonymize", {BreachType.REIDENTIFICATION, BreachType.LINKAGE},
            privacy_gain=0.8, utility_loss=0.35, cpu_cost=3.0,
            parameters={"k": 5},
        ),
        Technique(
            "suppress-identifiers",
            {BreachType.LINKAGE, BreachType.REIDENTIFICATION},
            privacy_gain=0.6, utility_loss=0.2, cpu_cost=0.5,
        ),
        Technique(
            "generalize", {BreachType.ATTRIBUTE_DISCLOSURE},
            privacy_gain=0.5, utility_loss=0.3, cpu_cost=1.0,
            parameters={"level": 1},
        ),
        Technique(
            "set-size-control", {BreachType.SMALL_SET_AGGREGATE},
            privacy_gain=0.7, utility_loss=0.05, cpu_cost=0.2,
            parameters={"k": 5},
        ),
        Technique(
            "audit-trail", {BreachType.TRACKER_SEQUENCE},
            privacy_gain=0.9, utility_loss=0.0, cpu_cost=2.0,
        ),
        Technique(
            "output-rounding", {BreachType.SMALL_SET_AGGREGATE,
                                BreachType.TRACKER_SEQUENCE},
            privacy_gain=0.4, utility_loss=0.15, cpu_cost=0.1,
            parameters={"base": 5.0},
        ),
    ]


class PreservationKnowledgeBase:
    """Breach inference + technique lookup."""

    def __init__(self, techniques=None):
        self.techniques = list(techniques) if techniques else default_techniques()

    def infer_breaches(self, features):
        """Possible breach types for a query, from its features alone.

        ``features`` is a :class:`~repro.query.features.QueryFeatures`.
        This is the "analyze only the features of the query" alternative
        the paper argues for — no execution happens here.
        """
        breaches = set()
        record_level = features["returns_individuals"] > 0
        if record_level:
            breaches.add(BreachType.REIDENTIFICATION)
            if features["touches_identifier"] > 0:
                breaches.add(BreachType.LINKAGE)
            if features["touches_private"] > 0:
                breaches.add(BreachType.ATTRIBUTE_DISCLOSURE)
        else:
            # Aggregates: narrow predicates risk small query sets; any
            # aggregate over private data contributes to sequences.
            if features["n_equality_predicates"] > 0:
                breaches.add(BreachType.SMALL_SET_AGGREGATE)
            if features["touches_private"] > 0 or features["n_predicates"] > 0:
                breaches.add(BreachType.TRACKER_SEQUENCE)
        return breaches

    def techniques_for(self, breaches):
        """Techniques addressing any of ``breaches`` (stable order)."""
        selected = [
            t for t in self.techniques if t.addresses & set(breaches)
        ]
        return sorted(selected, key=lambda t: t.name)

    def plan_for(self, features):
        """Convenience: breaches then techniques in one call."""
        breaches = self.infer_breaches(features)
        return breaches, self.techniques_for(breaches)
