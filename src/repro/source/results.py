"""XML Transformer + Privacy Metadata Tagger (paper §4).

Turns a result table into the XML fragment the mediation engine consumes,
annotated with privacy metadata: the producing source, the disclosure form
of each column, the computed privacy loss, and the preservation techniques
applied.  The mediator's privacy control reads these tags when computing
the aggregated loss of the integrated result.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.policy.model import DisclosureForm
from repro.xmlkit.node import Element, element


def tag_results(result_table, source_name, column_forms, privacy_loss,
                techniques=(), generalizers=None):
    """Build the tagged XML result document.

    ``generalizers`` maps column → callable(value) → range label, used for
    RANGE-form columns (e.g. an interval hierarchy level).
    """
    if not 0.0 <= privacy_loss <= 1.0:
        raise ReproError("privacy loss must be in [0, 1]")
    generalizers = generalizers or {}

    root = Element("results", {"source": source_name})
    meta = root.append(Element("privacy-metadata"))
    meta.append(element("loss", f"{privacy_loss:.6f}"))
    techniques_node = meta.append(Element("techniques"))
    for technique in techniques:
        techniques_node.append(element("technique", technique.name))
    forms_node = meta.append(Element("forms"))
    for column in result_table.schema.column_names():
        form = column_forms.get(column, DisclosureForm.EXACT)
        forms_node.append(
            element("column", None, name=column, form=form.name.lower())
        )

    rows_node = root.append(Element("rows"))
    for row in result_table.rows_as_dicts():
        row_node = rows_node.append(Element("row"))
        for column, value in row.items():
            form = column_forms.get(column, DisclosureForm.EXACT)
            if form is DisclosureForm.RANGE and column in generalizers:
                value = generalizers[column](value)
            if value is None:
                row_node.append(Element(_safe_tag(column), {"null": "true"}))
            else:
                cell = element(_safe_tag(column), value)
                cell.set("type", _type_name(value))
                row_node.append(cell)
    return root


def untag_results(root):
    """Parse a tagged result document back into plain structures.

    Returns ``(source, rows, metadata)`` where rows are dicts and metadata
    has ``loss`` (float), ``techniques`` (list), ``forms`` (column → form
    name).  The mediator uses this to integrate and re-verify.
    """
    if root.tag != "results":
        raise ReproError(f"expected <results>, got <{root.tag}>")
    source = root.get("source")
    meta = root.find("privacy-metadata")
    if meta is None:
        raise ReproError("result document lacks privacy metadata")
    loss_node = meta.find("loss")
    loss = float(loss_node.text) if loss_node is not None else 0.0
    techniques = [
        node.text for node in meta.find("techniques").find_all("technique")
    ] if meta.find("techniques") is not None else []
    forms = {}
    forms_node = meta.find("forms")
    if forms_node is not None:
        for node in forms_node.find_all("column"):
            forms[node.get("name")] = node.get("form")

    rows = []
    rows_node = root.find("rows")
    for row_node in rows_node.find_all("row") if rows_node is not None else []:
        row = {}
        for cell in row_node.child_elements():
            if cell.get("null") == "true":
                row[cell.tag] = None
            else:
                row[cell.tag] = _parse_value(cell.text, cell.get("type"))
        rows.append(row)
    return source, rows, {"loss": loss, "techniques": techniques, "forms": forms}


def _safe_tag(column):
    tag = "".join(ch if ch.isalnum() or ch in "_-." else "_" for ch in column)
    if not tag or not (tag[0].isalpha() or tag[0] == "_"):
        tag = f"c_{tag}"
    return tag


def _type_name(value):
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    return "str"


def _parse_value(text, type_name=None):
    if type_name == "str":
        return text
    if type_name == "bool":
        return text == "True"
    if type_name == "int":
        return int(text)
    if type_name == "float":
        return float(text)
    # Untyped cells (documents from other producers): best-effort inference.
    try:
        number = float(text)
    except ValueError:
        if text == "True":
            return True
        if text == "False":
            return False
        return text
    if number.is_integer() and "." not in text and "e" not in text.lower():
        return int(number)
    return number
