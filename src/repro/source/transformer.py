"""The Query Transformer (paper §4, "Query transformation").

The mediation engine forwards an XML query fragment that may be
*approximately* formulated — the mediated schema may not know the source's
nominal identifiers.  The transformer therefore resolves every path against
the source's vocabulary with the loose matcher, then compiles the PIQL
fragment into the source's local language: a
:class:`~repro.relational.engine.SelectQuery` (and its SQL text) for
relational sources.
"""

from __future__ import annotations

from repro.errors import PathError, QueryError
from repro.query.model import PiqlQuery
from repro.relational.engine import Aggregate, SelectQuery
from repro.relational.expr import Comparison, TRUE
from repro.relational.sql import to_sql
from repro.xmlkit.loose import LoosePathMatcher


class PathMapping:
    """How a source's table exposes itself as paths.

    ``table`` is the relational table all paths resolve into; the column
    vocabulary is taken from the table schema.  A path's final name test
    names the column (loosely); earlier steps are entity context (patient,
    record, ...) and are checked against ``entity_names`` when provided.
    """

    def __init__(self, table, entity_names=(), matcher=None):
        self.table = table
        self.entity_names = set(entity_names)
        self.matcher = matcher or LoosePathMatcher()

    def resolve_column(self, path):
        """The table column a path refers to, or raise PathError."""
        vocabulary = set(self.table.schema.column_names())
        leaf = path.steps[-1].name
        if leaf == "*":
            raise PathError("cannot map wildcard leaf to a single column")
        match, score = self.matcher.best_match(leaf, vocabulary)
        if match is None:
            raise PathError(
                f"no column of table {self.table.name!r} matches path leaf "
                f"{leaf!r} (best score {score:.2f})"
            )
        return match


class TransformResult:
    """Outcome of transforming a PIQL fragment for one source."""

    def __init__(self, query, sql, column_of_path):
        self.query = query  # SelectQuery
        self.sql = sql      # SQL text for the destination engine
        self.column_of_path = column_of_path  # repr(path) → column name

    def __repr__(self):
        return f"TransformResult({self.sql!r})"


class QueryTransformer:
    """Compiles PIQL fragments into local SelectQueries."""

    def __init__(self, mapping):
        if not isinstance(mapping, PathMapping):
            raise QueryError("QueryTransformer needs a PathMapping")
        self.mapping = mapping

    def transform(self, piql):
        """Transform ``piql`` (a :class:`PiqlQuery`) into local form.

        Raises :class:`~repro.errors.PathError` when a path cannot be
        resolved against the source at all — the mediator treats that as
        "this fragment is not answerable here".
        """
        if not isinstance(piql, PiqlQuery):
            raise QueryError("transform needs a PiqlQuery")

        column_of_path = {}

        def column_for(path):
            key = repr(path)
            if key not in column_of_path:
                column_of_path[key] = self.mapping.resolve_column(path)
            return column_of_path[key]

        columns = [column_for(path) for path in piql.projections]
        aggregates = [
            Aggregate(
                item.func if item.func != "stddev" else "stddev",
                "*" if item.path is None else column_for(item.path),
                item.alias,
            )
            for item in piql.aggregates
        ]
        group_by = [column_for(path) for path in piql.group_by]

        where = TRUE
        for predicate in piql.where:
            where = where.and_(
                Comparison(column_for(predicate.path), predicate.op,
                           predicate.value)
            )

        query = SelectQuery(
            self.mapping.table.name,
            columns=columns or None,
            aggregates=aggregates or None,
            where=where,
            group_by=group_by,
        )
        return TransformResult(query, to_sql(query), column_of_path)
