"""The RemoteSource facade — Figure 2(a) end to end.

One :class:`RemoteSource` owns a relational catalog, its policy store, and
the per-source privacy state (query clusterer, sequence auditor, overlap
history).  :meth:`RemoteSource.answer` runs the full pipeline::

    PIQL fragment
      → Query Transformer            (loose paths → local SelectQuery)
      → policy evaluation            (per-column decisions)
      → Privacy Rewriter             (+ RBAC, + consent row policy)
      → feature extraction           (no execution)
      → Cluster Matching             (techniques for this query class)
      → sequence defenses            (set size / audit / overlap)
      → Loss Computation             (privacy + information loss)
      → Privacy-aware Optimizer      (plan or refuse on budget)
      → execution                    (mini relational engine)
      → technique application        (k-anonymity, pseudonyms, rounding)
      → XML Transformer + Tagger     (privacy-tagged result document)

Every stage runs inside a telemetry span (``source.*``) that nests under
the mediator's ``mediator.pose`` span when the engine posed the fragment;
per-source answered/refused counters and latency histograms land in the
shared registry.  All of it is no-op by default (:mod:`repro.telemetry`).
"""

from __future__ import annotations

from repro.errors import PrivacyViolation, QueryError, ReproError
from repro.crypto.keyed_hash import keyed_hash
from repro.policy.matching import evaluate_request
from repro.policy.model import DisclosureForm
from repro.query.features import extract_features, features_with_budget
from repro.query.language import piql_without_maxloss, to_piql
from repro.query.model import PiqlQuery
from repro.relational.engine import execute
from repro.relational.table import Table
from repro.source.clustering import QueryClusterer
from repro.source.knowledge import PreservationKnowledgeBase
from repro.source.loss import PrivacyLossEstimator
from repro.source.optimizer import PrivacyAwareOptimizer
from repro.source.results import tag_results
from repro.source.rewriter import PrivacyRewriter
from repro.source.transformer import PathMapping, QueryTransformer
from repro.statdb.audit import SumAuditor
from repro.statdb.overlap import OverlapController, SetSizeControl
from repro.telemetry import resolve_telemetry
from repro.xmlkit.loose import normalize_name

_IDENTIFIER_COLUMNS = ("id", "ssn", "name", "first", "last")


class SourceResponse:
    """Everything a source returns for one answered query."""

    def __init__(self, document, privacy_loss, information_loss, plan,
                 cluster, rewrite, sql):
        self.document = document  # tagged XML Element
        self.privacy_loss = privacy_loss
        self.information_loss = information_loss
        self.plan = plan
        self.cluster = cluster
        self.rewrite = rewrite
        self.sql = sql

    def __repr__(self):
        return (
            f"SourceResponse(loss={self.privacy_loss:.3f}, "
            f"plan={self.plan.strategy})"
        )


class RemoteSource:
    """A privacy-preserving remote source."""

    def __init__(
        self,
        name,
        catalog,
        table_name,
        policy_store,
        rbac=None,
        consent_predicate=None,
        hierarchies=None,
        qi_columns=(),
        pseudonym_secret=None,
        matcher=None,
        knowledge=None,
        cluster_radius=0.8,
        telemetry=None,
        output_mechanism=None,
    ):
        self.name = name
        # Replaced with the engine's shared instance at registration
        # unless this source was built with its own enabled telemetry
        # (the setter keeps the rewriter's reference in sync).
        self._telemetry = resolve_telemetry(telemetry)
        self.catalog = catalog
        self.table = catalog.table(table_name)
        self.policy_store = policy_store
        self.rbac = rbac
        self.consent_predicate = consent_predicate
        self.hierarchies = dict(hierarchies or {})
        self.qi_columns = list(qi_columns)
        self.pseudonym_secret = pseudonym_secret or f"pseudo-{name}"
        # Optional output perturbation on aggregate answers (e.g. a
        # LaplaceMechanism).  Noise is drawn per (requester, query
        # fingerprint), so replays return the same perturbed value — no
        # averaging attack — while distinct queries get fresh noise.
        self.output_mechanism = output_mechanism

        mapping = PathMapping(self.table, matcher=matcher)
        self.transformer = QueryTransformer(mapping)
        self.rewriter = PrivacyRewriter(
            rbac, resource_prefix=table_name, telemetry=self.telemetry
        )
        self.clusterer = QueryClusterer(
            knowledge or PreservationKnowledgeBase(), radius=cluster_radius
        )
        self.loss_estimator = PrivacyLossEstimator(
            max(1, len(self.table)), private_columns=self._private_columns()
        )
        self.optimizer = PrivacyAwareOptimizer(max(1, len(self.table)))
        from repro.source.statistics import TableStatistics

        self.statistics = TableStatistics(self.table)

        n = max(1, len(self.table))
        self.auditor = SumAuditor(n)
        self.set_size = SetSizeControl(
            min(5, max(1, n // 4)), n, restrict_complement=False
        )
        self.overlap = None  # opt-in via enable_overlap_control
        self.queries_answered = 0
        self.queries_refused = 0

    @classmethod
    def from_xml(cls, name, document, record_path, policy_store,
                 table_name="records", **kwargs):
        """Build a source over a hierarchical (XML) store.

        The document's record nodes are flattened into a relational table
        (see :mod:`repro.xmlkit.flatten`), after which the full §4
        pipeline applies unchanged — exactly the paper's point about the
        XML data model unifying relational and hierarchical sources.
        """
        from repro.relational.catalog import Catalog
        from repro.xmlkit.flatten import table_from_xml

        table = table_from_xml(document, record_path, table_name)
        catalog = Catalog(name)
        catalog.add(table)
        return cls(name, catalog, table_name, policy_store, **kwargs)

    @property
    def telemetry(self):
        """The telemetry sink this source reports into."""
        return self._telemetry

    @telemetry.setter
    def telemetry(self, value):
        self._telemetry = value
        self.rewriter.telemetry = value

    def enable_overlap_control(self, max_overlap):
        """Turn on Dobkin–Jones–Lipton overlap control for aggregates."""
        self.overlap = OverlapController(max_overlap)

    # -- the pipeline --------------------------------------------------------

    def answer(self, piql, requester=None, role=None, subjects=(),
               shared=None):
        """Answer one PIQL fragment, or raise a privacy/access error.

        The whole per-source pipeline runs inside a ``source.answer``
        span (nested under ``mediator.pose`` when the engine posed the
        fragment); each stage of Figure 2(a) gets a child span.

        ``shared`` is a batch-scoped dict (``pose_many``): non-aggregate
        fragments then run :meth:`_answer_batched`, which reuses the
        MAXLOSS-independent stages across the batch while keeping every
        stateful or per-query stage (cluster absorption, the optimizer's
        budget refusal, the answered/refused counters around this
        wrapper) exactly as the plain path runs them.  Aggregates always
        take the full pipeline — their sequence defenses and output
        perturbation are stateful.
        """
        if not isinstance(piql, PiqlQuery):
            raise QueryError("answer needs a PiqlQuery")
        telemetry = self.telemetry
        with telemetry.span("source.answer", source=self.name) as span:
            try:
                if shared is not None and not piql.is_aggregate:
                    response = self._answer_batched(piql, requester, role,
                                                    subjects, shared)
                else:
                    response = self._answer(piql, requester, role, subjects)
            except (PrivacyViolation, ReproError):
                self.queries_refused += 1
                telemetry.metrics.counter(
                    f"source.{self.name}.refused"
                ).inc()
                raise
            self.queries_answered += 1
            telemetry.metrics.counter(f"source.{self.name}.answered").inc()
            telemetry.metrics.histogram("source.answer_ms").observe(
                span.duration_ms
            )
            span.set(privacy_loss=response.privacy_loss,
                     strategy=response.plan.strategy)
        return response

    def _answer(self, piql, requester, role, subjects):
        telemetry = self.telemetry
        with telemetry.span("source.transform"):
            transform = self.transformer.transform(piql)

        from repro.policy.matching import combine

        purpose = piql.purpose or "research"
        with telemetry.span("source.policy", purpose=purpose):
            decisions = {}
            for path_repr, column in sorted(transform.column_of_path.items()):
                decision = evaluate_request(
                    self.policy_store, self.name, path_repr, purpose,
                    role=role, subjects=subjects,
                )
                if column in decisions:
                    # several paths to one column: most restrictive wins
                    decisions[column] = combine(decisions[column], decision)
                else:
                    decisions[column] = decision

        rewrite = self.rewriter.rewrite(transform.query, decisions, requester)

        with telemetry.span("source.cluster_match"):
            view = self.policy_store.view_for(self.name)
            features = extract_features(piql, view)
            cluster = self.clusterer.match(features)
            techniques = cluster.techniques

        query = rewrite.query
        if self.consent_predicate is not None:
            query = query.replace(
                where=query.where.and_(self.consent_predicate)
            )

        with telemetry.span("source.sequence_defenses"):
            self._sequence_defenses(query, techniques)

        with telemetry.span("source.loss_and_plan") as span:
            estimate = self.loss_estimator.estimate(
                rewrite, features, techniques
            )
            # Histogram-based selectivity replaces the optimizer's crude
            # predicate-count heuristic.
            selectivity = max(0.001, self.statistics.selectivity(query.where))
            plan = self.optimizer.plan(
                rewrite, estimate, techniques, max_loss=piql.max_loss,
                selectivity=selectivity,
            )
            span.set(privacy_loss=estimate.privacy_loss,
                     selectivity=selectivity, strategy=plan.strategy)

        with telemetry.span("source.execute"):
            result = execute(query, self.catalog)
        with telemetry.span("source.techniques") as span:
            result, applied = self._apply_techniques(result, query, techniques)
            if self.output_mechanism is not None and query.is_aggregate:
                result = self._perturb_aggregates(result, query, requester)
            span.set(applied=[t.name for t in applied])

        with telemetry.span("source.tag_results"):
            generalizers = {
                column: self._generalizer(column)
                for column in rewrite.generalized_columns
                if not query.is_aggregate
            }
            document = tag_results(
                result, self.name, rewrite.column_forms,
                estimate.privacy_loss, applied, generalizers,
            )
        return SourceResponse(
            document, estimate.privacy_loss, estimate.information_loss,
            plan, cluster, rewrite, transform.sql,
        )

    def _answer_batched(self, piql, requester, role, subjects, shared):
        """:meth:`_answer` with batch-scoped reuse (non-aggregate only).

        Three sharing tiers, all pure recomputation:

        * **prep** — transform, policy decisions, rewrite, consent
          fold, selectivity: none reads MAXLOSS, so one computation
          serves every MAXLOSS variant of a fragment (a refusal raised
          here replays as the same exception object — the dispatcher
          only reads its type and message);
        * **features** — one MAXLOSS-free base per prep key; the
          per-query budget is stamped on afterwards;
        * **document** — execute → techniques → tagging, keyed by the
          prep key plus the matched cluster (its technique list is
          immutable) and the estimate's privacy loss (stamped into the
          tags).  All three stages are deterministic and pure, so
          reusing the document is recomputation elision, not semantic
          change; the integrator never mutates it.

        Per query, unconditionally: cluster *match* (it absorbs the
        query into the clusterer's state), the loss estimate, and the
        optimizer's plan-or-refuse — the per-query budget decision.
        """
        telemetry = self.telemetry
        prep_key = ("prep", piql_without_maxloss(piql), requester, role,
                    tuple(subjects))
        prep = shared.get(prep_key)
        if prep is None:
            try:
                with telemetry.span("source.transform"):
                    transform = self.transformer.transform(piql)

                from repro.policy.matching import combine

                purpose = piql.purpose or "research"
                with telemetry.span("source.policy", purpose=purpose):
                    decisions = {}
                    for path_repr, column in sorted(
                            transform.column_of_path.items()):
                        decision = evaluate_request(
                            self.policy_store, self.name, path_repr, purpose,
                            role=role, subjects=subjects,
                        )
                        if column in decisions:
                            decisions[column] = combine(
                                decisions[column], decision
                            )
                        else:
                            decisions[column] = decision

                rewrite = self.rewriter.rewrite(
                    transform.query, decisions, requester
                )

                query = rewrite.query
                if self.consent_predicate is not None:
                    query = query.replace(
                        where=query.where.and_(self.consent_predicate)
                    )
            except (PrivacyViolation, ReproError) as error:
                shared[prep_key] = ("error", error)
                raise
            prep = shared[prep_key] = ("ok", (transform, rewrite, query))
        kind, payload = prep
        if kind == "error":
            raise payload
        transform, rewrite, query = payload

        # Selectivity is derived from column statistics (row-valued in the
        # flow analyzer's eyes), so it gets its own nested tier — see the
        # documents tier below for why mixing it into ``shared`` directly
        # would smear that label onto the whole batch.
        selectivities = shared.setdefault("selectivity", {})
        selectivity = selectivities.get(prep_key)
        if selectivity is None:
            selectivity = selectivities[prep_key] = max(
                0.001, self.statistics.selectivity(query.where)
            )

        # Only ``requested_loss_budget`` reads MAXLOSS, so the feature
        # base shares on the prep key and the budget is stamped per
        # query — the clusterer still sees the exact per-query vector.
        features_key = ("features", prep_key)
        base = shared.get(features_key)
        if base is None:
            view = self.policy_store.view_for(self.name)
            base = shared[features_key] = extract_features(piql, view)
        features = features_with_budget(base, piql.max_loss)
        with telemetry.span("source.cluster_match"):
            cluster = self.clusterer.match(features)
            techniques = cluster.techniques

        with telemetry.span("source.sequence_defenses"):
            self._sequence_defenses(query, techniques)  # non-aggregate: no-op

        with telemetry.span("source.loss_and_plan") as span:
            estimate = self.loss_estimator.estimate(
                rewrite, features, techniques
            )
            plan = self.optimizer.plan(
                rewrite, estimate, techniques, max_loss=piql.max_loss,
                selectivity=selectivity,
            )
            span.set(privacy_loss=estimate.privacy_loss,
                     selectivity=selectivity, strategy=plan.strategy)

        # Tagged documents are disclosure payloads; they live in their own
        # nested tier so the prep/features entries beside them stay plain
        # derived-from-the-query artifacts (the information-flow analyzer
        # models a dict as one cell — mixing tiers would smear the result
        # label onto the rewrite every later query reads back).
        documents = shared.setdefault("documents", {})
        document_key = ("document", prep_key, id(cluster),
                        estimate.privacy_loss)
        cached = documents.get(document_key)
        if cached is None:
            with telemetry.span("source.execute"):
                result = execute(query, self.catalog)
            with telemetry.span("source.techniques") as span:
                result, applied = self._apply_techniques(
                    result, query, techniques
                )
                span.set(applied=[t.name for t in applied])
            with telemetry.span("source.tag_results"):
                generalizers = {
                    column: self._generalizer(column)
                    for column in rewrite.generalized_columns
                }
                document = tag_results(
                    result, self.name, rewrite.column_forms,
                    estimate.privacy_loss, applied, generalizers,
                )
            cached = documents[document_key] = document
        document = cached
        return SourceResponse(
            document, estimate.privacy_loss, estimate.information_loss,
            plan, cluster, rewrite, transform.sql,
        )

    # -- defenses and techniques ----------------------------------------------

    def _sequence_defenses(self, query, techniques):
        if not query.is_aggregate:
            return
        names = {t.name for t in techniques}
        query_set = self._query_set(query)
        if not query_set:
            raise PrivacyViolation(f"{self.name}: empty query set")
        if "set-size-control" in names:
            self.set_size.check(query_set)
        if self.overlap is not None:
            self.overlap.check_and_record(query_set)
        sums_private = any(
            a.func in ("sum", "avg") for a in query.aggregates
        )
        if "audit-trail" in names and sums_private:
            self.auditor.check_and_record(query_set)

    def _query_set(self, query):
        return [
            i for i, row in enumerate(self.table.rows_as_dicts())
            if query.where.evaluate(row)
        ]

    def _apply_techniques(self, result, query, techniques):
        applied = []
        for technique in techniques:
            if technique.name == "suppress-identifiers" and not query.is_aggregate:
                result = self._pseudonymize(result)
                applied.append(technique)
            elif technique.name == "k-anonymize" and not query.is_aggregate:
                anonymized = self._k_anonymize(
                    result, technique.parameters.get("k", 5)
                )
                if anonymized is not None:
                    result = anonymized
                    applied.append(technique)
            elif technique.name == "output-rounding" and query.is_aggregate:
                result = self._round_aggregates(
                    result, query, technique.parameters.get("base", 5.0)
                )
                applied.append(technique)
            elif technique.name in ("set-size-control", "audit-trail"):
                applied.append(technique)  # enforced in _sequence_defenses
        return result, applied

    def _pseudonymize(self, result):
        names = result.schema.column_names()
        identifier_columns = [
            n for n in names
            if any(normalize_name(n) == h or normalize_name(n).endswith(h)
                   for h in _IDENTIFIER_COLUMNS)
        ]
        if not identifier_columns:
            return result
        rows = []
        for row in result.rows_as_dicts():
            for column in identifier_columns:
                value = row[column]
                if value is not None:
                    row[column] = keyed_hash(
                        self.pseudonym_secret, str(value)
                    ).hex()[:12]
            rows.append(row)
        return Table.from_dicts(
            result.schema.name, rows, column_order=names,
            types={c: "text" for c in identifier_columns},
        ) if rows else result

    def _k_anonymize(self, result, k):
        qi_present = [
            c for c in self.qi_columns
            if result.schema.has_column(c)
        ]
        if not qi_present or len(result) < k:
            return None
        from repro.anonymity.mondrian import anonymized_records, mondrian_partition

        rows = list(result.rows_as_dicts())
        numeric = all(
            isinstance(row[c], (int, float)) and not isinstance(row[c], bool)
            for row in rows for c in qi_present
        )
        if not numeric:
            return None
        partitions = mondrian_partition(rows, qi_present, k)
        released = anonymized_records(partitions, qi_present)
        names = result.schema.column_names()
        return Table.from_dicts(
            result.schema.name, released, column_order=names,
            types={c: "text" for c in qi_present},
        )

    def _round_aggregates(self, result, query, base):
        func_of_alias = {a.alias: a.func for a in query.aggregates}
        names = result.schema.column_names()
        rows = []
        for row in result.rows_as_dicts():
            for alias, func in func_of_alias.items():
                value = row.get(alias)
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    if func in ("count", "sum"):
                        # Counts/sums: hard base rounding — small counts
                        # are exactly the dangerous ones.
                        row[alias] = round(float(value) / base) * base
                    else:
                        row[alias] = _scale_aware_round(float(value), base)
            rows.append(row)
        if not rows:
            return result
        return Table.from_dicts(
            result.schema.name, rows, column_order=names,
            types={a: "float" for a in func_of_alias},
        )

    def _perturb_aggregates(self, result, query, requester):
        func_of_alias = {a.alias: a.func for a in query.aggregates}
        names = result.schema.column_names()
        group_columns = [c for c in names if c not in func_of_alias]
        rows = []
        for row in result.rows_as_dicts():
            group_key = tuple(row.get(c) for c in group_columns)
            for alias in func_of_alias:
                value = row.get(alias)
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    fingerprint = (
                        f"{self.name}:{alias}:{query.where!r}:{group_key!r}"
                    )
                    row[alias] = self.output_mechanism.answer(
                        float(value), fingerprint, requester
                    )
            rows.append(row)
        if not rows:
            return result
        return Table.from_dicts(
            result.schema.name, rows, column_order=names,
            types={a: "float" for a in func_of_alias},
        )

    # -- helpers ---------------------------------------------------------------

    def _private_columns(self):
        view = self.policy_store.view_for(self.name)
        if view is None:
            return set()
        private = set()
        for column in self.table.schema.column_names():
            for path, form in view.entries:
                if normalize_name(path.steps[-1].name) == normalize_name(column):
                    private.add(column)
        return private

    def _generalizer(self, column):
        hierarchy = self.hierarchies.get(column)
        if hierarchy is not None:
            def generalize(value):
                if isinstance(value, str) and value.startswith("["):
                    return value  # already a range label (e.g. k-anonymized)
                return hierarchy.generalize(value, 1)

            return generalize

        def fallback(value):
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                low = (float(value) // 10.0) * 10.0
                return f"[{low:g}-{low + 10:g})"
            text = str(value)
            return f"{text[:1]}*" if text else "*"

        return fallback

    def __repr__(self):
        return f"RemoteSource({self.name!r}, rows={len(self.table)})"


def _scale_aware_round(value, base):
    """Round to ``base``, or to two significant digits for small values.

    A fixed base of 5 is right for percentage-scale aggregates but crushes
    fractional ones (a 0.83 compliance *rate*) to zero; small values keep
    two significant digits instead, which coarsens proportionally.
    """
    import math

    if abs(value) >= 2 * base:
        return round(value / base) * base
    if value == 0:
        return 0.0
    magnitude = math.floor(math.log10(abs(value)))
    factor = 10.0 ** (magnitude - 1)
    return round(value / factor) * factor
