"""PIQL — the privacy-conscious declarative query language (paper §5).

The paper requires a language that (a) poses loosely-structured path
queries over the mediated schema, (b) carries the requester's stated
purpose, and (c) carries the maximum information/privacy loss the requester
will tolerate.  PIQL is that language::

    SELECT AVG(//test/result)
    WHERE //patient/age > 65 AND //patient/hmo = 'HMO1'
    GROUP BY //patient/hmo
    PURPOSE outbreak-surveillance
    MAXLOSS 0.4

* :mod:`repro.query.model` — the query AST;
* :mod:`repro.query.language` — the PIQL parser;
* :mod:`repro.query.features` — query feature extraction for the
  privacy-conscious query clustering of §4.
"""

from repro.query.model import (
    PiqlAggregate,
    PiqlPredicate,
    PiqlQuery,
)
from repro.query.language import parse_piql
from repro.query.features import QueryFeatures, extract_features

__all__ = [
    "PiqlQuery",
    "PiqlAggregate",
    "PiqlPredicate",
    "parse_piql",
    "QueryFeatures",
    "extract_features",
]
