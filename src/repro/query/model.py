"""The PIQL query AST."""

from __future__ import annotations

from repro.errors import QueryError
from repro.xmlkit.path import PathExpr, parse_path

AGGREGATE_FUNCS = ("count", "sum", "avg", "min", "max", "stddev")
COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


def _as_path(path):
    if isinstance(path, str):
        return parse_path(path)
    if isinstance(path, PathExpr):
        return path
    raise QueryError(f"expected a path, got {type(path).__name__}")


class PiqlAggregate:
    """``FUNC(path) [AS alias]`` in a PIQL select list."""

    __slots__ = ("func", "path", "alias")

    def __init__(self, func, path, alias=None):
        func = func.lower()
        if func not in AGGREGATE_FUNCS:
            raise QueryError(f"unknown aggregate {func!r}")
        if path == "*":
            if func != "count":
                raise QueryError("only COUNT may aggregate *")
            self.path = None
        else:
            self.path = _as_path(path)
        self.func = func
        self.alias = alias or (
            "count" if self.path is None
            else f"{func}_{self.path.steps[-1].name}"
        )

    def __repr__(self):
        target = "*" if self.path is None else repr(self.path)
        return f"{self.func.upper()}({target}) AS {self.alias}"

    def __eq__(self, other):
        return (
            isinstance(other, PiqlAggregate)
            and (self.func, repr(self.path), self.alias)
            == (other.func, repr(other.path), other.alias)
        )


class PiqlPredicate:
    """``path <op> literal`` in a PIQL WHERE clause (conjunctive only)."""

    __slots__ = ("path", "op", "value")

    def __init__(self, path, op, value):
        if op not in COMPARISON_OPS:
            raise QueryError(f"unknown comparison operator {op!r}")
        self.path = _as_path(path)
        self.op = op
        self.value = value

    @property
    def is_equality(self):
        """Whether this is an equality predicate (high selectivity)."""
        return self.op == "="

    def __repr__(self):
        return f"{self.path!r} {self.op} {self.value!r}"

    def __eq__(self, other):
        return (
            isinstance(other, PiqlPredicate)
            and (repr(self.path), self.op, self.value)
            == (repr(other.path), other.op, other.value)
        )


class PiqlQuery:
    """One privacy-conscious query.

    ``select`` mixes :class:`~repro.xmlkit.path.PathExpr` items (plain
    projections) and :class:`PiqlAggregate` items; plain paths alongside
    aggregates require a GROUP BY on those paths.  ``purpose`` and
    ``max_loss`` are the §5 privacy clauses: the stated purpose is matched
    against policies, and ``max_loss`` is the information-loss bound the
    requester tolerates in the integrated result.
    """

    def __init__(self, select, where=(), group_by=(), purpose=None,
                 max_loss=1.0, source_hint=None):
        if not select:
            raise QueryError("SELECT list must not be empty")
        self.select = [
            item if isinstance(item, PiqlAggregate) else _as_path(item)
            for item in select
        ]
        self.where = list(where)
        for predicate in self.where:
            if not isinstance(predicate, PiqlPredicate):
                raise QueryError("WHERE items must be PiqlPredicate")
        self.group_by = [_as_path(p) for p in group_by]
        self.purpose = purpose
        if not 0.0 <= max_loss <= 1.0:
            raise QueryError("MAXLOSS must be in [0, 1]")
        self.max_loss = max_loss
        self.source_hint = source_hint

        plain = [i for i in self.select if isinstance(i, PathExpr)]
        if self.aggregates and plain and not self.group_by:
            raise QueryError(
                "plain paths beside aggregates require GROUP BY"
            )

    @property
    def aggregates(self):
        """The aggregate select items."""
        return [i for i in self.select if isinstance(i, PiqlAggregate)]

    @property
    def projections(self):
        """The plain path select items."""
        return [i for i in self.select if isinstance(i, PathExpr)]

    @property
    def is_aggregate(self):
        """Whether the query computes aggregates."""
        return bool(self.aggregates)

    def clone(self, **overrides):
        """An independent copy (fresh lists), with optional field overrides.

        The parse memo in :mod:`repro.query.language` hands out clones so
        callers may mutate ``purpose``/``select``/``where`` freely without
        poisoning the cached parse; the fingerprint canonicalizer uses
        ``clone(where=...)`` to reorder conjuncts without touching the
        original.  Path and aggregate items are immutable and shared.
        """
        fields = {
            "select": list(self.select),
            "where": list(self.where),
            "group_by": list(self.group_by),
            "purpose": self.purpose,
            "max_loss": self.max_loss,
            "source_hint": self.source_hint,
        }
        fields.update(overrides)
        return PiqlQuery(**fields)

    def paths_touched(self):
        """Every path the query references (select + where + group by)."""
        paths = list(self.projections)
        paths.extend(a.path for a in self.aggregates if a.path is not None)
        paths.extend(p.path for p in self.where)
        paths.extend(self.group_by)
        return paths

    def __repr__(self):
        from repro.query.language import to_piql

        return f"PiqlQuery({to_piql(self)!r})"
