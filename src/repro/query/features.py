"""Query feature extraction for privacy-conscious clustering (paper §4).

The Cluster Matching module decides which preservation techniques to apply
"by analyzing only the features of the query (types of predicates, types of
data returned, ...) without executing it".  This module turns a PIQL query
into that feature vector.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.query.model import AGGREGATE_FUNCS, PiqlQuery

_IDENTIFIER_HINTS = ("id", "ssn", "name", "dob", "dateofbirth", "patient")


class QueryFeatures:
    """A named feature bundle with a stable vector form."""

    FIELDS = (
        "returns_individuals",   # 1 when no aggregation (record-level output)
        "n_projections",
        "n_aggregates",
        "n_predicates",
        "n_equality_predicates",
        "n_range_predicates",
        "has_group_by",
        "touches_identifier",    # selects/filters an identifying path
        "touches_private",       # touches a privacy-view entry
        "requested_loss_budget",
    ) + tuple(f"agg_{func}" for func in AGGREGATE_FUNCS)

    def __init__(self, values):
        if set(values) != set(self.FIELDS):
            missing = set(self.FIELDS) ^ set(values)
            raise QueryError(f"feature fields mismatch: {sorted(missing)}")
        self.values = dict(values)

    def to_vector(self):
        """Feature values as floats in the stable :attr:`FIELDS` order."""
        return [float(self.values[f]) for f in self.FIELDS]

    def __getitem__(self, field):
        return self.values[field]

    def __repr__(self):
        active = {k: v for k, v in self.values.items() if v}
        return f"QueryFeatures({active})"


def extract_features(query, view=None):
    """Extract :class:`QueryFeatures` from a PIQL ``query``.

    ``view`` (a :class:`~repro.policy.views.PrivacyView`) marks private
    data; without one, ``touches_private`` is 0.
    """
    if not isinstance(query, PiqlQuery):
        raise QueryError("extract_features needs a PiqlQuery")

    touched = query.paths_touched()
    equality = sum(1 for p in query.where if p.is_equality)

    values = {
        "returns_individuals": 0.0 if query.is_aggregate else 1.0,
        "n_projections": float(len(query.projections)),
        "n_aggregates": float(len(query.aggregates)),
        "n_predicates": float(len(query.where)),
        "n_equality_predicates": float(equality),
        "n_range_predicates": float(len(query.where) - equality),
        "has_group_by": 1.0 if query.group_by else 0.0,
        "touches_identifier": 1.0 if any(
            _is_identifier_path(path) for path in touched
        ) else 0.0,
        "touches_private": 1.0 if view is not None and any(
            view.is_private(path) for path in touched
        ) else 0.0,
        "requested_loss_budget": float(query.max_loss),
    }
    for func in AGGREGATE_FUNCS:
        values[f"agg_{func}"] = float(
            sum(1 for a in query.aggregates if a.func == func)
        )
    return QueryFeatures(values)


def features_with_budget(base, max_loss):
    """``base`` with only ``requested_loss_budget`` replaced.

    Every other feature is MAXLOSS-independent, so a batch pipeline can
    extract one base per fragment shape and stamp the per-query budget
    here instead of re-walking the query's paths per MAXLOSS variant.
    """
    values = dict(base.values)
    values["requested_loss_budget"] = float(max_loss)
    return QueryFeatures(values)


def _is_identifier_path(path):
    from repro.xmlkit.loose import normalize_name

    last = normalize_name(path.steps[-1].name)
    return any(hint in last for hint in _IDENTIFIER_HINTS)
