"""PIQL parsing and rendering.

Grammar::

    query    := SELECT items [FROM name] [WHERE pred (AND pred)*]
                [GROUP BY path (, path)*] [PURPOSE name] [MAXLOSS number]
    items    := item (, item)*
    item     := path | FUNC '(' (path | '*') ')' [AS name]
    pred     := path op literal
    op       := = | != | <> | < | <= | > | >=
    literal  := number | 'string' | true | false

Keywords are case-insensitive; paths start with ``/``.
"""

from __future__ import annotations

import functools
import re

from repro.errors import QueryError
from repro.query.model import (
    AGGREGATE_FUNCS,
    PiqlAggregate,
    PiqlPredicate,
    PiqlQuery,
)
from repro.xmlkit.path import PathExpr, parse_path

_KEYWORDS = {
    "select", "from", "where", "and", "group", "by", "purpose", "maxloss",
    "as", "true", "false",
}


def to_piql(query):
    """Render a :class:`~repro.query.model.PiqlQuery` as PIQL text."""
    items = []
    for item in query.select:
        if isinstance(item, PathExpr):
            items.append(repr(item))
        else:
            target = "*" if item.path is None else repr(item.path)
            items.append(f"{item.func.upper()}({target}) AS {item.alias}")
    parts = [f"SELECT {', '.join(items)}"]
    if query.source_hint:
        parts.append(f"FROM {query.source_hint}")
    if query.where:
        rendered = " AND ".join(
            f"{p.path!r} {p.op} {_render_literal(p.value)}" for p in query.where
        )
        parts.append(f"WHERE {rendered}")
    if query.group_by:
        parts.append(f"GROUP BY {', '.join(repr(p) for p in query.group_by)}")
    if query.purpose:
        parts.append(f"PURPOSE {query.purpose}")
    if query.max_loss < 1.0:
        parts.append(f"MAXLOSS {query.max_loss:g}")
    return " ".join(parts)


# MAXLOSS renders strictly last (see ``to_piql``'s parts order) and
# string literals render quoted, so a bare trailing number can only be
# the MAXLOSS value — stripping the suffix is exact, no reparse needed.
_MAXLOSS_SUFFIX = re.compile(r" MAXLOSS [0-9.eE+-]+$")


def piql_without_maxloss(query):
    """Canonical PIQL text with the MAXLOSS clause elided.

    The batch pipeline (:meth:`repro.mediator.engine.MediationEngine
    .pose_many`) shares MAXLOSS-independent pipeline stages across the
    queries of one batch; this is the sharing key.  ``to_piql`` omits
    the clause when ``max_loss == 1.0``; otherwise the clause is
    stripped from the single render rather than re-rendering a clone —
    this key is computed per (query, source) on the batch hot path.
    """
    text = to_piql(query)
    if query.max_loss == 1.0:
        return text
    return _MAXLOSS_SUFFIX.sub("", text)


def parse_piql(text):
    """Parse PIQL text into a :class:`~repro.query.model.PiqlQuery`.

    Parses are memoized on the exact text (mediation traffic repeats —
    the premise of :mod:`repro.cache`'s tier 1) and the memo hands out
    :meth:`~repro.query.model.PiqlQuery.clone`\\ s, so callers may mutate
    the returned query (``PrivateIye.query`` fills in the session's
    default purpose) without poisoning the cached parse.
    """
    if not isinstance(text, str):
        raise QueryError("PIQL input must be a non-empty string")
    return _parse_piql_cached(text).clone()


# functools rather than repro.cache: the query layer sits below the cache
# layer (REP004 ranks), and a parse depends on nothing but its text — no
# epoch can invalidate it.  Failed parses raise and are never cached.
@functools.lru_cache(maxsize=256)
def _parse_piql_cached(text):
    parser = _PiqlParser(_tokenize(text), text)
    query = parser.parse_query()
    parser.expect_end()
    return query


def _render_literal(value):
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


# Compiled once at import: every token except paths (bracket-depth
# tracking) and strings (doubled-quote escapes) is regular.  Alternative
# order matters only for ``number`` vs ``word``/``op``: a sign or dot is
# numeric solely when a digit follows, which the pattern encodes.
_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<number>[+\-.]?\d[\d.]*)
    | (?P<op><=|>=|!=|<>|[=<>])
    | (?P<punct>[(),*])
    | (?P<word>[^\W\d][\w-]*)
    """,
    re.VERBOSE,
)


def _tokenize(text):
    if not isinstance(text, str) or not text.strip():
        raise QueryError("PIQL input must be a non-empty string")
    tokens = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "/":
            j = i
            depth = 0
            while j < n:
                c = text[j]
                if c == "[":
                    depth += 1
                elif c == "]":
                    depth -= 1
                elif depth == 0 and (c.isspace() or c in "(),"):
                    break
                j += 1
            tokens.append(("path", text[i:j]))
            i = j
        elif ch == "'":
            j = i + 1
            buffer = []
            while True:
                if j >= n:
                    raise QueryError(f"unterminated string in {text!r}")
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":
                        buffer.append("'")
                        j += 2
                        continue
                    break
                buffer.append(text[j])
                j += 1
            tokens.append(("string", "".join(buffer)))
            i = j + 1
        else:
            match = _TOKEN_RE.match(text, i)
            if match is None:
                raise QueryError(f"unexpected character {ch!r} at offset {i}")
            i = match.end()
            kind = match.lastgroup
            if kind == "ws":
                continue
            value = match.group()
            if kind == "op":
                tokens.append(("op", "!=" if value == "<>" else value))
            elif kind == "word":
                lowered = value.lower()
                if lowered in _KEYWORDS:
                    tokens.append(("keyword", lowered))
                else:
                    tokens.append(("word", value))
            else:
                tokens.append((kind, value))
    return tokens


class _PiqlParser:
    def __init__(self, tokens, text):
        self.tokens = tokens
        self.pos = 0
        self.text = text

    def parse_query(self):
        self._expect_keyword("select")
        select = [self._parse_item()]
        while self._accept_punct(","):
            select.append(self._parse_item())
        source_hint = None
        if self._accept_keyword("from"):
            source_hint = self._expect_word()
        where = []
        if self._accept_keyword("where"):
            where.append(self._parse_predicate())
            while self._accept_keyword("and"):
                where.append(self._parse_predicate())
        group_by = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self._expect_path())
            while self._accept_punct(","):
                group_by.append(self._expect_path())
        purpose = None
        if self._accept_keyword("purpose"):
            purpose = self._expect_word()
        max_loss = 1.0
        if self._accept_keyword("maxloss"):
            kind, value = self._next()
            if kind != "number":
                raise self._error("MAXLOSS needs a number")
            max_loss = float(value)
        return PiqlQuery(select, where, group_by, purpose, max_loss, source_hint)

    def expect_end(self):
        if self.pos != len(self.tokens):
            raise self._error(f"trailing tokens {self.tokens[self.pos:]}")

    def _parse_item(self):
        kind, value = self._peek()
        if kind == "path":
            self.pos += 1
            return parse_path(value)
        if kind == "word" and value.lower() in AGGREGATE_FUNCS:
            self.pos += 1
            self._expect_punct("(")
            inner_kind, inner_value = self._next()
            if inner_kind == "punct" and inner_value == "*":
                target = "*"
            elif inner_kind == "path":
                target = inner_value
            else:
                raise self._error(f"bad aggregate argument {inner_value!r}")
            self._expect_punct(")")
            alias = None
            if self._accept_keyword("as"):
                alias = self._expect_word()
            return PiqlAggregate(value.lower(), target, alias)
        raise self._error(f"bad select item {value!r}")

    def _parse_predicate(self):
        path = self._expect_path()
        kind, op = self._next()
        if kind != "op":
            raise self._error(f"expected a comparison operator, got {op!r}")
        literal = self._parse_literal()
        return PiqlPredicate(path, op, literal)

    def _parse_literal(self):
        kind, value = self._next()
        if kind == "string":
            return value
        if kind == "number":
            number = float(value)
            if number.is_integer() and "." not in value:
                return int(number)
            return number
        if kind == "keyword" and value in ("true", "false"):
            return value == "true"
        raise self._error(f"bad literal {value!r}")

    # -- cursor helpers ------------------------------------------------------

    def _peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) else (None, None)

    def _next(self):
        token = self._peek()
        self.pos += 1
        return token

    def _expect_keyword(self, word):
        kind, value = self._next()
        if kind != "keyword" or value != word:
            raise self._error(f"expected {word.upper()}, got {value!r}")

    def _accept_keyword(self, word):
        kind, value = self._peek()
        if kind == "keyword" and value == word:
            self.pos += 1
            return True
        return False

    def _expect_word(self):
        kind, value = self._next()
        if kind not in ("word", "keyword"):
            raise self._error(f"expected a name, got {value!r}")
        return value

    def _expect_path(self):
        kind, value = self._next()
        if kind != "path":
            raise self._error(f"expected a path, got {value!r}")
        return parse_path(value)

    def _expect_punct(self, char):
        kind, value = self._next()
        if kind != "punct" or value != char:
            raise self._error(f"expected {char!r}, got {value!r}")

    def _accept_punct(self, char):
        kind, value = self._peek()
        if kind == "punct" and value == char:
            self.pos += 1
            return True
        return False

    def _error(self, message):
        return QueryError(f"{message} (near token {self.pos} in {self.text!r})")
