"""Privacy-preserving schema matching (paper §5).

"The schemas of some sources may not be available freely due to privacy
constraints" — so the matcher never sees raw names or values.  Each source
locally prepares a *disclosure-safe* description of every exported
attribute:

* **hashed name tokens** — the attribute name is split into word tokens,
  each token (plus its local synonym expansions) is HMAC-hashed under a
  secret shared by the sources but *not* derivable by the mediator from
  the names themselves;
* an **instance profile** — coarse, k-safe statistics of the column's
  values (type, rounded mean/std, distinct ratio, mean length, character
  classes) that reveal distributional shape, not values.

The matcher scores attribute pairs by hashed-token Jaccard blended with
profile similarity.  ``open_name_matcher_score`` is the non-private
baseline (raw names through the loose matcher) used by benchmark A8.
"""

from __future__ import annotations

import math

from repro.errors import IntegrationError
from repro.crypto.keyed_hash import keyed_hash
from repro.xmlkit.loose import LoosePathMatcher, SynonymTable, name_tokens


class InstanceProfile:
    """Privacy-safe statistics of one attribute's values."""

    __slots__ = ("kind", "mean", "std", "distinct_ratio", "mean_length",
                 "digit_ratio", "alpha_ratio")

    def __init__(self, kind, mean=0.0, std=0.0, distinct_ratio=0.0,
                 mean_length=0.0, digit_ratio=0.0, alpha_ratio=0.0):
        self.kind = kind  # "numeric" | "text" | "bool"
        self.mean = mean
        self.std = std
        self.distinct_ratio = distinct_ratio
        self.mean_length = mean_length
        self.digit_ratio = digit_ratio
        self.alpha_ratio = alpha_ratio

    @classmethod
    def of_values(cls, values, round_digits=1):
        """Profile a column, rounding moments so exact values never leak."""
        values = [v for v in values if v is not None]
        if not values:
            return cls("text")
        if all(isinstance(v, bool) for v in values):
            mean = sum(1.0 for v in values if v) / len(values)
            return cls("bool", mean=round(mean, round_digits),
                       distinct_ratio=len(set(values)) / len(values))
        if all(isinstance(v, (int, float)) and not isinstance(v, bool)
               for v in values):
            mean = sum(values) / len(values)
            variance = sum((v - mean) ** 2 for v in values) / len(values)
            return cls(
                "numeric",
                mean=round(mean, round_digits),
                std=round(math.sqrt(variance), round_digits),
                distinct_ratio=round(len(set(values)) / len(values), 2),
            )
        texts = [str(v) for v in values]
        total_chars = sum(len(t) for t in texts) or 1
        digits = sum(sum(c.isdigit() for c in t) for t in texts)
        alphas = sum(sum(c.isalpha() for c in t) for t in texts)
        return cls(
            "text",
            distinct_ratio=round(len(set(texts)) / len(texts), 2),
            mean_length=round(total_chars / len(texts), 1),
            digit_ratio=round(digits / total_chars, 2),
            alpha_ratio=round(alphas / total_chars, 2),
        )

    def similarity(self, other):
        """Similarity in [0, 1] between two profiles."""
        if self.kind != other.kind:
            return 0.0
        if self.kind == "numeric":
            return (
                0.4 * _ratio_closeness(self.mean, other.mean)
                + 0.3 * _ratio_closeness(self.std, other.std)
                + 0.3 * (1.0 - abs(self.distinct_ratio - other.distinct_ratio))
            )
        if self.kind == "bool":
            return 1.0 - abs(self.mean - other.mean)
        return (
            0.4 * _ratio_closeness(self.mean_length, other.mean_length)
            + 0.2 * (1.0 - abs(self.distinct_ratio - other.distinct_ratio))
            + 0.2 * (1.0 - abs(self.digit_ratio - other.digit_ratio))
            + 0.2 * (1.0 - abs(self.alpha_ratio - other.alpha_ratio))
        )

    def __repr__(self):
        return f"InstanceProfile({self.kind})"


class AttributeDescriptor:
    """What one source discloses about one exported attribute."""

    def __init__(self, hashed_tokens, profile):
        self.hashed_tokens = frozenset(hashed_tokens)
        self.profile = profile


def describe_attribute(name, values, shared_secret, synonyms=None):
    """Build a source-local :class:`AttributeDescriptor` for ``name``.

    Token hashing uses ``shared_secret`` (known to sources, not chosen by
    the mediator); synonyms are expanded *before* hashing so dob and
    dateOfBirth collide in hash space.
    """
    synonyms = synonyms or SynonymTable()
    tokens = set(name_tokens(name))
    tokens |= synonyms.group_of(name)
    for token in list(tokens):
        tokens |= synonyms.group_of(token)
    hashed = {keyed_hash(shared_secret, token).hex() for token in tokens}
    return AttributeDescriptor(hashed, InstanceProfile.of_values(values))


class PrivateSchemaMatcher:
    """Scores attribute correspondences from descriptors only."""

    def __init__(self, name_weight=0.6, threshold=0.45):
        if not 0.0 <= name_weight <= 1.0:
            raise IntegrationError("name_weight must be in [0, 1]")
        self.name_weight = name_weight
        self.threshold = threshold

    def score(self, descriptor_a, descriptor_b):
        """Blended similarity of two attribute descriptors."""
        union = descriptor_a.hashed_tokens | descriptor_b.hashed_tokens
        if union:
            name_score = len(
                descriptor_a.hashed_tokens & descriptor_b.hashed_tokens
            ) / len(union)
        else:
            name_score = 0.0
        profile_score = descriptor_a.profile.similarity(descriptor_b.profile)
        return (
            self.name_weight * name_score
            + (1.0 - self.name_weight) * profile_score
        )

    def match(self, descriptors_a, descriptors_b):
        """Greedy 1:1 correspondences between two descriptor maps.

        Inputs map attribute name → descriptor (names are local to each
        source; the mediator sees them only because the *sources* chose to
        export those attributes).  Returns ``{name_a: (name_b, score)}``.
        """
        candidates = []
        for name_a, descriptor_a in descriptors_a.items():
            for name_b, descriptor_b in descriptors_b.items():
                score = self.score(descriptor_a, descriptor_b)
                if score >= self.threshold:
                    candidates.append((score, name_a, name_b))
        candidates.sort(key=lambda c: (-c[0], c[1], c[2]))
        matched_a, matched_b, correspondences = set(), set(), {}
        for score, name_a, name_b in candidates:
            if name_a in matched_a or name_b in matched_b:
                continue
            matched_a.add(name_a)
            matched_b.add(name_b)
            correspondences[name_a] = (name_b, score)
        return correspondences


def open_name_matcher_score(name_a, name_b, matcher=None):
    """The non-private baseline: loose matching on raw names (bench A8)."""
    matcher = matcher or LoosePathMatcher()
    return matcher.score_name(name_a, name_b)


def _ratio_closeness(a, b):
    largest = max(abs(a), abs(b))
    if largest == 0:
        return 1.0
    return max(0.0, 1.0 - abs(a - b) / largest)
