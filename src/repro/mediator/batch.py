"""Batch-scoped sharing state for ``pose_many()``.

One :class:`BatchContext` lives for exactly one ``pose_many`` /
``pose_stream`` call and carries the memoization the batch pipeline is
allowed to do — and *only* that.  The contract (``docs/performance.md``)
is the same one the mediation cache lives under: **sharing never skips
accounting**.  Everything a batch reuses is a pure recomputation —
transforms, policy decisions, rewrites, executed-and-anonymized result
documents, integration row sets — while everything stateful or charged
(sequence-guard checks, history entries, budget charging, cluster
absorption, audit-journal records, observatory folds, per-query events)
still runs once per query, in batch order, through the exact same code
path a looped ``pose()`` would take.

The shared tiers:

* ``static_shared`` — the plan analyzer's per-source interpretation
  prefix (transform → decisions → taint labels → dry-run rewrite),
  keyed on everything the prefix reads *except* MAXLOSS (see
  :meth:`repro.analysis.plancheck.PlanAnalyzer.analyze`);
* per-source dicts handed to :meth:`repro.source.server.RemoteSource
  .answer` as ``shared=`` — the source pipeline's MAXLOSS-independent
  stages for non-aggregate fragments (aggregates always run the full
  pipeline: their defenses and perturbation are stateful);
* ``integrate_memo`` — integration output per (mediated-name mapping,
  aggregate flag, exact response documents); every query gets fresh
  row dicts so results stay independently mutable.

Sources are duck-typed: a test double whose ``answer`` does not accept
``shared=`` simply gets called the plain way (checked once per source
per batch via :func:`inspect.signature`).
"""

from __future__ import annotations

import inspect


class PoseOutcome:
    """One query's outcome inside a ``pose_many`` batch.

    A refusal mid-batch must not abort the queries behind it — a looped
    caller would catch and continue — so ``pose_many`` captures each
    refusal instead of raising.  ``ok`` distinguishes the two shapes;
    :meth:`unwrap` restores the single-pose contract (return the result
    or raise the refusal) for callers that want it.
    """

    __slots__ = ("query", "requester", "result", "error")

    def __init__(self, query, requester, result=None, error=None):
        self.query = query
        self.requester = requester
        self.result = result
        self.error = error

    @property
    def ok(self):
        return self.error is None

    def unwrap(self):
        """The result, or re-raise the refusal exactly as ``pose()`` would."""
        if self.error is not None:
            raise self.error
        return self.result

    def __repr__(self):
        if self.ok:
            return f"PoseOutcome(answered, rows={len(self.result.rows)})"
        return f"PoseOutcome(refused, {type(self.error).__name__})"


class BatchContext:
    """Everything one batch may share between its queries.

    The batch also owns one :class:`~repro.telemetry.obs.context.
    TraceContext` (``trace``): every pose in the batch opens its root
    span under the same trace id, so a 256-query ``pose_many`` reads as
    one trace across the dispatcher's worker threads and the WAL writer
    — sharing an *identifier* is not sharing state, so the accounting
    contract above is untouched.
    """

    __slots__ = ("static_shared", "integrate_memo", "retained",
                 "_source_shared", "_supports_shared", "trace")

    def __init__(self, trace=None):
        self.trace = trace
        self.static_shared = {}
        # repro-lint: disable=REP007 -- batch-scoped, not a long-lived
        # cache: the memo lives exactly as long as one pose_many() call,
        # is bounded by the batch size, and must not survive into the
        # next batch (repro.cache epochs would let it).
        self.integrate_memo = {}
        # Response documents referenced (by id) in integrate_memo keys:
        # pinned here so an id can never be recycled mid-batch.
        self.retained = []
        self._source_shared = {}
        self._supports_shared = {}

    def shared_for(self, name, source):
        """The per-source sharing dict, or ``None`` if unsupported.

        ``None`` means ``source.answer`` does not take ``shared=`` (a
        duck-typed double) and must be called the plain way.
        """
        try:
            supports = self._supports_shared[name]
        except KeyError:
            answer = getattr(source, "answer", None)
            try:
                supports = "shared" in inspect.signature(answer).parameters
            except (TypeError, ValueError):
                supports = False
            self._supports_shared[name] = supports
        if not supports:
            return None
        return self._source_shared.setdefault(name, {})
