"""Query history and the mediator-side sequence guard (paper §4/§5).

Source-side auditing sees only its own queries; a snooper can spread a
tracker sequence across sources.  The mediator therefore keeps a global
:class:`MediatorHistory` per requester, and :class:`SequenceGuard` refuses
a request when the same requester has already aggregated the same private
mediated attribute under too many *distinct* predicates within the sliding
window — the cross-source analogue of overlap control.

Guard activity is observable: checks, refusals, and the distinct-probe
distribution are reported as ``sequence_guard.*`` metrics, and each
verdict (with the refusing reason) lands in the query's explain report
(:mod:`repro.telemetry`).

Durability contract (:mod:`repro.persistence`): the guard derives all
of its state from the history entries, so persisting each entry
write-ahead — and restoring them with :meth:`MediatorHistory.restore`
on recovery — is sufficient to make every pre-crash refusal final
after a restart.  :meth:`HistoryEntry.to_dict` is the logged form.
"""

from __future__ import annotations

from repro.errors import AuditRefusal, PersistenceError, ReproError
from repro.telemetry import NOOP


class HistoryEntry:
    """One answered (or refused) query in the history."""

    def __init__(self, sequence, requester, attributes, predicate_signature,
                 is_aggregate, refused):
        self.sequence = sequence
        self.requester = requester
        self.attributes = frozenset(attributes)
        self.predicate_signature = predicate_signature
        self.is_aggregate = is_aggregate
        self.refused = refused

    def to_dict(self):
        """JSON-serializable form — what the write-ahead log stores.

        Attribute order is canonicalized (sorted) so the logged bytes
        are deterministic; :func:`HistoryEntry.from_dict` round-trips
        it exactly, which is what keeps the SequenceGuard's verdicts
        identical across a restart.
        """
        return {
            "sequence": self.sequence,
            "requester": self.requester,
            "attributes": sorted(self.attributes),
            "predicate_signature": self.predicate_signature,
            "is_aggregate": self.is_aggregate,
            "refused": self.refused,
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild an entry from its logged form (recovery path)."""
        return cls(
            data["sequence"], data["requester"], data["attributes"],
            data["predicate_signature"], data["is_aggregate"],
            data["refused"],
        )

    def __repr__(self):
        status = "refused" if self.refused else "ok"
        return f"HistoryEntry(#{self.sequence} {self.requester} {status})"


class MediatorHistory:
    """Append-only per-requester query log."""

    def __init__(self):
        self._entries = []
        self._sequence = 0

    def record(self, requester, attributes, predicate_signature,
               is_aggregate, refused=False):
        """Append one entry and return it."""
        self._sequence += 1
        entry = HistoryEntry(
            self._sequence, requester, attributes, predicate_signature,
            is_aggregate, refused,
        )
        self._entries.append(entry)
        return entry

    def entries(self, requester=None):
        """All entries, optionally filtered by requester."""
        if requester is None:
            return list(self._entries)
        return [e for e in self._entries if e.requester == requester]

    def state_dict(self):
        """Snapshot form: the full entry list plus the sequence cursor.

        Everything the SequenceGuard (and recovery) needs — restoring
        this dict with :meth:`restore` reproduces guard verdicts
        bit-for-bit, because the guard reads nothing but entries.
        """
        return {
            "sequence": self._sequence,
            "entries": [e.to_dict() for e in self._entries],
        }

    def restore(self, entries):
        """Rebuild the history from logged entry dicts (recovery path).

        Only valid on an empty history — recovery always targets a
        freshly built engine; restoring over live entries would
        interleave two accounting streams, so it is refused outright.
        The sequence cursor resumes past the highest restored entry.
        """
        if self._entries:
            raise PersistenceError(
                "cannot restore into a non-empty MediatorHistory "
                f"({len(self._entries)} live entries)"
            )
        self._entries = [HistoryEntry.from_dict(e) for e in entries]
        self._sequence = max(
            (e.sequence for e in self._entries), default=0
        )
        return self._entries

    def __len__(self):
        return len(self._entries)


class SequenceGuard:
    """Refuses over-repeated aggregate probing of a private attribute."""

    def __init__(self, history, private_attributes, max_distinct_probes=3,
                 window=20, telemetry=None):
        if max_distinct_probes < 1:
            raise ReproError("max_distinct_probes must be >= 1")
        self.history = history
        self.private_attributes = set(private_attributes)
        self.max_distinct_probes = max_distinct_probes
        self.window = window
        self.telemetry = telemetry or NOOP

    def check(self, requester, attributes, predicate_signature, is_aggregate):
        """Raise :class:`AuditRefusal` when the request over-probes.

        Repeating an *identical* query is harmless (same answer); what the
        guard counts is distinct predicate signatures against the same
        private attribute within the window.
        """
        if not is_aggregate:
            return
        probed = set(attributes) & self.private_attributes
        if not probed:
            return
        metrics = self.telemetry.metrics
        metrics.counter("sequence_guard.checks").inc()
        recent = self.history.entries(requester)[-self.window:]
        for attribute in probed:
            signatures = {
                entry.predicate_signature
                for entry in recent
                if entry.is_aggregate
                and not entry.refused
                and attribute in entry.attributes
            }
            signatures.add(predicate_signature)
            metrics.histogram("sequence_guard.distinct_probes").observe(
                len(signatures)
            )
            if len(signatures) > self.max_distinct_probes:
                metrics.counter("sequence_guard.refusals").inc()
                self.telemetry.events.emit(
                    "sequence_guard.refusal", requester=requester,
                    attribute=attribute, distinct_probes=len(signatures),
                    limit=self.max_distinct_probes,
                )
                raise AuditRefusal(
                    f"requester {requester!r} has probed private attribute "
                    f"{attribute!r} with {len(signatures)} distinct "
                    f"predicates (limit {self.max_distinct_probes})"
                )
