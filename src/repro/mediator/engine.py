"""The MediationEngine facade — Figure 2(b) end to end.

Wires mediated-schema generation, fragmentation, concurrent per-source
answering (:mod:`repro.mediator.dispatch` — deadlines, retries, circuit
breakers, partial-results policies), result integration, privacy
control, history/sequence guarding, and the hybrid warehouse into one
``pose()`` call.

Every ``pose()`` is observable: the engine opens a ``mediator.pose`` span
(stages nest underneath), updates the metrics registry, and writes a
per-query :class:`~repro.telemetry.explain.ExplainReport` — the privacy
ledger recording the fragmentation plan, the sequence-guard verdict,
warehouse hit/miss, each source's answer or refusal (with the refusal
*kind* preserved), and the aggregated loss checked against the
requester's MAXLOSS.  With telemetry disabled (the default) all of this
degrades to no-op singleton calls; see :mod:`repro.telemetry`.

Durability contract (:mod:`repro.persistence`): with a persistence sink
attached, every pose's privacy effects — the history entry, the journal
record, per-source losses, released cells — are appended to the
write-ahead log durably *before* the answer is released to the caller
(and before a refusal is re-raised).  A crash at any instant therefore
leaves the store describing a superset of what requesters were shown:
charged-but-unreleased is possible, released-but-forgotten is not.
With ``persistence=None`` (the default) the query path carries a single
``is not None`` check and behaves byte-identically to before.
"""

from __future__ import annotations

from repro.analysis.plancheck import REFUSE, resolve_static_check
from repro.cache import canonical_piql, plan_fingerprint, resolve_cache
from repro.errors import (
    AuditRefusal,
    IntegrationError,
    PrivacyViolation,
    Refusal,
    ReproError,
    SourceUnavailable,
)
from repro.mediator.control import PrivacyControl
from repro.mediator.dispatch import FAULT_DEADLINE, FAULT_TRANSIENT, resolve_dispatch
from repro.mediator.fragmenter import QueryFragmenter
from repro.mediator.history import MediatorHistory, SequenceGuard
from repro.mediator.integrator import IntegratedResult, ResultIntegrator
from repro.mediator.mediated_schema import MediatedSchema, SourceExport
from repro.mediator.warehouse import Warehouse
from repro.observatory import released_cells, resolve_observatory
from repro.policy.model import DisclosureForm
from repro.query.language import parse_piql
from repro.query.model import PiqlQuery
from repro.telemetry import resolve_telemetry
from repro.telemetry.obs.context import TraceContext


class MediationEngine:
    """The privacy-preserving mediation engine."""

    def __init__(self, shared_secret="mediation-secret", linkage_attributes=(),
                 synonyms=None, warehouse=None, max_distinct_probes=4,
                 telemetry=None, dispatch=None, static_check=True,
                 cache=True, observatory=None, persistence=None):
        self.shared_secret = shared_secret
        self.linkage_attributes = list(linkage_attributes)
        self.synonyms = synonyms
        self.telemetry = resolve_telemetry(telemetry)
        self.warehouse = warehouse or Warehouse(mode="hybrid")
        # One Telemetry instance spans the whole deployment: the warehouse,
        # privacy control, and dispatcher report into the engine's registry.
        self.warehouse.telemetry = self.telemetry
        # ``dispatch``: None (default concurrent fan-out), a DispatchPolicy,
        # or a shared FanoutDispatcher (breakers persist across engines).
        self.dispatcher = resolve_dispatch(dispatch)
        self.dispatcher.telemetry = self.telemetry
        self.max_distinct_probes = max_distinct_probes
        # ``static_check``: True (default pre-dispatch plan analyzer),
        # False (gate off), or a PlanAnalyzer instance to share.
        self.static_analyzer = resolve_static_check(static_check)
        # ``cache``: True (default multi-tier mediation cache), False
        # (every pose recomputes), or a MediationCache to share/inject.
        # The warehouse remains the answer tier either way; with the
        # cache off it simply receives no epoch vectors.
        self.cache = resolve_cache(cache)
        if self.cache is not None:
            self.cache.telemetry = self.telemetry
            if (self.static_analyzer is not None
                    and self.static_analyzer.cache is None):
                self.static_analyzer.cache = self.cache.rewrites

        # ``observatory``: None (default — the query path carries a single
        # ``is None`` check and nothing else), True (fresh disclosure
        # journal + snooper watch), or an Observatory to share.  Alerts
        # and journal events land in the engine's event log.
        self.observatory = resolve_observatory(observatory)
        if self.observatory is not None:
            self.observatory.events = self.telemetry.events

        self.sources = {}
        self.schema = None
        self.fragmenter = None
        self.integrator = None
        self.control = PrivacyControl(telemetry=self.telemetry)
        self.history = MediatorHistory()
        self._sequence_guard = None

        # ``persistence``: None (default — in-memory privacy state,
        # byte-identical to the pre-durability behavior), True (a
        # memory-backend sink for restart simulation), a path / backend
        # / PersistenceSink (share one across rebuilds — that *is* the
        # restart story).  Deferred import: the persistence layer sits
        # *above* the mediator in the layering (it captures engine
        # state wholesale), so the module-level dependency must point
        # the other way.
        self.persistence = None
        if persistence is not None and persistence is not False:
            from repro.persistence import resolve_persistence

            self.persistence = resolve_persistence(persistence)
            self.persistence.bind(self)

    # -- setup ----------------------------------------------------------------

    def register_source(self, remote):
        """Register a :class:`~repro.source.server.RemoteSource`.

        The source adopts the engine's telemetry unless it was built with
        its own enabled instance, so per-source pipeline spans land in the
        same trace as the mediator's.
        """
        if remote.name in self.sources:
            raise IntegrationError(f"source {remote.name!r} already registered")
        if not remote.telemetry.enabled:
            remote.telemetry = self.telemetry
        self.sources[remote.name] = remote
        self.schema = None  # invalidate; rebuilt lazily
        if self.cache is not None:
            # The mediated schema (and every cached plan/verdict/answer
            # fanning out over it) is now stale.
            self.cache.note_source_registered()

    def build_schema(self):
        """(Re)build the mediated schema from the registered sources."""
        if not self.sources:
            raise IntegrationError("no sources registered")
        with self.telemetry.span("mediator.build_schema",
                                 n_sources=len(self.sources)):
            exports = [
                SourceExport.from_remote_source(
                    self.sources[name], self.shared_secret, self.synonyms
                )
                for name in sorted(self.sources)
            ]
            self.schema = MediatedSchema.build(exports)
            self.fragmenter = QueryFragmenter(self.schema)
            self.integrator = ResultIntegrator(
                self.schema, self.linkage_attributes
            )
            private = {
                name for name, attribute in self.schema.attributes.items()
                if attribute.form < DisclosureForm.EXACT
            }
            self._sequence_guard = SequenceGuard(
                self.history, private, self.max_distinct_probes,
                telemetry=self.telemetry,
            )
        return self.schema

    def mediated_vocabulary(self):
        """The attribute names requesters may use in queries."""
        self._ensure_schema()
        return self.schema.vocabulary()

    # -- querying ---------------------------------------------------------------

    def pose(self, query, requester="anonymous", role=None, subjects=(),
             emergency=False, use_warehouse=True):
        """Answer a PIQL query (text or :class:`PiqlQuery`).

        Returns an :class:`~repro.mediator.integrator.IntegratedResult`.
        Raises :class:`AuditRefusal` when the sequence guard blocks the
        requester, :class:`IntegrationError` when no source can answer,
        and :class:`PrivacyViolation` when every relevant source refused.

        With telemetry enabled, the call is wrapped in a ``mediator.pose``
        span and fully accounted for in an explain report retrievable via
        ``telemetry.explain_last()``.
        """
        return self._pose_wrapped(query, requester, role, subjects,
                                  emergency, use_warehouse)

    def pose_many(self, queries, requester="anonymous", role=None,
                  subjects=(), emergency=False, use_warehouse=True):
        """Answer a whole batch of queries for one principal, in order.

        Returns one :class:`~repro.mediator.batch.PoseOutcome` per query
        (in input order); a refused query is *captured* in its outcome —
        exactly as final as the exception ``pose()`` would have raised,
        and charged identically — instead of aborting the queries behind
        it.

        Equivalence contract: each query runs the full ``pose()``
        pipeline — admission (sequence guard, probe bookkeeping, static
        gate), dispatch, settlement (history entry, journal record,
        budget accounting, per-query events and explain ledger) — as a
        strict per-query loop in input order, so guards that read the
        history observe exactly the prefix a looped caller would have
        written.  What the batch *shares* is pure recomputation:
        MAXLOSS-independent analyzer and source-pipeline stages,
        integration of identical response sets, and the dispatch
        thread-pool spin-up (in-lined when no deadline is configured).
        See :mod:`repro.mediator.batch` and ``docs/performance.md``.
        """
        return list(self.pose_stream(
            queries, requester=requester, role=role, subjects=subjects,
            emergency=emergency, use_warehouse=use_warehouse,
        ))

    def pose_stream(self, queries, requester="anonymous", role=None,
                    subjects=(), emergency=False, use_warehouse=True):
        """Lazy :meth:`pose_many`: yields each outcome as it settles.

        Queries are admitted, charged, and recorded only as the iterator
        is consumed — abandoning the iterator abandons the unposed tail
        without side effects.
        """
        from repro.mediator.batch import BatchContext, PoseOutcome

        self._ensure_schema()
        # One trace id for the whole batch: every pose's root span (and
        # everything restored from it — fan-out attempts, WAL appends)
        # carries it, so the batch reads as one trace end to end.
        batch = BatchContext(
            trace=TraceContext.ensure(self.telemetry.tracer)
        )
        for query in queries:
            if isinstance(query, str):
                query = parse_piql(query)
            try:
                result = self._pose_wrapped(
                    query, requester, role, subjects, emergency,
                    use_warehouse, batch=batch,
                )
            except ReproError as error:
                yield PoseOutcome(query, requester, error=error)
            else:
                yield PoseOutcome(query, requester, result=result)

    def _pose_wrapped(self, query, requester, role, subjects, emergency,
                      use_warehouse, batch=None):
        """The ``pose()`` body; ``batch`` enables pose_many sharing."""
        self._ensure_schema()
        if isinstance(query, str):
            query = parse_piql(query)
        if not isinstance(query, PiqlQuery):
            raise IntegrationError("pose needs PIQL text or a PiqlQuery")

        telemetry = self.telemetry
        events = telemetry.events
        observatory = self.observatory
        report = telemetry.explain.begin(query, requester, role)
        # Tier-1 fingerprint: canonical text + principal + policy epoch.
        # Hoisted out of the pipeline body so the disclosure journal can
        # record *refused* poses under the same identity as answered ones.
        canonical = canonical_piql(query)
        policy_epoch = self._policy_epoch()
        fingerprint = plan_fingerprint(canonical, requester, role,
                                       subjects, policy_epoch)
        event_mark = events.mark()
        # ``effects`` collects the pose's durable side effects (the
        # history entry, for now) as ``_pose`` produces them, so the
        # write-ahead record below carries exactly what was charged.
        effects = {}
        # Batched poses share the batch's trace id; a lone pose mints
        # its own (inside Span._push).  The id rides the span stack to
        # fan-out workers and the WAL record to the writer thread.
        batch_trace = (batch.trace.trace_id
                       if batch is not None and batch.trace is not None
                       else None)
        with telemetry.span("mediator.pose", trace_id=batch_trace,
                            requester=requester) as span:
            try:
                result = self._pose(
                    query, requester, role, subjects, emergency,
                    use_warehouse, report, canonical, fingerprint,
                    policy_epoch, effects, batch,
                )
            except ReproError as error:
                report.finish("refused", error=error,
                              duration_ms=span.duration_ms)
                telemetry.metrics.counter("mediator.queries_refused").inc()
                telemetry.metrics.counter(
                    f"mediator.refusals.{type(error).__name__}"
                ).inc()
                events.emit(
                    "pose.refused", requester=requester,
                    fingerprint=fingerprint, trace_id=span.trace_id,
                    kind=type(error).__name__, reason=str(error),
                )
                audit = None
                if observatory is not None:
                    audit = observatory.record_pose(
                        requester, fingerprint, "refused",
                        kind=type(error).__name__,
                    )
                    report.set_audit(audit)
                if self.persistence is not None:
                    # Refusals are durable too: a refusal that was
                    # final before a crash must stay final after it,
                    # which takes the (guard-)history entry and the
                    # journal record surviving the restart.
                    self.persistence.record_pose({
                        "requester": requester,
                        "fingerprint": fingerprint,
                        "status": "refused",
                        "refusal_kind": type(error).__name__,
                        "trace_id": span.trace_id,
                        "history": effects.get("history"),
                        "journal": (audit.to_dict()
                                    if audit is not None else None),
                    })
                report.set_events(events.since(event_mark))
                raise
        record = None
        if observatory is not None:
            record = observatory.record_pose(
                requester, fingerprint, "answered",
                per_source_loss=result.per_source_loss,
                aggregated_loss=result.aggregated_loss,
            )
            report.set_audit(record)
        if self.persistence is not None:
            # THE write-ahead point: every privacy-relevant effect of
            # this pose is durable before the answer object is released
            # to the caller (the ``pose.answered`` event, the snooper
            # fold, and the return all happen after this line).
            self.persistence.record_pose({
                "requester": requester,
                "fingerprint": fingerprint,
                "status": "answered",
                "trace_id": span.trace_id,
                "history": effects.get("history"),
                "journal": record.to_dict() if record is not None else None,
                "per_source_loss": dict(result.per_source_loss),
                "aggregated_loss": result.aggregated_loss,
                "cells": [list(cell)
                          for cell in released_cells(query, result)],
                "pose_counted": observatory is not None,
            })
        # repro-lint: disable=REP010 -- aggregated/cumulative loss are
        # the §5 accounting aggregates the requester is handed anyway
        # (compound_loss outputs; tainted by tuple-return granularity).
        events.emit(
            "pose.answered", requester=requester, fingerprint=fingerprint,
            trace_id=span.trace_id,
            rows=len(result.rows), aggregated_loss=result.aggregated_loss,
            cumulative_loss=(record.cumulative_loss if record is not None
                             else None),
        )
        if observatory is not None:
            # Fold released aggregates into the requester's snooper
            # ledger and replay it — alert events land after this
            # pose's ``pose.answered`` and before the next pose's.
            observatory.observe_result(requester, query, result)
        report.set_events(events.since(event_mark))
        report.set_integration(len(result.rows), result.duplicates_removed)
        report.finish("answered", duration_ms=span.duration_ms)
        telemetry.metrics.counter("mediator.queries_answered").inc()
        telemetry.metrics.histogram("mediator.pose_ms").observe(
            span.duration_ms
        )
        # repro-lint: disable=REP010 -- same accounting aggregate as the
        # pose.answered payload above.
        telemetry.metrics.histogram("mediator.aggregated_loss").observe(
            result.aggregated_loss
        )
        return result

    def _pose(self, query, requester, role, subjects, emergency,
              use_warehouse, report, canonical, fingerprint, policy_epoch,
              effects, batch=None):
        """The ``pose()`` pipeline body (refusals propagate to the caller).

        The mediation cache accelerates this path but never shortens the
        accounting around it: the sequence guard runs, and the history
        records, on *every* pose — a cached answer is charged exactly
        like a fresh one.  Caching never bypasses auditing (see
        ``docs/performance.md``).

        ``effects`` is the caller's accumulator for durable side
        effects: both history-record sites (the guard-refusal one and
        the answered one) deposit the entry's logged form there so the
        caller can write it ahead of releasing the outcome.
        """
        telemetry = self.telemetry
        cache = self.cache

        with telemetry.span("mediator.fragment") as span:
            if cache is not None:
                plan, plan_hit = cache.plan_for(
                    canonical, lambda: self.fragmenter.fragment(query)
                )
                span.set(cached=plan_hit)
            else:
                plan, plan_hit = self.fragmenter.fragment(query), False
        report.set_fragmentation(plan)
        attributes = sorted(set(plan.mediated_names.values()))
        signature = self._predicate_signature(query)

        with telemetry.span("mediator.sequence_guard", requester=requester):
            try:
                self._sequence_guard.check(
                    requester, attributes, signature, query.is_aggregate
                )
            except AuditRefusal as refusal:
                report.set_guard("refused", str(refusal))
                entry = self.history.record(
                    requester, attributes, signature, query.is_aggregate,
                    refused=True,
                )
                effects["history"] = entry.to_dict()
                raise
        report.set_guard("pass")

        # Probe bookkeeping sits between the guard check and the epoch
        # snapshot: a *novel* aggregate probe advances the requester's
        # epoch first, so the entry stored below carries the post-advance
        # vector — valid for exact repeats, dead on the next novel probe.
        if cache is not None:
            cache.note_probe(requester, attributes, signature,
                             query.is_aggregate)

        # The fingerprint (computed in ``pose()``) is also the warehouse
        # key when the cache is disabled — unlike the old ad-hoc
        # ``requester|role|text`` string it includes subjects, so two
        # subject sets can no longer collide on one entry.
        epochs = (cache.epoch_vector(policy_epoch, requester)
                  if cache is not None else None)
        cache_info = {
            "enabled": cache is not None,
            "fingerprint": fingerprint,
            "epochs": dict(epochs) if epochs is not None else None,
            "plan": self._tier_outcome(cache, plan_hit),
            "static": "off",
            "answer": "off",
        }
        report.set_cache(cache_info)

        if self.static_analyzer is not None:
            self._static_gate(query, plan, requester, role, subjects,
                              use_warehouse, report, fingerprint,
                              cache_info, batch)

        if use_warehouse:
            with telemetry.span("mediator.warehouse") as span:
                try:
                    result, stats = self.warehouse.answer(
                        fingerprint,
                        lambda: self._compute(
                            query, plan, requester, role, subjects, report,
                            batch,
                        ),
                        n_sources=len(plan.sources),
                        emergency=emergency,
                        epochs=epochs,
                    )
                except ReproError:
                    # compute() raised → this was a cache miss; record it
                    # so refused-query ledgers still show the warehouse leg
                    report.set_warehouse_miss(self.warehouse.mode)
                    cache_info["answer"] = "miss"
                    report.set_cache(cache_info)
                    raise
                span.set(from_cache=stats.from_cache,
                         staleness=stats.staleness)
            report.set_warehouse(stats)
            # hit/miss like the other tiers; the hit's *origin*
            # (answer-cache vs legacy warehouse) is in the warehouse leg
            cache_info["answer"] = "hit" if stats.from_cache else "miss"
        else:
            result = self._compute(
                query, plan, requester, role, subjects, report, batch
            )
        report.set_cache(cache_info)

        entry = self.history.record(
            requester, attributes, signature, query.is_aggregate
        )
        effects["history"] = entry.to_dict()
        telemetry.metrics.gauge("mediator.history_entries").set(
            len(self.history)
        )
        return result

    def analyze(self, query, requester="anonymous", role=None, subjects=()):
        """Statically check a query without executing it.

        Fragments ``query`` and runs the plan analyzer
        (:class:`repro.analysis.plancheck.PlanAnalyzer`) over the
        registered sources.  Nothing is dispatched, no history is
        recorded, and the sequence guard is not consulted.  Returns a
        :class:`~repro.analysis.plancheck.PlanVerdict`.
        """
        self._ensure_schema()
        if isinstance(query, str):
            query = parse_piql(query)
        if not isinstance(query, PiqlQuery):
            raise IntegrationError("analyze needs PIQL text or a PiqlQuery")
        analyzer = self.static_analyzer or resolve_static_check(True)
        plan = self.fragmenter.fragment(query)
        return analyzer.analyze(
            query, plan, self.sources,
            requester=requester, role=role, subjects=subjects,
        )

    # -- internals -----------------------------------------------------------

    def _static_gate(self, query, plan, requester, role, subjects,
                     use_warehouse, report, fingerprint, cache_info,
                     batch=None):
        """Run the pre-dispatch plan analyzer; raise on a REFUSE verdict.

        A ``REFUSE`` is raised with the same exception type — and a
        message containing the same per-source reasons — that the
        runtime path would eventually produce, so callers and tests see
        one refusal contract regardless of where it was decided.  Tier 2
        memoizes the verdict on the fingerprint: a cached REFUSE replays
        the identical ledger entries and raises the identical message
        (sound because refusals are final and the fingerprint pins the
        policy epoch the verdict was decided under).
        """
        telemetry = self.telemetry
        cache = self.cache
        shared = batch.static_shared if batch is not None else None
        with telemetry.span("mediator.static_check",
                            n_sources=len(plan.sources)) as span:
            if cache is not None:
                verdict, cached = cache.static_verdict(
                    fingerprint,
                    lambda: self.static_analyzer.analyze(
                        query, plan, self.sources,
                        requester=requester, role=role, subjects=subjects,
                        shared=shared,
                    ),
                )
            else:
                verdict = self.static_analyzer.analyze(
                    query, plan, self.sources,
                    requester=requester, role=role, subjects=subjects,
                    shared=shared,
                )
                cached = False
            span.set(verdict=verdict.verdict, cached=cached)
        report.set_static(verdict)
        cache_info["static"] = self._tier_outcome(cache, cached)
        report.set_cache(cache_info)
        metrics = telemetry.metrics
        metrics.counter(
            f"mediator.static.{verdict.verdict.lower()}"
        ).inc()
        if not cached:
            # a replayed verdict would re-observe a stale timing
            metrics.histogram("mediator.static.analysis_ms").observe(
                verdict.analysis_ms
            )
        if verdict.verdict != REFUSE:
            return
        # Dispatch is skipped entirely: account for the saved fan-out
        # and leave a per-source ledger identical in shape to the one
        # the runtime refusal path would have written.
        metrics.counter("mediator.static.saved_source_calls").inc(
            len(plan.sources)
        )
        if use_warehouse:
            report.set_warehouse_miss(self.warehouse.mode)
        for name, outcome in sorted(verdict.per_source.items()):
            if outcome.refusal_kind is not None:
                report.source_refused(
                    name,
                    Refusal(outcome.refusal_kind, outcome.refusal_reason),
                    dispatch={"static": True},
                )
        raise PrivacyViolation(verdict.reason)

    def _compute(self, query, plan, requester, role, subjects, report=None,
                 batch=None):
        telemetry = self.telemetry
        if report is None:
            # direct callers (tests, warehouse refresh) skip the ledger
            from repro.telemetry import NOOP_REPORT
            report = NOOP_REPORT

        def call(source_name):
            source = self.sources[source_name]
            if batch is not None:
                shared = batch.shared_for(source_name, source)
                if shared is not None:
                    return source.answer(
                        plan.fragments[source_name],
                        requester=requester, role=role, subjects=subjects,
                        shared=shared,
                    )
            return source.answer(
                plan.fragments[source_name],
                requester=requester, role=role, subjects=subjects,
            )

        dispatcher = self.dispatcher
        with telemetry.span(
            "mediator.fanout",
            mode=dispatcher.policy.describe(), n_sources=len(plan.sources),
        ) as span:
            outcome_set = dispatcher.dispatch(plan.sources, call,
                                              enforce=False,
                                              inline=batch is not None)
            span.set(answered=len(outcome_set.responses),
                     retries=outcome_set.total_retries,
                     wall_ms=outcome_set.wall_ms)
            self._record_dispatch(outcome_set, report, telemetry)
            # Enforced after the ledger is written, so a failed quorum
            # still leaves per-source outcomes in explain_last().
            dispatcher.enforce_partial(outcome_set)

        responses = outcome_set.responses
        budgets = {
            name: response.rewrite.loss_budget
            for name, response in responses.items()
        }
        # Unreachable sources ride along with refusals so the integrated
        # result (and error messages) account for every planned source.
        refused = dict(outcome_set.refused)
        refused.update(outcome_set.unavailable)

        if not responses:
            detail = "; ".join(
                f"{s}: {r}" for s, r in sorted(refused.items())
            )
            if outcome_set.unavailable and not outcome_set.refused:
                raise SourceUnavailable(
                    f"no relevant source could be reached: {detail}"
                )
            raise PrivacyViolation(
                f"every relevant source refused the query: {detail}"
            )

        with telemetry.span("mediator.integrate", n_sources=len(responses)):
            rows, per_source_loss, duplicates = self._integrate(
                responses, plan, query.is_aggregate, batch
            )
        with telemetry.span("mediator.privacy_control"):
            kept_rows, aggregated, notices = self.control.verify(
                rows, per_source_loss, budgets
            )
        report.set_control(per_source_loss, aggregated, query.max_loss,
                           notices)
        if aggregated > query.max_loss + 1e-9:
            # repro-lint: disable=REP010 -- the refusal quotes the
            # requester's own MAXLOSS and the compound-loss aggregate
            # that exceeded it; both are accounting quantities, not
            # cells (tainted by tuple-return granularity).
            raise PrivacyViolation(
                f"aggregated privacy loss {aggregated:.3f} exceeds the "
                f"requester's MAXLOSS {query.max_loss:.3f}"
            )
        return IntegratedResult(
            kept_rows, per_source_loss, aggregated, notices, refused,
            duplicates,
        )

    def _integrate(self, responses, plan, is_aggregate, batch=None):
        """Integrate, with per-batch memoization of identical response sets.

        Integration is a pure function of the exact response documents
        and the plan's mediated-name mapping — the Bloom-filter dedup is
        deterministic and ``untag_results`` builds fresh row dicts —
        so a batch whose MAXLOSS variants produced the *same* documents
        (shared by :meth:`RemoteSource._answer_batched`) can reuse the
        integrated rows.  Every query still gets its own row-dict
        copies, keeping results independently mutable, and the privacy
        control + MAXLOSS check downstream run per query regardless.
        """
        if batch is None:
            return self.integrator.integrate(responses, plan, is_aggregate)
        key = (
            tuple(sorted(plan.mediated_names.items())),
            is_aggregate,
            tuple((name, id(responses[name].document))
                  for name in sorted(responses)),
        )
        cached = batch.integrate_memo.get(key)
        if cached is None:
            cached = batch.integrate_memo[key] = self.integrator.integrate(
                responses, plan, is_aggregate
            )
            # Pin the documents behind the key's ids for the batch's
            # lifetime so a recycled id can never alias a dead document.
            batch.retained.extend(
                responses[name].document for name in sorted(responses)
            )
        rows, per_source_loss, duplicates = cached
        return [dict(row) for row in rows], dict(per_source_loss), duplicates

    def _record_dispatch(self, outcome_set, report, telemetry):
        """Fold fan-out outcomes into the explain ledger and metrics."""
        metrics = telemetry.metrics
        for name, outcome in outcome_set.outcomes.items():
            stats = {
                "wall_ms": outcome.wall_ms,
                "attempts": outcome.attempts,
                "retries": outcome.retries,
                "faults": list(outcome.faults),
                "breaker_state": outcome.breaker_state,
            }
            if outcome.status == "answered":
                report.source_answered(name, outcome.response, dispatch=stats)
            elif outcome.status == "refused":
                report.source_refused(name, outcome.refusal, dispatch=stats)
                metrics.counter("mediator.source_refusals").inc()
            else:
                report.source_unavailable(name, outcome.refusal,
                                          dispatch=stats)
                metrics.counter("mediator.fanout.unavailable").inc()
            metrics.histogram("mediator.fanout.source_wall_ms").observe(
                outcome.wall_ms
            )
        faults = [f for o in outcome_set.outcomes.values() for f in o.faults]
        if outcome_set.total_retries:
            metrics.counter("mediator.fanout.retries").inc(
                outcome_set.total_retries
            )
        timeouts = sum(1 for f in faults if f == FAULT_DEADLINE)
        if timeouts:
            metrics.counter("mediator.fanout.timeouts").inc(timeouts)
        transients = sum(1 for f in faults if f == FAULT_TRANSIENT)
        if transients:
            metrics.counter("mediator.fanout.transients").inc(transients)
        metrics.histogram("mediator.fanout.wall_ms").observe(
            outcome_set.wall_ms
        )
        report.set_dispatch({
            "mode": outcome_set.mode,
            "policy": self.dispatcher.policy.describe(),
            "wall_ms": outcome_set.wall_ms,
            "retries": outcome_set.total_retries,
            "breakers": {
                name: outcome.breaker_state
                for name, outcome in outcome_set.outcomes.items()
            },
        })

    def _policy_epoch(self):
        """The policy epoch: the sum of per-source policy-store versions.

        Replica stores advance only through their own ``register_*``
        calls, so the sum advances whenever any source's policy state
        does — and a changed epoch changes every fingerprint, making all
        older cached artifacts unreachable.  Sources without a versioned
        store (duck-typed test doubles) contribute nothing.
        """
        total = 0
        for source in self.sources.values():
            store = getattr(source, "policy_store", None)
            version = getattr(store, "version", 0)
            if isinstance(version, int):
                total += version
        return total

    @staticmethod
    def _tier_outcome(cache, hit):
        return "off" if cache is None else ("hit" if hit else "miss")

    def _predicate_signature(self, query):
        return " AND ".join(
            sorted(repr(p) for p in query.where)
        ) or "<none>"

    def _ensure_schema(self):
        if self.schema is None:
            self.build_schema()

    def __repr__(self):
        return f"MediationEngine(sources={sorted(self.sources)})"
