"""The MediationEngine facade — Figure 2(b) end to end.

Wires mediated-schema generation, fragmentation, per-source answering,
result integration, privacy control, history/sequence guarding, and the
hybrid warehouse into one ``pose()`` call.
"""

from __future__ import annotations

from repro.errors import (
    AuditRefusal,
    IntegrationError,
    PathError,
    PrivacyViolation,
)
from repro.mediator.control import PrivacyControl
from repro.mediator.fragmenter import QueryFragmenter
from repro.mediator.history import MediatorHistory, SequenceGuard
from repro.mediator.integrator import IntegratedResult, ResultIntegrator
from repro.mediator.mediated_schema import MediatedSchema, SourceExport
from repro.mediator.warehouse import Warehouse
from repro.policy.model import DisclosureForm
from repro.query.language import parse_piql, to_piql
from repro.query.model import PiqlQuery


class MediationEngine:
    """The privacy-preserving mediation engine."""

    def __init__(self, shared_secret="mediation-secret", linkage_attributes=(),
                 synonyms=None, warehouse=None, max_distinct_probes=4):
        self.shared_secret = shared_secret
        self.linkage_attributes = list(linkage_attributes)
        self.synonyms = synonyms
        self.warehouse = warehouse or Warehouse(mode="hybrid")
        self.max_distinct_probes = max_distinct_probes

        self.sources = {}
        self.schema = None
        self.fragmenter = None
        self.integrator = None
        self.control = PrivacyControl()
        self.history = MediatorHistory()
        self._sequence_guard = None

    # -- setup ----------------------------------------------------------------

    def register_source(self, remote):
        """Register a :class:`~repro.source.server.RemoteSource`."""
        if remote.name in self.sources:
            raise IntegrationError(f"source {remote.name!r} already registered")
        self.sources[remote.name] = remote
        self.schema = None  # invalidate; rebuilt lazily

    def build_schema(self):
        """(Re)build the mediated schema from the registered sources."""
        if not self.sources:
            raise IntegrationError("no sources registered")
        exports = [
            SourceExport.from_remote_source(
                self.sources[name], self.shared_secret, self.synonyms
            )
            for name in sorted(self.sources)
        ]
        self.schema = MediatedSchema.build(exports)
        self.fragmenter = QueryFragmenter(self.schema)
        self.integrator = ResultIntegrator(
            self.schema, self.linkage_attributes
        )
        private = {
            name for name, attribute in self.schema.attributes.items()
            if attribute.form < DisclosureForm.EXACT
        }
        self._sequence_guard = SequenceGuard(
            self.history, private, self.max_distinct_probes
        )
        return self.schema

    def mediated_vocabulary(self):
        """The attribute names requesters may use in queries."""
        self._ensure_schema()
        return self.schema.vocabulary()

    # -- querying ---------------------------------------------------------------

    def pose(self, query, requester="anonymous", role=None, subjects=(),
             emergency=False, use_warehouse=True):
        """Answer a PIQL query (text or :class:`PiqlQuery`).

        Returns an :class:`~repro.mediator.integrator.IntegratedResult`.
        Raises :class:`AuditRefusal` when the sequence guard blocks the
        requester, :class:`IntegrationError` when no source can answer,
        and :class:`PrivacyViolation` when every relevant source refused.
        """
        self._ensure_schema()
        if isinstance(query, str):
            query = parse_piql(query)
        if not isinstance(query, PiqlQuery):
            raise IntegrationError("pose needs PIQL text or a PiqlQuery")

        plan = self.fragmenter.fragment(query)
        attributes = sorted(set(plan.mediated_names.values()))
        signature = self._predicate_signature(query)

        try:
            self._sequence_guard.check(
                requester, attributes, signature, query.is_aggregate
            )
        except AuditRefusal:
            self.history.record(
                requester, attributes, signature, query.is_aggregate,
                refused=True,
            )
            raise

        # Cache per requester/role: two requesters may legitimately see
        # different answers to the same text under RBAC or preferences.
        key = f"{requester}|{role}|{to_piql(query)}"
        if use_warehouse:
            result, _stats = self.warehouse.answer(
                key,
                lambda: self._compute(query, plan, requester, role, subjects),
                n_sources=len(plan.sources),
                emergency=emergency,
            )
        else:
            result = self._compute(query, plan, requester, role, subjects)

        self.history.record(
            requester, attributes, signature, query.is_aggregate
        )
        return result

    # -- internals -----------------------------------------------------------

    def _compute(self, query, plan, requester, role, subjects):
        responses = {}
        refused = {}
        budgets = {}
        for source_name in plan.sources:
            remote = self.sources[source_name]
            fragment = plan.fragments[source_name]
            try:
                response = remote.answer(
                    fragment, requester=requester, role=role, subjects=subjects
                )
            except (PrivacyViolation, PathError) as refusal:
                refused[source_name] = str(refusal)
                continue
            responses[source_name] = response
            budgets[source_name] = response.rewrite.loss_budget

        if not responses:
            raise PrivacyViolation(
                "every relevant source refused the query: "
                + "; ".join(f"{s}: {r}" for s, r in sorted(refused.items()))
            )

        rows, per_source_loss, duplicates = self.integrator.integrate(
            responses, plan, query.is_aggregate
        )
        kept_rows, aggregated, notices = self.control.verify(
            rows, per_source_loss, budgets
        )
        if aggregated > query.max_loss + 1e-9:
            raise PrivacyViolation(
                f"aggregated privacy loss {aggregated:.3f} exceeds the "
                f"requester's MAXLOSS {query.max_loss:.3f}"
            )
        return IntegratedResult(
            kept_rows, per_source_loss, aggregated, notices, refused,
            duplicates,
        )

    def _predicate_signature(self, query):
        return " AND ".join(
            sorted(repr(p) for p in query.where)
        ) or "<none>"

    def _ensure_schema(self):
        if self.schema is None:
            self.build_schema()

    def __repr__(self):
        return f"MediationEngine(sources={sorted(self.sources)})"
