"""The Query Fragmenter (paper §5).

Parses the requester's PIQL query against the mediated schema, determines
which sources are *relevant* (export every attribute the query needs —
"sending queries to irrelevant sources affects adversely the efficiency"),
and emits one PIQL fragment per relevant source with paths translated to
that source's local attribute names.
"""

from __future__ import annotations

from repro.errors import IntegrationError
from repro.query.model import PiqlAggregate, PiqlPredicate, PiqlQuery
from repro.xmlkit.loose import LoosePathMatcher
from repro.xmlkit.path import PathExpr, Step


class FragmentPlan:
    """The fragmenter's output: per-source fragments plus bookkeeping."""

    def __init__(self, fragments, mediated_names, skipped_sources):
        self.fragments = dict(fragments)  # source → PiqlQuery
        self.mediated_names = dict(mediated_names)  # path repr → mediated name
        self.skipped_sources = dict(skipped_sources)  # source → reason

    @property
    def sources(self):
        """The relevant sources, sorted."""
        return sorted(self.fragments)

    def __repr__(self):
        return f"FragmentPlan(sources={self.sources})"


class QueryFragmenter:
    """Source selection + per-source fragment construction."""

    def __init__(self, schema, matcher=None):
        self.schema = schema
        self.matcher = matcher or LoosePathMatcher()

    def fragment(self, query):
        """Build the :class:`FragmentPlan` for ``query``.

        Raises :class:`IntegrationError` when a path cannot be resolved
        against the mediated schema or no source can answer.
        """
        if not isinstance(query, PiqlQuery):
            raise IntegrationError("fragment needs a PiqlQuery")
        vocabulary = set(self.schema.vocabulary())

        mediated_names = {}
        for path in query.paths_touched():
            leaf = path.steps[-1].name
            if leaf == "*":
                raise IntegrationError("wildcard leaves cannot be fragmented")
            match, score = self.matcher.best_match(leaf, vocabulary)
            if match is None:
                raise IntegrationError(
                    f"no mediated attribute matches {leaf!r} "
                    f"(best score {score:.2f}); the attribute may be "
                    "suppressed by every source's privacy view"
                )
            mediated_names[repr(path)] = match

        needed = sorted(set(mediated_names.values()))
        candidates = self.schema.sources_for(needed)
        if query.source_hint:
            if query.source_hint not in candidates:
                raise IntegrationError(
                    f"hinted source {query.source_hint!r} cannot answer "
                    f"(needs {needed})"
                )
            candidates = [query.source_hint]

        skipped = {}
        all_sources = self.schema.sources_for([])
        for source in all_sources:
            if source not in candidates:
                missing = [
                    n for n in needed
                    if source not in self.schema.attribute(n).local_names
                ]
                skipped[source] = f"missing attributes {missing}"

        if not candidates:
            raise IntegrationError(
                f"no source exports all of {needed}; "
                f"skipped: {skipped}"
            )

        fragments = {
            source: self._fragment_for(query, mediated_names, source)
            for source in candidates
        }
        return FragmentPlan(fragments, mediated_names, skipped)

    def _fragment_for(self, query, mediated_names, source):
        def translate(path):
            mediated = mediated_names[repr(path)]
            local = self.schema.local_name(mediated, source)
            steps = list(path.steps[:-1])
            last = path.steps[-1]
            steps.append(Step(last.axis, local, last.predicates,
                              last.is_attribute))
            return PathExpr(steps)

        select = []
        for item in query.select:
            if isinstance(item, PiqlAggregate):
                select.append(
                    PiqlAggregate(
                        item.func,
                        "*" if item.path is None else translate(item.path),
                        item.alias,
                    )
                )
            else:
                select.append(translate(item))
        where = [
            PiqlPredicate(translate(p.path), p.op, p.value)
            for p in query.where
        ]
        group_by = [translate(p) for p in query.group_by]
        return PiqlQuery(
            select, where, group_by,
            purpose=query.purpose, max_loss=query.max_loss,
        )
