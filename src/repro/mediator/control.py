"""The Privacy Control module (paper §5).

After integration the mediator re-verifies privacy: "the computed value of
privacy loss in a source may not hold after the results are integrated with
other sources."  Two mechanisms:

* **aggregated loss** — integrating overlapping releases compounds
  exposure; the combined loss is ``1 - Π(1 - loss_i)`` over the
  contributing sources (independent-evidence model).  When the aggregate
  exceeds a source's granted budget, that source's rows are withheld and
  the source is notified (a :class:`ViolationNotice`), exactly as §5
  prescribes.
* **inference-guard checks** — before the mediator *publishes* an
  aggregate table it runs the Figure-1 snooping inference defensively via
  :class:`repro.inference.guard.InferenceGuard` (see
  :meth:`PrivacyControl.check_publication`).

Each verification also feeds the telemetry registry (``control.*``
counters and the aggregated-loss histogram); the per-query loss ledger
itself lives in the engine's explain report (:mod:`repro.telemetry`).

Durability contract (:mod:`repro.persistence`): this module is
deliberately stateless per pose — the per-source and aggregated losses
it computes are what the engine writes ahead of answer release, and the
*cumulative* compounding over poses lives in the audit journal
(:mod:`repro.observatory.journal`), which is what recovery restores.
``notices_sent`` is a best-effort operator courtesy, not accounting,
and is intentionally not persisted.
"""

from __future__ import annotations

from repro.inference.guard import InferenceGuard
from repro.metrics.privacy_loss import budget_fixed_point, compound_loss
from repro.telemetry import NOOP


class ViolationNotice:
    """Notification sent to a source whose constraint would be violated."""

    def __init__(self, source, aggregated_loss, budget, detail):
        self.source = source
        self.aggregated_loss = aggregated_loss
        self.budget = budget
        self.detail = detail

    def __repr__(self):
        return (
            f"ViolationNotice({self.source!r}: aggregated "
            f"{self.aggregated_loss:.3f} > budget {self.budget:.3f})"
        )


class PrivacyControl:
    """Aggregated-loss verification + defensive inference checks."""

    def __init__(self, guard=None, telemetry=None):
        self.guard = guard or InferenceGuard(min_interval_width=5.0, starts=2)
        self.notices_sent = []
        self.telemetry = telemetry or NOOP

    def aggregated_loss(self, per_source_loss):
        """Combined privacy loss of integrating several releases."""
        return compound_loss(per_source_loss.values())

    def verify(self, rows, per_source_loss, budgets):
        """Enforce every source's budget against the aggregated loss.

        ``budgets`` maps source → the loss budget that source granted for
        its fragment (from its rewrite).  Sources whose budget is exceeded
        by the aggregate have their rows withheld and receive a notice.
        Returns ``(kept_rows, aggregated_loss, notices)``.

        The withholding fixed point itself lives in
        :func:`repro.metrics.privacy_loss.budget_fixed_point` so the static
        plan analyzer applies the identical loop.
        """
        participating, aggregated, withheld = budget_fixed_point(
            per_source_loss, budgets
        )
        notices = [
            ViolationNotice(
                source,
                loss_at_withholding,
                budget,
                "aggregated loss of integrated result exceeds the "
                "budget granted by this source",
            )
            for source, loss_at_withholding, budget in withheld
        ]

        kept_sources = set(participating)
        kept_rows = [
            row for row in rows
            if _row_sources(row) & kept_sources == _row_sources(row)
        ]
        self.notices_sent.extend(notices)
        metrics = self.telemetry.metrics
        metrics.counter("control.verifications").inc()
        if notices:
            metrics.counter("control.notices_sent").inc(len(notices))
            metrics.counter("control.rows_withheld").inc(
                len(rows) - len(kept_rows)
            )
            for notice in notices:
                # repro-lint: disable=REP010 -- §5 violation notices ARE
                # the protocol: the source granted the budget and is owed
                # the compound loss that tripped it; both are aggregates
                # from compound_loss, tainted only by tuple-return
                # granularity.
                self.telemetry.events.emit(
                    "control.violation_notice", source=notice.source,
                    aggregated_loss=notice.aggregated_loss,
                    budget=notice.budget,
                )
        # repro-lint: disable=REP010 -- compound loss is the published
        # accounting aggregate (report.set_control hands it to the
        # requester); tainted only by tuple-return granularity.
        metrics.histogram("control.aggregated_loss").observe(aggregated)
        return kept_rows, aggregated, notices

    def check_publication(self, published, true_matrix):
        """Defensive Figure-1 inference check before releasing aggregates."""
        return self.guard.check(published, true_matrix)


def _row_sources(row):
    source = row.get("_source", "")
    return set(source.split("+")) if source else set()
