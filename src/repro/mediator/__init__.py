"""The privacy-preserving mediation engine (paper §5, Figure 2b).

* :mod:`repro.mediator.schema_matching` — *Privacy Preserving Schema
  Matching*: correspondences between source schemas from hashed name
  tokens and privacy-safe instance statistics (plus the open baseline).
* :mod:`repro.mediator.mediated_schema` — *Mediated Schema Generation*:
  the partial structural summary honoring each source's privacy view.
* :mod:`repro.mediator.fragmenter` — *Query Fragmenter*: source selection
  and per-source PIQL fragments.
* :mod:`repro.mediator.integrator` — *Result Integrator*: merge + private
  deduplication of source results.
* :mod:`repro.mediator.control` — *Privacy Control*: aggregated privacy
  loss of the integrated result, inference-guard checks, violation
  notifications to sources.
* :mod:`repro.mediator.history` — query history and the mediator-side
  sequence guard.
* :mod:`repro.mediator.warehouse` — hybrid virtual/warehouse answering.
* :mod:`repro.mediator.dispatch` — concurrent fault-tolerant source
  fan-out: deadlines, retries, circuit breakers, partial-results
  policies.
* :mod:`repro.mediator.engine` — the :class:`MediationEngine` facade.
"""

from repro.mediator.schema_matching import (
    InstanceProfile,
    PrivateSchemaMatcher,
    open_name_matcher_score,
)
from repro.mediator.mediated_schema import MediatedSchema, SourceExport
from repro.mediator.fragmenter import FragmentPlan, QueryFragmenter
from repro.mediator.integrator import IntegratedResult, ResultIntegrator
from repro.mediator.control import PrivacyControl, ViolationNotice
from repro.mediator.history import MediatorHistory, SequenceGuard
from repro.mediator.warehouse import Warehouse
from repro.mediator.dispatch import (
    CircuitBreaker,
    DispatchPolicy,
    DispatchResult,
    FanoutDispatcher,
    SourceOutcome,
)
from repro.mediator.engine import MediationEngine

__all__ = [
    "PrivateSchemaMatcher",
    "InstanceProfile",
    "open_name_matcher_score",
    "MediatedSchema",
    "SourceExport",
    "QueryFragmenter",
    "FragmentPlan",
    "ResultIntegrator",
    "IntegratedResult",
    "PrivacyControl",
    "ViolationNotice",
    "MediatorHistory",
    "SequenceGuard",
    "Warehouse",
    "DispatchPolicy",
    "FanoutDispatcher",
    "DispatchResult",
    "SourceOutcome",
    "CircuitBreaker",
    "MediationEngine",
]
