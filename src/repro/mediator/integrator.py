"""The Result Integrator (paper §5).

Collects per-source tagged XML results, renames local attributes back to
mediated names, merges the row sets, and removes cross-source duplicates —
"such object matchings have to be done without revealing the origins of the
sources or the real world origins of the entities", so deduplication runs
on Bloom encodings of the configured linkage attributes rather than
plaintext identifiers.
"""

from __future__ import annotations

from repro.errors import IntegrationError
from repro.linkage.private import BloomRecordEncoder
from repro.source.results import untag_results
from repro.telemetry import redact


class IntegratedResult:
    """What the mediation engine hands back to the requester."""

    def __init__(self, rows, per_source_loss, aggregated_loss, notices,
                 refused_sources, duplicates_removed):
        self.rows = list(rows)
        self.per_source_loss = dict(per_source_loss)
        self.aggregated_loss = aggregated_loss
        self.notices = list(notices)
        self.refused_sources = dict(refused_sources)
        self.duplicates_removed = duplicates_removed

    def __len__(self):
        return len(self.rows)

    def __repr__(self):
        return (
            f"IntegratedResult(rows={len(self.rows)}, "
            f"loss={self.aggregated_loss:.3f}, "
            f"sources={sorted(self.per_source_loss)})"
        )


class ResultIntegrator:
    """Merges tagged source documents into one mediated row set."""

    def __init__(self, schema, linkage_attributes=(), dedup_threshold=0.85,
                 bloom_secret="integration"):
        self.schema = schema
        self.linkage_attributes = list(linkage_attributes)
        self.dedup_threshold = dedup_threshold
        self.bloom_secret = bloom_secret

    def integrate(self, responses, plan, is_aggregate):
        """Merge ``responses`` (source → SourceResponse).

        Returns ``(rows, per_source_loss, duplicates_removed)``; rows carry
        a ``_source`` key.  Aggregate results are never deduplicated — each
        source's aggregate is a distinct fact about that source.
        """
        rows = []
        per_source_loss = {}
        for source in sorted(responses):
            response = responses[source]
            doc_source, doc_rows, metadata = untag_results(response.document)
            if doc_source != source:
                # A forged source tag is attacker-controlled text; the
                # error carries digests so operators can correlate the
                # mismatch without the message echoing the payload.
                raise IntegrationError(
                    f"document claims source {redact.digest(doc_source)}, "
                    f"expected {redact.digest(source)}"
                )
            per_source_loss[source] = metadata["loss"]
            rename = self._rename_map(plan, source)
            for row in doc_rows:
                mediated_row = {
                    rename.get(column, column): value
                    for column, value in row.items()
                }
                mediated_row["_source"] = source
                rows.append(mediated_row)

        duplicates_removed = 0
        if not is_aggregate and self.linkage_attributes:
            rows, duplicates_removed = self._private_dedup(rows)
        return rows, per_source_loss, duplicates_removed

    def _rename_map(self, plan, source):
        rename = {}
        for _path_repr, mediated in plan.mediated_names.items():
            attribute = self.schema.attribute(mediated)
            local = attribute.local_names.get(source)
            if local is not None:
                rename[local] = mediated
        return rename

    def _private_dedup(self, rows):
        """Cross-source Bloom dedup on the linkage attributes."""
        fields = [
            f for f in self.linkage_attributes
            if any(f in row for row in rows)
        ]
        if not fields:
            return rows, 0
        encoder = BloomRecordEncoder(
            fields, size=512, num_hashes=4, secret=self.bloom_secret
        )
        kept = []
        kept_blooms = []
        removed = 0
        for row in rows:
            bloom = encoder.encode(row)
            duplicate_of = None
            for index, existing in enumerate(kept_blooms):
                if (
                    kept[index]["_source"] != row["_source"]
                    and existing.dice_similarity(bloom) >= self.dedup_threshold
                ):
                    duplicate_of = index
                    break
            if duplicate_of is None:
                kept.append(dict(row))
                kept_blooms.append(bloom)
            else:
                removed += 1
                merged = kept[duplicate_of]
                for key, value in row.items():
                    if key == "_source":
                        merged["_source"] = f"{merged['_source']}+{value}"
                    elif merged.get(key) in (None, "") and value not in (None, ""):
                        merged[key] = value
        return kept, removed
