"""Concurrent fault-tolerant source fan-out for the mediation engine.

The seed engine answered every query by calling each remote source in a
blocking loop, so end-to-end latency was the *sum* of per-source
latencies and one hung source stalled the whole ``pose()``.  This module
gives the engine a dispatch layer that treats sources the way the
composition literature treats them — autonomous participants that fail
independently:

* **Concurrency** — per-source ``answer`` calls run on a
  ``ThreadPoolExecutor``; wall-clock becomes the *max* of per-source
  latencies instead of the sum.
* **Deadlines** — each attempt gets ``timeout_s``; a source that hangs
  past its deadline is abandoned (the coordinator stops waiting; the
  worker thread drains on its own) and the attempt counts as a fault.
* **Retries** — :class:`~repro.errors.TransientSourceError` and deadline
  expiries are retried with bounded exponential backoff.  A
  :class:`~repro.errors.PrivacyViolation` or :class:`~repro.errors.PathError`
  is a *final protocol answer* and is never retried.
* **Circuit breakers** — per-source, persistent across ``pose()`` calls:
  after ``breaker_threshold`` consecutive faults the breaker opens and
  calls fail fast; after ``breaker_cooldown_s`` one half-open probe is
  allowed through, closing the breaker on success.
* **Partial-results policies** — ``require_all`` (default: any
  unreachable source aborts the query), ``quorum(k)`` (at least ``k``
  answers), ``best_effort`` (integrate whatever arrived).  Policy
  refusals keep their existing semantics under every policy: a refusing
  source never blocks integration of the others.

Everything is observable: each dispatch returns per-source
:class:`SourceOutcome` records (attempts, retries, wall-clock, fault
kinds, breaker state) that the engine folds into the explain ledger and
the metrics registry, and per-attempt spans parent under the engine's
``mediator.fanout`` span even though they run on worker threads.

``mode="sequential"`` runs the same state machine in-line (no pool, no
deadline preemption) — it is the benchmark baseline and the behavioural
reference for the zero-fault equivalence property tests.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait

from repro.errors import (
    PathError,
    PrivacyViolation,
    Refusal,
    ReproError,
    SourceUnavailable,
    TransientSourceError,
)
from repro.telemetry.obs.context import TraceContext

#: Exceptions that are final protocol answers — recorded as refusals,
#: never retried, never counted against the circuit breaker.
REFUSAL_ERRORS = (PrivacyViolation, PathError)

#: Fault kinds a :class:`SourceOutcome` may carry.
FAULT_TRANSIENT = "TransientSourceError"
FAULT_DEADLINE = "DeadlineExceeded"
FAULT_BREAKER = "CircuitOpen"


class DispatchPolicy:
    """Configuration for one :class:`FanoutDispatcher`.

    ``partial`` is ``"require_all"``, ``"best_effort"``, or ``("quorum", k)``
    (use the :meth:`quorum` helper).  ``timeout_s=None`` disables
    per-attempt deadlines; ``retries`` bounds *re*-attempts per source
    (``retries=2`` allows three attempts total).
    """

    __slots__ = ("mode", "max_workers", "timeout_s", "retries",
                 "backoff_base_s", "backoff_factor", "backoff_max_s",
                 "breaker_threshold", "breaker_cooldown_s", "partial")

    def __init__(self, mode="concurrent", max_workers=None, timeout_s=None,
                 retries=2, backoff_base_s=0.05, backoff_factor=2.0,
                 backoff_max_s=2.0, breaker_threshold=5,
                 breaker_cooldown_s=30.0, partial="require_all"):
        if mode not in ("concurrent", "sequential"):
            raise ReproError(f"unknown dispatch mode {mode!r}")
        if retries < 0:
            raise ReproError("retries must be >= 0")
        if timeout_s is not None and timeout_s <= 0:
            raise ReproError("timeout_s must be positive (or None)")
        if breaker_threshold < 1:
            raise ReproError("breaker_threshold must be >= 1")
        kind, k = self._parse_partial(partial)
        self.mode = mode
        self.max_workers = max_workers
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_factor = backoff_factor
        self.backoff_max_s = backoff_max_s
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        self.partial = (kind, k) if kind == "quorum" else kind

    @staticmethod
    def _parse_partial(partial):
        if partial in ("require_all", "best_effort"):
            return partial, None
        if (isinstance(partial, tuple) and len(partial) == 2
                and partial[0] == "quorum" and isinstance(partial[1], int)
                and partial[1] >= 1):
            return "quorum", partial[1]
        raise ReproError(
            "partial must be 'require_all', 'best_effort', or ('quorum', k)"
        )

    @classmethod
    def quorum(cls, k, **kwargs):
        """A policy satisfied once ``k`` sources have answered."""
        return cls(partial=("quorum", k), **kwargs)

    @property
    def partial_kind(self):
        return self.partial[0] if isinstance(self.partial, tuple) else self.partial

    @property
    def quorum_k(self):
        return self.partial[1] if isinstance(self.partial, tuple) else None

    def backoff_s(self, retry_number):
        """Backoff before retry ``retry_number`` (1-based), capped."""
        delay = self.backoff_base_s * (self.backoff_factor ** (retry_number - 1))
        return min(delay, self.backoff_max_s)

    def describe(self):
        """Short human/ledger form, e.g. ``concurrent/quorum(2)``."""
        kind = self.partial_kind
        if kind == "quorum":
            kind = f"quorum({self.quorum_k})"
        return f"{self.mode}/{kind}"

    def __repr__(self):
        return (
            f"DispatchPolicy({self.describe()}, timeout_s={self.timeout_s}, "
            f"retries={self.retries})"
        )


class CircuitBreaker:
    """Per-source breaker: closed → open after N consecutive faults.

    While open, :meth:`acquire` fails fast until ``cooldown_s`` has
    elapsed, then admits exactly one half-open probe (further calls keep
    failing fast while the probe is out); the probe's outcome closes or
    re-opens the breaker.  Thread-safe; the clock is injectable so tests
    can drive the lifecycle deterministically.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    __slots__ = ("threshold", "cooldown_s", "_clock", "_lock", "_state",
                 "_consecutive_failures", "_opened_at", "times_opened")

    def __init__(self, threshold=5, cooldown_s=30.0, clock=time.monotonic):
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = None
        self.times_opened = 0

    @property
    def state(self):
        with self._lock:
            return self._peek_state()

    def _peek_state(self):
        if (self._state == self.OPEN
                and self._clock() - self._opened_at >= self.cooldown_s):
            return self.HALF_OPEN
        return self._state

    def acquire(self):
        """Try to admit a call: ``"closed"``, ``"probe"``, or ``None``.

        ``"probe"`` means the breaker was open, the cooldown elapsed, and
        this caller won the single half-open probe slot; the cooldown
        restarts so concurrent callers fail fast until the probe reports.
        """
        with self._lock:
            state = self._peek_state()
            if state == self.CLOSED:
                return self.CLOSED
            if state == self.HALF_OPEN:
                self._state = self.OPEN
                self._opened_at = self._clock()
                return "probe"
            return None

    def allow(self):
        """Boolean form of :meth:`acquire` (consumes the probe slot)."""
        return self.acquire() is not None

    def record_success(self):
        with self._lock:
            self._state = self.CLOSED
            self._consecutive_failures = 0
            self._opened_at = None

    def record_failure(self):
        with self._lock:
            self._consecutive_failures += 1
            if (self._state == self.CLOSED
                    and self._consecutive_failures >= self.threshold):
                self._state = self.OPEN
                self._opened_at = self._clock()
                self.times_opened += 1
            # While OPEN (including a failed half-open probe) the cooldown
            # already restarted when the probe was admitted; nothing to do.

    def __repr__(self):
        return f"CircuitBreaker({self.state}, fails={self._consecutive_failures})"


class SourceOutcome:
    """What happened to one source during one dispatch."""

    __slots__ = ("source", "status", "attempts", "retries", "wall_ms",
                 "faults", "breaker_state", "response", "refusal")

    def __init__(self, source):
        self.source = source
        self.status = "pending"   # answered | refused | unavailable
        self.attempts = 0
        self.retries = 0
        self.wall_ms = 0.0
        self.faults = []          # fault kinds, in order of occurrence
        self.breaker_state = CircuitBreaker.CLOSED
        self.response = None
        self.refusal = None       # Refusal (policy refusal OR unavailability)

    def to_dict(self):
        return {
            "source": self.source,
            "status": self.status,
            "attempts": self.attempts,
            "retries": self.retries,
            "wall_ms": self.wall_ms,
            "faults": list(self.faults),
            "breaker_state": self.breaker_state,
        }

    def __repr__(self):
        return (
            f"SourceOutcome({self.source!r}, {self.status}, "
            f"attempts={self.attempts}, wall_ms={self.wall_ms:.1f})"
        )


class DispatchResult:
    """Everything one fan-out produced, in deterministic source order."""

    __slots__ = ("responses", "refused", "unavailable", "outcomes",
                 "wall_ms", "mode")

    def __init__(self, responses, refused, unavailable, outcomes, wall_ms,
                 mode):
        self.responses = responses      # source → SourceResponse (plan order)
        self.refused = refused          # source → Refusal (policy refusals)
        self.unavailable = unavailable  # source → Refusal (transport faults)
        self.outcomes = outcomes        # source → SourceOutcome (plan order)
        self.wall_ms = wall_ms
        self.mode = mode

    @property
    def total_retries(self):
        return sum(o.retries for o in self.outcomes.values())

    def __repr__(self):
        return (
            f"DispatchResult(answered={sorted(self.responses)}, "
            f"refused={sorted(self.refused)}, "
            f"unavailable={sorted(self.unavailable)})"
        )


class _SourceTask:
    """Coordinator-side state machine for one source."""

    __slots__ = ("name", "outcome", "future", "attempt_started",
                 "next_eligible", "started", "probe")

    def __init__(self, name, now):
        self.name = name
        self.outcome = SourceOutcome(name)
        self.future = None            # in-flight attempt (concurrent mode)
        self.attempt_started = None
        self.next_eligible = now      # earliest clock time of next attempt
        self.started = now
        self.probe = False            # current attempt is a half-open probe


class FanoutDispatcher:
    """Executes per-source calls under a :class:`DispatchPolicy`.

    One dispatcher is long-lived (the engine owns it): circuit breakers
    persist across dispatches, which is the whole point of a breaker.
    ``dispatch(names, call)`` runs ``call(name)`` for every name and
    returns a :class:`DispatchResult`; ``call`` must be thread-safe
    across *different* names (the engine's per-source ``answer`` is —
    each source is an independent object).
    """

    def __init__(self, policy=None, telemetry=None, clock=time.monotonic):
        from repro.telemetry import resolve_telemetry

        self.policy = policy or DispatchPolicy()
        self.telemetry = resolve_telemetry(telemetry)
        self._clock = clock
        self._breakers = {}
        self._breakers_lock = threading.Lock()
        self._last_breaker_states = {}

    # -- breakers ----------------------------------------------------------

    def breaker(self, source):
        """The (lazily created) circuit breaker for ``source``."""
        with self._breakers_lock:
            breaker = self._breakers.get(source)
            if breaker is None:
                breaker = self._breakers[source] = CircuitBreaker(
                    self.policy.breaker_threshold,
                    self.policy.breaker_cooldown_s,
                    clock=self._clock,
                )
            return breaker

    def breaker_states(self):
        """``{source: state}`` for every breaker seen so far."""
        with self._breakers_lock:
            return {name: b.state for name, b in sorted(self._breakers.items())}

    def _note_breaker_state(self, source, state):
        """Emit a ``dispatch.breaker_transition`` event on state change.

        Observed at dispatch settlement (not inside the breaker's lock):
        the event stream records every *effective* transition a fan-out
        saw — closed → open when a source trips, open → closed when a
        half-open probe succeeds.
        """
        with self._breakers_lock:
            previous = self._last_breaker_states.get(source,
                                                     CircuitBreaker.CLOSED)
            if state == previous:
                return
            self._last_breaker_states[source] = state
        self.telemetry.events.emit(
            "dispatch.breaker_transition", source=source,
            previous=previous, state=state,
        )

    # -- dispatch ----------------------------------------------------------

    def dispatch(self, source_names, call, enforce=True, inline=False):
        """Run ``call(name)`` for every source under the policy.

        With ``enforce=False`` the partial-results policy is *not*
        checked here — the caller records the outcomes first (e.g. into
        an explain ledger) and then calls :meth:`enforce_partial` itself,
        so a failed quorum still leaves a fully-populated ledger.

        ``inline=True`` asks to run the in-line state machine in the
        calling thread even under a concurrent policy.  Honored only
        when ``timeout_s`` is ``None`` — without deadline preemption
        the two machines settle every (source, attempt) identically
        (same breaker transitions, retries, and refusals, in the same
        deterministic source order), so in-lining is purely a latency
        optimization: the batch pipeline uses it to skip the per-pose
        thread-pool spin-up.  With a deadline configured the flag is
        ignored — the in-line machine cannot preempt a hung source.
        """
        names = list(source_names)
        started = self._clock()
        if self.policy.mode == "sequential" or (
                inline and self.policy.timeout_s is None):
            outcomes = self._dispatch_sequential(names, call)
        else:
            outcomes = self._dispatch_concurrent(names, call)
        wall_ms = (self._clock() - started) * 1000.0

        responses, refused, unavailable = {}, {}, {}
        for name in names:
            outcome = outcomes[name]
            outcome.breaker_state = self.breaker(name).state
            self._note_breaker_state(name, outcome.breaker_state)
            if outcome.status == "answered":
                responses[name] = outcome.response
            elif outcome.status == "refused":
                refused[name] = outcome.refusal
            else:
                unavailable[name] = outcome.refusal
        result = DispatchResult(
            responses, refused, unavailable,
            {name: outcomes[name] for name in names}, wall_ms,
            self.policy.mode,
        )
        if enforce:
            self.enforce_partial(result)
        return result

    def enforce_partial(self, result):
        """Raise :class:`SourceUnavailable` if the policy is unmet."""
        kind = self.policy.partial_kind
        if not result.unavailable and kind != "quorum":
            return
        detail = "; ".join(
            f"{s}: {r}" for s, r in sorted(result.unavailable.items())
        )
        if kind == "require_all" and result.unavailable:
            raise SourceUnavailable(
                f"require_all dispatch lost {len(result.unavailable)} "
                f"source(s): {detail}"
            )
        if kind == "quorum":
            k = self.policy.quorum_k
            if len(result.responses) < k:
                raise SourceUnavailable(
                    f"quorum({k}) not met: only {len(result.responses)} "
                    f"source(s) answered"
                    + (f" ({detail})" if detail else "")
                )

    # -- sequential mode ---------------------------------------------------

    def _dispatch_sequential(self, names, call):
        """In-line reference implementation (no deadline preemption)."""
        outcomes = {}
        for name in names:
            task = _SourceTask(name, self._clock())
            outcome = task.outcome
            breaker = self.breaker(name)
            while outcome.status == "pending":
                admitted = breaker.acquire()
                if admitted is None:
                    self._settle_breaker_open(outcome)
                    break
                task.probe = admitted == "probe"
                outcome.attempts += 1
                try:
                    response = call(name)
                except REFUSAL_ERRORS as error:
                    self._settle_refused(outcome, error)
                except TransientSourceError as error:
                    breaker.record_failure()
                    outcome.faults.append(FAULT_TRANSIENT)
                    if not self._schedule_retry(task, breaker, str(error)):
                        break
                    time.sleep(max(0.0, task.next_eligible - self._clock()))
                else:
                    breaker.record_success()
                    self._settle_answered(outcome, response)
            outcome.wall_ms = (self._clock() - task.started) * 1000.0
            outcomes[name] = outcome
        return outcomes

    # -- concurrent mode ---------------------------------------------------

    def _dispatch_concurrent(self, names, call):
        tasks = {name: _SourceTask(name, self._clock()) for name in names}
        # Capture the full trace context (trace id + parent span), not
        # just the parent: restoring it on the worker makes the attempt
        # span carry the pose's trace id across the pool boundary.
        context = TraceContext.capture(self.telemetry.tracer)
        # Default pool leaves headroom for retries: a hung attempt that
        # blew its deadline keeps occupying a worker until it drains, and
        # its replacement must not queue behind it.
        workers = self.policy.max_workers or min(
            64, max(1, len(names)) * (self.policy.retries + 1)
        )
        pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-fanout",
        )
        try:
            self._run_loop(tasks, call, context, pool)
        finally:
            # Abandoned (hung) attempts drain on their own threads; do
            # not block the pose() on them.
            pool.shutdown(wait=False, cancel_futures=True)
        return {name: task.outcome for name, task in tasks.items()}

    def _finalize(self, task):
        """Stamp the source's wall-clock the moment it settles."""
        task.outcome.wall_ms = (self._clock() - task.started) * 1000.0

    def _run_loop(self, tasks, call, context, pool):
        timeout_s = self.policy.timeout_s
        pending = dict(tasks)  # sources not yet settled
        while pending:
            now = self._clock()
            for task in list(pending.values()):
                if task.future is None and task.next_eligible <= now:
                    self._launch_attempt(task, call, context, pool)
                    if task.outcome.status != "pending":
                        self._finalize(task)    # breaker failed it fast
                        del pending[task.name]

            in_flight = {t.future: t for t in pending.values()
                         if t.future is not None}
            if not in_flight:
                if not pending:
                    break
                # every remaining task is sleeping off a backoff
                wake = min(t.next_eligible for t in pending.values())
                self._sleep_until(wake)
                continue

            wait_s = self._next_wait(pending, in_flight, timeout_s)
            done, _ = wait(in_flight, timeout=wait_s,
                           return_when=FIRST_COMPLETED)
            now = self._clock()
            for future in done:
                task = in_flight[future]
                self._absorb_result(task, future)
                if task.outcome.status != "pending":
                    self._finalize(task)
                    del pending[task.name]
            if timeout_s is not None:
                for future, task in in_flight.items():
                    if future in done or task.future is not future:
                        continue
                    if now - task.attempt_started >= timeout_s:
                        self._expire_attempt(task)
                        if task.outcome.status != "pending":
                            self._finalize(task)
                            del pending[task.name]

    def _launch_attempt(self, task, call, context, pool):
        breaker = self.breaker(task.name)
        admitted = breaker.acquire()
        if admitted is None:
            self._settle_breaker_open(task.outcome)
            return
        task.probe = admitted == "probe"
        task.outcome.attempts += 1
        attempt = task.outcome.attempts
        task.attempt_started = self._clock()
        task.future = pool.submit(
            self._run_attempt, call, task.name, attempt, context
        )

    def _run_attempt(self, call, name, attempt, context):
        """Worker-thread body: one attempt under the restored context.

        Activating the captured :class:`TraceContext` makes the attempt
        span both a child of the dispatching pose's span *and* a member
        of its trace — the id a later WAL append and the profiler's
        stage attribution agree on.
        """
        tracer = self.telemetry.tracer
        with context.activate(tracer):
            with tracer.span(
                "mediator.fanout.attempt", source=name, attempt=attempt,
            ):
                return call(name)

    def _absorb_result(self, task, future):
        """Fold a completed attempt future into the task's outcome."""
        if task.future is not future:
            return  # an abandoned (timed-out) attempt drained late
        task.future = None
        outcome = task.outcome
        breaker = self.breaker(task.name)
        try:
            response = future.result()
        except REFUSAL_ERRORS as error:
            self._settle_refused(outcome, error)
        except TransientSourceError as error:
            breaker.record_failure()
            outcome.faults.append(FAULT_TRANSIENT)
            self._schedule_retry(task, breaker, str(error))
        else:
            breaker.record_success()
            self._settle_answered(outcome, response)

    def _expire_attempt(self, task):
        """An in-flight attempt blew its deadline: abandon and retry."""
        breaker = self.breaker(task.name)
        breaker.record_failure()
        task.future = None  # abandon; late result is ignored
        task.outcome.faults.append(FAULT_DEADLINE)
        self._schedule_retry(
            task, breaker,
            f"deadline of {self.policy.timeout_s}s exceeded",
        )

    def _schedule_retry(self, task, breaker, reason):
        """Queue the next attempt, or settle as unavailable. True if queued."""
        outcome = task.outcome
        exhausted = outcome.retries >= self.policy.retries
        if task.probe or exhausted or not self._breaker_admits(breaker):
            kind = outcome.faults[-1] if outcome.faults else FAULT_TRANSIENT
            self._settle_unavailable(
                outcome, kind,
                f"{task.name}: {reason} "
                f"(attempt {outcome.attempts}/{self.policy.retries + 1})",
            )
            return False
        outcome.retries += 1
        task.next_eligible = self._clock() + self.policy.backoff_s(
            outcome.retries
        )
        return True

    @staticmethod
    def _breaker_admits(breaker):
        # Peek without consuming the half-open probe slot: retrying into
        # an open breaker is pointless, settle now instead of at the next
        # launch.
        return breaker.state != CircuitBreaker.OPEN

    def _next_wait(self, pending, in_flight, timeout_s):
        """Seconds until the next deadline or backoff wake-up."""
        now = self._clock()
        horizon = []
        if timeout_s is not None:
            horizon.extend(
                task.attempt_started + timeout_s
                for task in in_flight.values()
            )
        horizon.extend(
            task.next_eligible for task in pending.values()
            if task.future is None
        )
        if not horizon:
            return None
        return max(0.0, min(horizon) - now)

    def _sleep_until(self, wake):
        delay = wake - self._clock()
        if delay > 0:
            time.sleep(delay)

    # -- settling ----------------------------------------------------------

    @staticmethod
    def _settle_answered(outcome, response):
        outcome.status = "answered"
        outcome.response = response

    @staticmethod
    def _settle_refused(outcome, error):
        outcome.status = "refused"
        outcome.refusal = Refusal.from_exception(error)

    @staticmethod
    def _settle_unavailable(outcome, kind, reason):
        outcome.status = "unavailable"
        outcome.refusal = Refusal(kind, reason)

    def _settle_breaker_open(self, outcome):
        outcome.attempts += 1
        outcome.faults.append(FAULT_BREAKER)
        self._settle_unavailable(
            outcome, FAULT_BREAKER,
            f"{outcome.source}: circuit breaker open (failing fast)",
        )

    def __repr__(self):
        return f"FanoutDispatcher({self.policy!r})"


def resolve_dispatch(dispatch):
    """Normalize an engine constructor argument into a dispatcher.

    ``None`` → a default concurrent dispatcher; a :class:`DispatchPolicy`
    → a fresh dispatcher around it; a :class:`FanoutDispatcher` passes
    through (sharing breakers with whoever built it).
    """
    if dispatch is None:
        return FanoutDispatcher(DispatchPolicy())
    if isinstance(dispatch, DispatchPolicy):
        return FanoutDispatcher(dispatch)
    if isinstance(dispatch, FanoutDispatcher):
        return dispatch
    # repro-lint: disable=REP003 -- constructor-argument type errors are
    # TypeError by Python convention (mirrors resolve_telemetry).
    raise TypeError(
        "dispatch must be None, a DispatchPolicy, or a FanoutDispatcher, "
        f"not {type(dispatch).__name__}"
    )
