"""Hybrid virtual/warehouse answering (paper §5) — now epoch-aware.

"A cornerstone of our architecture is that our Mediation Engine allows us
to query on demand (virtual querying) as well as materialize some data
locally (warehousing).  We take the hybrid approach due to the
quick-response needed during emergency situations."

The warehouse stores integrated results keyed by **canonical plan
fingerprint** (see :mod:`repro.cache.fingerprint`; the engine used to
assemble ad-hoc ``requester|role|text`` strings, which silently omitted
subjects) with a logical timestamp.  Three answering modes:

* ``virtual`` — always recompute from the sources (fresh, slow);
* ``warehouse`` — serve the materialized copy, refreshing only when older
  than ``refresh_interval`` (fast, possibly stale);
* ``hybrid`` — serve the copy when it is fresh enough, recompute
  otherwise; queries flagged as emergencies always get a fresh answer
  *and* update the store.

Since the cache PR the store is tier 3 of :mod:`repro.cache`: a bounded
:class:`~repro.cache.lru.LRUCache` whose entries carry the **epoch
vector** (policy / schema / per-requester, see
:mod:`repro.cache.epochs`) they were computed under.  A lookup whose
current vector differs is an *invalidation* — the entry is removed and
the answer recomputed — so a policy change, a source registration, or a
requester's audit-state advance can never be papered over by a stale
materialized answer.  Callers that pass no epochs (legacy direct use,
tests) get the pre-epoch behaviour unchanged.

Cost accounting is explicit (``source_calls``) so benchmark A4 can report
latency/staleness trade-offs without wall-clock noise.  With telemetry
enabled the warehouse additionally reports ``warehouse.hits`` /
``warehouse.misses`` / ``warehouse.source_calls`` /
``warehouse.epoch_invalidations`` counters, a staleness histogram, and a
materialized-keys gauge into the engine's shared registry, and the
underlying tier reports ``mediator.cache.answer.*`` stats (see
:mod:`repro.telemetry`).
"""

from __future__ import annotations

import time

from repro.cache.lru import LRUCache
from repro.errors import ReproError
from repro.telemetry import NOOP

MODES = ("virtual", "warehouse", "hybrid")


class WarehouseEntry:
    """One materialized result, tagged with its epoch vector."""

    def __init__(self, key, result, stored_at, epochs=None):
        self.key = key
        self.result = result
        self.stored_at = stored_at
        self.epochs = epochs  # ((name, value), ...) or None (legacy)
        self.hits = 0


class AnswerStats:
    """How an answer was produced.

    ``from_cache`` is falsy for a fresh computation and names the hit
    origin otherwise: ``"answer-cache"`` for an epoch-validated hit (the
    engine path) vs ``"warehouse"`` for a legacy epoch-less hit — the
    distinction tests and ledgers need to tell coherent reuse from
    blind materialization.
    """

    def __init__(self, mode, from_cache, source_calls, staleness):
        self.mode = mode
        self.from_cache = from_cache
        self.source_calls = source_calls
        self.staleness = staleness

    @property
    def origin(self):
        """Where the answer came from: ``sources`` or the hit origin."""
        return self.from_cache if self.from_cache else "sources"

    def __repr__(self):
        return (
            f"AnswerStats({self.mode}, {self.origin}, "
            f"calls={self.source_calls}, staleness={self.staleness})"
        )


class Warehouse:
    """Materialized integrated results with a logical clock."""

    def __init__(self, mode="hybrid", refresh_interval=10, max_staleness=5,
                 telemetry=None, max_entries=1024, ttl=None,
                 clock=time.monotonic):
        if mode not in MODES:
            raise ReproError(f"unknown warehouse mode {mode!r} (use {MODES})")
        self.mode = mode
        self.refresh_interval = refresh_interval
        self.max_staleness = max_staleness
        self.clock = 0
        self._store = LRUCache("answer", max_entries=max_entries, ttl=ttl,
                               clock=clock)
        self.total_source_calls = 0
        # Reassigned by MediationEngine so hits/misses land in the
        # deployment-wide registry; NOOP costs nothing when disabled.
        self.telemetry = telemetry or NOOP

    @property
    def telemetry(self):
        return self._telemetry

    @telemetry.setter
    def telemetry(self, value):
        self._telemetry = value
        self._store.telemetry = value

    def tick(self, steps=1):
        """Advance logical time (sources drift; caches age)."""
        self.clock += steps

    def answer(self, key, compute, n_sources, emergency=False, epochs=None):
        """Answer the query ``key`` under the configured mode.

        ``compute`` is a zero-argument callable producing a fresh
        integrated result (invoked only when needed); ``n_sources`` is the
        cost of one recomputation.  ``epochs`` (the engine passes the
        current epoch vector) arms epoch validation: a materialized entry
        is servable only while its stored vector matches, and a mismatch
        removes the entry.  Returns ``(result, AnswerStats)``.
        """
        if self.mode == "virtual" or (emergency and self.mode == "hybrid"):
            return self._fresh(key, compute, n_sources, epochs)

        max_age = (self.refresh_interval if self.mode == "warehouse"
                   else self.max_staleness)
        verdict = {"epoch_mismatch": False}

        def usable(entry):
            if epochs is not None and entry.epochs != epochs:
                verdict["epoch_mismatch"] = True
                return False
            return self.clock - entry.stored_at <= max_age

        entry, hit = self._store.get(key, validator=usable)
        if hit:
            return self._hit(entry, self.clock - entry.stored_at, epochs)
        if verdict["epoch_mismatch"]:
            self.telemetry.metrics.counter(
                "warehouse.epoch_invalidations"
            ).inc()
            self.telemetry.events.emit(
                "warehouse.epoch_invalidation", key=key, mode=self.mode,
            )
        return self._fresh(key, compute, n_sources, epochs)

    def _hit(self, entry, age, epochs):
        entry.hits += 1
        metrics = self.telemetry.metrics
        metrics.counter("warehouse.hits").inc()
        metrics.histogram("warehouse.staleness").observe(age)
        origin = "answer-cache" if epochs is not None else "warehouse"
        return entry.result, AnswerStats(self.mode, origin, 0, age)

    def _fresh(self, key, compute, n_sources, epochs=None):
        result = compute()
        self._store.put(key, WarehouseEntry(key, result, self.clock, epochs))
        self.total_source_calls += n_sources
        metrics = self.telemetry.metrics
        metrics.counter("warehouse.misses").inc()
        metrics.counter("warehouse.source_calls").inc(n_sources)
        metrics.gauge("warehouse.materialized_keys").set(len(self._store))
        return result, AnswerStats(self.mode, False, n_sources, 0)

    def invalidate(self, key=None):
        """Drop one materialized key (or all of them); returns a count."""
        if key is None:
            return self._store.clear()
        return 1 if self._store.invalidate(key) else 0

    def materialized_keys(self):
        """Keys currently materialized."""
        return sorted(self._store.keys())

    def entry(self, key):
        """The warehouse entry for ``key`` (or None)."""
        return self._store.peek(key)

    def store_stats(self):
        """Tier-3 cache stats (hits/misses/evictions/... + size)."""
        return self._store.snapshot()
