"""Hybrid virtual/warehouse answering (paper §5).

"A cornerstone of our architecture is that our Mediation Engine allows us
to query on demand (virtual querying) as well as materialize some data
locally (warehousing).  We take the hybrid approach due to the
quick-response needed during emergency situations."

The warehouse stores integrated results keyed by canonical query text with
a logical timestamp.  Three answering modes:

* ``virtual`` — always recompute from the sources (fresh, slow);
* ``warehouse`` — serve the materialized copy, refreshing only when older
  than ``refresh_interval`` (fast, possibly stale);
* ``hybrid`` — serve the copy when it is fresh enough, recompute
  otherwise; queries flagged as emergencies always get a fresh answer
  *and* update the store.

Cost accounting is explicit (``source_calls``) so benchmark A4 can report
latency/staleness trade-offs without wall-clock noise.  With telemetry
enabled the warehouse additionally reports ``warehouse.hits`` /
``warehouse.misses`` / ``warehouse.source_calls`` counters, a staleness
histogram, and a materialized-keys gauge into the engine's shared
registry (see :mod:`repro.telemetry`).
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.telemetry import NOOP

MODES = ("virtual", "warehouse", "hybrid")


class WarehouseEntry:
    """One materialized result."""

    def __init__(self, key, result, stored_at):
        self.key = key
        self.result = result
        self.stored_at = stored_at
        self.hits = 0


class AnswerStats:
    """How an answer was produced."""

    def __init__(self, mode, from_cache, source_calls, staleness):
        self.mode = mode
        self.from_cache = from_cache
        self.source_calls = source_calls
        self.staleness = staleness

    def __repr__(self):
        origin = "cache" if self.from_cache else "sources"
        return (
            f"AnswerStats({self.mode}, {origin}, calls={self.source_calls}, "
            f"staleness={self.staleness})"
        )


class Warehouse:
    """Materialized integrated results with a logical clock."""

    def __init__(self, mode="hybrid", refresh_interval=10, max_staleness=5,
                 telemetry=None):
        if mode not in MODES:
            raise ReproError(f"unknown warehouse mode {mode!r} (use {MODES})")
        self.mode = mode
        self.refresh_interval = refresh_interval
        self.max_staleness = max_staleness
        self.clock = 0
        self._store = {}
        self.total_source_calls = 0
        # Reassigned by MediationEngine so hits/misses land in the
        # deployment-wide registry; NOOP costs nothing when disabled.
        self.telemetry = telemetry or NOOP

    def tick(self, steps=1):
        """Advance logical time (sources drift; caches age)."""
        self.clock += steps

    def answer(self, key, compute, n_sources, emergency=False):
        """Answer the query ``key`` under the configured mode.

        ``compute`` is a zero-argument callable producing a fresh
        integrated result (invoked only when needed); ``n_sources`` is the
        cost of one recomputation.  Returns ``(result, AnswerStats)``.
        """
        entry = self._store.get(key)
        age = self.clock - entry.stored_at if entry is not None else None

        if self.mode == "virtual" or (emergency and self.mode == "hybrid"):
            return self._fresh(key, compute, n_sources)

        if self.mode == "warehouse":
            if entry is None or age > self.refresh_interval:
                return self._fresh(key, compute, n_sources)
            return self._hit(entry, age)

        # hybrid: serve cache while fresh enough, else recompute
        if entry is not None and age <= self.max_staleness:
            return self._hit(entry, age)
        return self._fresh(key, compute, n_sources)

    def _hit(self, entry, age):
        entry.hits += 1
        metrics = self.telemetry.metrics
        metrics.counter("warehouse.hits").inc()
        metrics.histogram("warehouse.staleness").observe(age)
        return entry.result, AnswerStats(self.mode, True, 0, age)

    def _fresh(self, key, compute, n_sources):
        result = compute()
        self._store[key] = WarehouseEntry(key, result, self.clock)
        self.total_source_calls += n_sources
        metrics = self.telemetry.metrics
        metrics.counter("warehouse.misses").inc()
        metrics.counter("warehouse.source_calls").inc(n_sources)
        metrics.gauge("warehouse.materialized_keys").set(len(self._store))
        return result, AnswerStats(self.mode, False, n_sources, 0)

    def materialized_keys(self):
        """Keys currently materialized."""
        return sorted(self._store)

    def entry(self, key):
        """The warehouse entry for ``key`` (or None)."""
        return self._store.get(key)
