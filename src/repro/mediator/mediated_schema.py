"""Mediated schema generation (paper §5).

Each source exports a :class:`SourceExport`: the attributes its privacy
view permits it to advertise (suppressed attributes are simply absent —
"the mediated schema may not be aware of the attribute dob"), each with a
descriptor for private matching.  :class:`MediatedSchema` merges exports
into mediated attributes via pairwise correspondences, recording per-source
local names so the fragmenter can translate queries.
"""

from __future__ import annotations

from repro.errors import IntegrationError
from repro.mediator.schema_matching import (
    PrivateSchemaMatcher,
    describe_attribute,
)
from repro.policy.model import DisclosureForm
from repro.xmlkit.loose import normalize_name


class SourceExport:
    """One source's advertised (privacy-pruned) vocabulary."""

    def __init__(self, source, descriptors, forms):
        self.source = source
        self.descriptors = dict(descriptors)  # local name → descriptor
        self.forms = dict(forms)  # local name → DisclosureForm cap

    @classmethod
    def from_remote_source(cls, remote, shared_secret, synonyms=None):
        """Build the export a :class:`~repro.source.server.RemoteSource`
        is willing to publish.

        Attributes whose privacy view caps them at SUPPRESSED are not
        advertised at all; others carry their form cap so the requester
        knows what to expect.
        """
        view = remote.policy_store.view_for(remote.name)
        descriptors, forms = {}, {}
        for column in remote.table.schema.column_names():
            form = (
                view.form_for(f"//{column}") if view is not None
                else DisclosureForm.EXACT
            )
            if form is DisclosureForm.SUPPRESSED:
                continue
            values = remote.table.column_values(column)
            descriptors[column] = describe_attribute(
                column, values, shared_secret, synonyms
            )
            forms[column] = form
        return cls(remote.name, descriptors, forms)

    def __repr__(self):
        return f"SourceExport({self.source!r}, attrs={sorted(self.descriptors)})"


class MediatedAttribute:
    """One attribute of the mediated schema."""

    def __init__(self, name, form):
        self.name = name
        self.form = form  # most restrictive cap across sources
        self.local_names = {}  # source → local attribute name

    def __repr__(self):
        return (
            f"MediatedAttribute({self.name!r}, form={self.form.name.lower()}, "
            f"sources={sorted(self.local_names)})"
        )


class MediatedSchema:
    """The partial structural summary requesters formulate queries over."""

    def __init__(self, attributes):
        self.attributes = {a.name: a for a in attributes}

    @classmethod
    def build(cls, exports, matcher=None):
        """Merge source exports into a mediated schema.

        The first export seeds the mediated attributes; every further
        export is matched (privately) against the current mediated
        descriptors and either joins an existing attribute or adds a new
        one.  Mediated attribute names are the normalized form of the
        first local name seen.
        """
        exports = list(exports)
        if not exports:
            raise IntegrationError("cannot build a schema from zero exports")
        matcher = matcher or PrivateSchemaMatcher()

        attributes = []
        mediated_descriptors = {}  # mediated name → representative descriptor
        for export in exports:
            correspondences = matcher.match(
                export.descriptors, mediated_descriptors
            )
            for local_name, descriptor in sorted(export.descriptors.items()):
                form = export.forms[local_name]
                if local_name in correspondences:
                    mediated_name, _score = correspondences[local_name]
                    attribute = next(
                        a for a in attributes if a.name == mediated_name
                    )
                    attribute.local_names[export.source] = local_name
                    attribute.form = min(attribute.form, form)
                else:
                    mediated_name = _fresh_name(
                        normalize_name(local_name),
                        {a.name for a in attributes},
                    )
                    attribute = MediatedAttribute(mediated_name, form)
                    attribute.local_names[export.source] = local_name
                    attributes.append(attribute)
                    mediated_descriptors[mediated_name] = descriptor
        return cls(attributes)

    def vocabulary(self):
        """The mediated attribute names (what PIQL paths resolve against)."""
        return sorted(self.attributes)

    def attribute(self, name):
        """Look up a mediated attribute."""
        if name not in self.attributes:
            raise IntegrationError(
                f"mediated schema has no attribute {name!r} "
                f"(has {self.vocabulary()})"
            )
        return self.attributes[name]

    def sources_for(self, names):
        """Sources exporting *all* of the mediated attributes ``names``."""
        if not names:
            return sorted({
                source
                for attribute in self.attributes.values()
                for source in attribute.local_names
            })
        source_sets = [
            set(self.attribute(n).local_names) for n in names
        ]
        shared = set.intersection(*source_sets)
        return sorted(shared)

    def local_name(self, mediated_name, source):
        """The source-local name of a mediated attribute."""
        attribute = self.attribute(mediated_name)
        if source not in attribute.local_names:
            raise IntegrationError(
                f"source {source!r} does not export {mediated_name!r}"
            )
        return attribute.local_names[source]

    def __repr__(self):
        return f"MediatedSchema({self.vocabulary()})"


def _fresh_name(base, taken):
    if base not in taken:
        return base
    suffix = 2
    while f"{base}_{suffix}" in taken:
        suffix += 1
    return f"{base}_{suffix}"
