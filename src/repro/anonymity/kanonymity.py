"""k-anonymity checks and Samarati-style full-domain generalization.

A release is k-anonymous when every combination of quasi-identifier values
it contains occurs at least k times.  :class:`FullDomainGeneralizer`
searches the generalization lattice bottom-up for the minimal node(s)
achieving k-anonymity, optionally allowing up to ``max_suppressed`` outlier
rows to be dropped (Samarati's suppression allowance).
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.anonymity.lattice import GeneralizationLattice


def equivalence_classes(records, quasi_identifiers):
    """Group records by their quasi-identifier tuple.

    Returns ``{qi_tuple: [records]}``.
    """
    classes = {}
    for record in records:
        key = tuple(record.get(a) for a in quasi_identifiers)
        classes.setdefault(key, []).append(record)
    return classes


def is_k_anonymous(records, quasi_identifiers, k):
    """True when every equivalence class has at least k members."""
    if k < 1:
        raise ReproError("k must be >= 1")
    records = list(records)
    if not records:
        return True
    classes = equivalence_classes(records, quasi_identifiers)
    return min(len(members) for members in classes.values()) >= k


def measured_k(records, quasi_identifiers):
    """The k actually achieved (smallest equivalence-class size)."""
    records = list(records)
    if not records:
        return 0
    classes = equivalence_classes(records, quasi_identifiers)
    return min(len(members) for members in classes.values())


class AnonymizationResult:
    """Outcome of a generalization search."""

    def __init__(self, node, records, suppressed):
        self.node = node
        self.records = records
        self.suppressed = suppressed  # rows dropped under the allowance

    def __repr__(self):
        return (
            f"AnonymizationResult(node={self.node}, rows={len(self.records)}, "
            f"suppressed={len(self.suppressed)})"
        )


class FullDomainGeneralizer:
    """Minimal full-domain generalization to k-anonymity."""

    def __init__(self, hierarchies):
        self.lattice = GeneralizationLattice(hierarchies)
        self.quasi_identifiers = self.lattice.attributes

    def anonymize(self, records, k, max_suppressed=0, l=None, sensitive=None):
        """Return the minimal-height :class:`AnonymizationResult`.

        Searches lattice heights bottom-up; at each height every node is
        tried (ties broken lexicographically).  With ``l`` and
        ``sensitive`` given, every released equivalence class must also
        contain at least ``l`` distinct sensitive values (classes failing
        only diversity are suppressed under the same allowance).  Raises
        :class:`~repro.errors.ReproError` when even the top node fails —
        which can only happen if ``max_suppressed`` < ``len(records)`` and
        ``k > len(records)``.
        """
        records = list(records)
        if k < 1:
            raise ReproError("k must be >= 1")
        if max_suppressed < 0:
            raise ReproError("max_suppressed must be >= 0")
        if (l is None) != (sensitive is None):
            raise ReproError("l and sensitive must be given together")
        if l is not None and l < 1:
            raise ReproError("l must be >= 1")
        max_height = self.lattice.height_of(self.lattice.top)
        for height in range(max_height + 1):
            for node in self.lattice.nodes_at_height(height):
                result = self._try_node(
                    records, node, k, max_suppressed, l, sensitive
                )
                if result is not None:
                    return result
        requirement = f"{k}-anonymity"
        if l is not None:
            requirement += f" with {l}-diversity on {sensitive!r}"
        raise ReproError(
            f"no generalization achieves {requirement} for "
            f"{len(records)} records (allowance {max_suppressed})"
        )

    def satisfying_nodes(self, records, k, max_suppressed=0, l=None,
                         sensitive=None):
        """Every lattice node satisfying the requirements (for analysis)."""
        records = list(records)
        return [
            node
            for node in self.lattice.all_nodes()
            if self._try_node(records, node, k, max_suppressed, l, sensitive)
            is not None
        ]

    def _try_node(self, records, node, k, max_suppressed, l=None,
                  sensitive=None):
        generalized = self.lattice.generalize_records(records, node)
        classes = equivalence_classes(generalized, self.quasi_identifiers)
        keep, suppressed = [], []
        for members in classes.values():
            diverse = (
                l is None
                or len({m.get(sensitive) for m in members}) >= l
            )
            if len(members) >= k and diverse:
                keep.extend(members)
            else:
                suppressed.extend(members)
        if len(suppressed) > max_suppressed:
            return None
        if not keep and records:
            return None  # suppressing everything is not a release
        return AnonymizationResult(node, keep, suppressed)
