"""k-anonymity checks and Samarati-style full-domain generalization.

A release is k-anonymous when every combination of quasi-identifier values
it contains occurs at least k times.  :class:`FullDomainGeneralizer`
searches the generalization lattice bottom-up for the minimal node(s)
achieving k-anonymity, optionally allowing up to ``max_suppressed`` outlier
rows to be dropped (Samarati's suppression allowance).

Hot-path counting is vectorized: records are factorized once into an
integer QI code matrix, lattice nodes are *screened* by fancy-indexing
per-level generalization maps over that matrix and counting equivalence
classes with ``np.unique`` — only the winning node is materialized
through the scalar reference (:meth:`FullDomainGeneralizer._try_node`),
so results are byte-identical to the pure-Python search.
``REPRO_SCALAR_KERNELS=1`` disables the vectorized screen entirely.
"""

from __future__ import annotations

import operator

import numpy as np

from repro.errors import ReproError
from repro.anonymity.lattice import GeneralizationLattice
from repro.kernels import use_scalar_kernels

#: Sentinel code for "attribute absent from the record" — generalization
#: never applies to missing attributes, so the sentinel survives every
#: lattice level unchanged (scalar semantics: the class key gets ``None``).
_MISSING = object()


def equivalence_classes(records, quasi_identifiers):
    """Group records by their quasi-identifier tuple.

    Returns ``{qi_tuple: [records]}``.
    """
    classes = {}
    for record in records:  # repro-lint: disable=REP012 -- reference grouping: the dict of actual record lists is the output
        key = tuple(record.get(a) for a in quasi_identifiers)
        classes.setdefault(key, []).append(record)
    return classes


def class_sizes(records, quasi_identifiers):
    """Per-record equivalence-class sizes as an int ndarray.

    ``sizes[i]`` is the size of the class record ``i`` falls in — the
    vectorized core of :func:`is_k_anonymous` / :func:`measured_k` and
    the validation metrics' counting loops.
    """
    records = list(records)
    if not records:
        return np.empty(0, dtype=np.int64)
    if use_scalar_kernels():
        classes = equivalence_classes(records, quasi_identifiers)
        sizes = {key: len(members) for key, members in classes.items()}
        return np.array(
            [sizes[tuple(r.get(a) for a in quasi_identifiers)] for r in records],  # repro-lint: disable=REP012 -- scalar reference path
            dtype=np.int64,
        )
    packed = _raw_int_key(records, quasi_identifiers)
    if packed is not None:
        key, span = packed
        if span <= max(4 * key.size, 1 << 20):
            # Dense-enough key space: direct tabulation, no sort at all.
            return np.bincount(key)[key]
        _, inverse, counts = np.unique(
            key, return_inverse=True, return_counts=True
        )
        return counts[inverse.ravel()]
    codes, distinct = encode_columns(records, quasi_identifiers)
    inverse, counts = _class_counts(
        codes, [len(values) for values in distinct]
    )
    return counts[inverse]


def is_k_anonymous(records, quasi_identifiers, k):
    """True when every equivalence class has at least k members."""
    if k < 1:
        raise ReproError("k must be >= 1")
    records = list(records)
    if not records:
        return True
    return int(class_sizes(records, quasi_identifiers).min()) >= k


def measured_k(records, quasi_identifiers):
    """The k actually achieved (smallest equivalence-class size)."""
    records = list(records)
    if not records:
        return 0
    return int(class_sizes(records, quasi_identifiers).min())


def encode_columns(records, attributes):
    """Factorize ``records``' ``attributes`` into an int code matrix.

    Returns ``(codes, distinct)`` where ``codes`` is an ``(n, m)`` int64
    ndarray and ``distinct[j]`` lists column ``j``'s distinct values in
    first-seen order (``codes[i, j]`` indexes into it).  Missing
    attributes encode as the shared :data:`_MISSING` sentinel so they
    compare equal to each other and to nothing else — matching the
    ``record.get(a)`` → ``None`` scalar key semantics (``None`` values
    and absent attributes coincide there too, so ``None`` maps to the
    sentinel's code).
    """
    n = len(records)
    codes = np.empty((n, len(attributes)), dtype=np.int64)
    distinct = []
    for j, attribute in enumerate(attributes):
        fast = _factorize_fast(records, attribute)
        if fast is not None:
            codes[:, j], values = fast
            distinct.append(values)
            continue
        seen = {}
        column = np.empty(n, dtype=np.int64)
        values = []
        for i, record in enumerate(records):  # repro-lint: disable=REP012 -- one factorization pass feeding every vectorized screen
            value = record.get(attribute, _MISSING)
            if value is None:
                value = _MISSING
            try:
                code = seen[value]
            except KeyError:
                code = seen[value] = len(values)
                values.append(value)
            except TypeError:  # unhashable QI value: fall back to identity
                code = seen[id(value)] = len(values)
                values.append(value)
            column[i] = code
        codes[:, j] = column
        distinct.append(values)
    return codes, distinct


def _factorize_fast(records, attribute):
    """Factorize one clean column entirely in numpy, or ``None``.

    Applies when the attribute is present in every record and the values
    are one homogeneous scalar type (int/float/str/bool, no NaN) — the
    common quasi-identifier shape.  ``np.unique`` then replaces the
    per-record dict loop; codes come out in sorted rather than
    first-seen order, which class counting and node screening are both
    invariant to (codes and ``distinct`` stay mutually consistent).
    Anything irregular — missing keys, ``None``, mixed types that
    ``np.asarray`` would silently coerce (``1`` vs ``"1"``), NaN's
    identity-keyed dict semantics — returns ``None`` for the reference
    dict path.
    """
    try:
        raw = list(map(operator.itemgetter(attribute), records))
    except KeyError:
        return None
    kinds = set(map(type, raw))
    if len(kinds) != 1 or kinds.pop() not in (int, float, str, bool):
        return None
    try:
        column = np.asarray(raw)
    except (ValueError, OverflowError):
        return None
    if column.dtype.kind not in "biufU" or column.ndim != 1:
        return None
    if column.dtype.kind == "f" and np.isnan(column).any():
        return None
    uniques, inverse = np.unique(column, return_inverse=True)
    return (
        inverse.ravel().astype(np.int64, copy=False),
        [value.item() for value in uniques],
    )


def _raw_int_key(records, attributes):
    """``(key, span)``: packed int64 class keys, skipping factorization.

    Applies when every attribute is an integer column present in every
    record: values shifted to zero base pack directly by mixed radix
    (radix = value span per column), so counting needs no per-column
    ``np.unique`` at all.  ``span`` is the size of the packed key
    space.  Returns ``None`` — use :func:`encode_columns` — for any
    other column shape or when the span would overflow int64.
    """
    key = None
    span = 1
    for attribute in attributes:
        try:
            raw = list(map(operator.itemgetter(attribute), records))
        except KeyError:
            return None
        column = np.asarray(raw)
        # Integer columns only: np.asarray type-discriminates for free —
        # any float/str/None/huge-int admixture lands on kind f/U/O.
        # bool/int mixing coerces to 'i', which matches dict-key
        # semantics exactly (``True == 1``, same hash, same class).
        if column.dtype.kind != "i" or column.ndim != 1:
            return None
        column = column.astype(np.int64, copy=False)
        low = int(column.min())
        radix = int(column.max()) - low + 1
        if span > 2**62 // radix:
            return None
        span *= radix
        column -= low
        key = column if key is None else key * radix + column
    if key is None:
        return None
    return key, span


def _pack_rows(matrix, radii):
    """Mixed-radix pack each code row into one int64 key, or ``None``.

    ``radii[j]`` bounds column ``j``'s codes (its cardinality); rows are
    equal iff their keys are equal.  Returns ``None`` when the key space
    would overflow int64 — callers then fall back to ``axis=0``.
    """
    span = 1
    for radix in radii:
        span *= max(int(radix), 1)
        if span > 2**62:
            return None
    key = np.zeros(len(matrix), dtype=np.int64)
    for j, radix in enumerate(radii):
        key *= max(int(radix), 1)
        key += matrix[:, j]
    return key


def _class_counts(matrix, radii):
    """Equivalence classes of ``matrix`` rows as ``(inverse, counts)``.

    A single 1-D ``np.unique`` over packed keys — much faster than the
    structured sort behind ``np.unique(..., axis=0)``, which remains the
    fallback for key spaces past int64.
    """
    key = _pack_rows(matrix, radii)
    if key is None:
        _, inverse, counts = np.unique(
            matrix, axis=0, return_inverse=True, return_counts=True
        )
    else:
        _, inverse, counts = np.unique(
            key, return_inverse=True, return_counts=True
        )
    return inverse.ravel(), counts


class AnonymizationResult:
    """Outcome of a generalization search."""

    def __init__(self, node, records, suppressed):
        self.node = node
        self.records = records
        self.suppressed = suppressed  # rows dropped under the allowance

    def __repr__(self):
        return (
            f"AnonymizationResult(node={self.node}, rows={len(self.records)}, "
            f"suppressed={len(self.suppressed)})"
        )


class _LatticeScreen:
    """Vectorized pass/fail screening of lattice nodes over one record set.

    Encodes the records once, then per (attribute, level) lazily builds a
    generalization *map* (raw code → generalized code) by applying the
    hierarchy to each **distinct** value rather than each record.  A node
    is screened by fancy-indexing its level maps over the code matrix and
    counting equivalence classes with ``np.unique`` — no per-record
    Python runs per node.
    """

    def __init__(self, lattice, records, sensitive=None):
        self.lattice = lattice
        self.records = records
        self.codes, self.distinct = encode_columns(
            records, lattice.attributes
        )
        self._level_maps = {}  # (column, level) -> int64 map array
        # A sensitive attribute that is itself a QI gets generalized by the
        # node before the diversity check — read it from the node's code
        # matrix instead of the raw encoding in that case.
        self.sens_qi_column = (
            lattice.attributes.index(sensitive)
            if sensitive in lattice.attributes
            else None
        )
        if sensitive is not None and self.sens_qi_column is None:
            sens_codes, sens_values = encode_columns(records, [sensitive])
            self.sens_codes = sens_codes[:, 0]
            self.n_sens = len(sens_values[0])
        else:
            self.sens_codes = None
            self.n_sens = 0

    def _level_map(self, column, level):
        try:
            return self._level_maps[(column, level)]
        except KeyError:
            pass
        hierarchy = self.lattice.hierarchies[column]
        generalized = []
        seen = {}
        mapped = np.empty(len(self.distinct[column]), dtype=np.int64)
        for code, value in enumerate(self.distinct[column]):
            if value is _MISSING:
                out = _MISSING  # absent attributes never generalize
            else:
                out = hierarchy.generalize(value, level)
                if out is None:
                    out = _MISSING  # scalar keys can't tell None apart
            try:
                out_code = seen[out]
            except KeyError:
                out_code = seen[out] = len(generalized)
                generalized.append(out)
            except TypeError:
                out_code = seen[id(out)] = len(generalized)
                generalized.append(out)
            mapped[code] = out_code
        self._level_maps[(column, level)] = mapped
        return mapped

    def node_passes(self, node, k, max_suppressed, l=None):
        """Exactly ``_try_node(...) is not None``, without materializing."""
        n = len(self.records)
        if n == 0:
            return True  # no records: empty keep is fine (scalar returns it)
        matrix = np.empty_like(self.codes)
        for column, level in enumerate(node):
            matrix[:, column] = self._level_map(column, level)[
                self.codes[:, column]
            ]
        radii = matrix.max(axis=0) + 1  # generalized per-column spans
        inverse, counts = _class_counts(matrix, radii)
        ok = counts >= k
        if l is not None:
            if self.sens_qi_column is not None:
                sens = matrix[:, self.sens_qi_column]
                n_sens = int(sens.max()) + 1
            else:
                sens, n_sens = self.sens_codes, self.n_sens
            pairs = inverse.astype(np.int64) * max(n_sens, 1) + sens
            per_class = np.bincount(
                np.unique(pairs) // max(n_sens, 1), minlength=len(counts)
            )
            ok &= per_class >= l
        suppressed = int(counts[~ok].sum())
        if suppressed > max_suppressed:
            return False
        return suppressed < n  # keep must be non-empty for a real release


class FullDomainGeneralizer:
    """Minimal full-domain generalization to k-anonymity."""

    def __init__(self, hierarchies):
        self.lattice = GeneralizationLattice(hierarchies)
        self.quasi_identifiers = self.lattice.attributes

    def anonymize(self, records, k, max_suppressed=0, l=None, sensitive=None):
        """Return the minimal-height :class:`AnonymizationResult`.

        Searches lattice heights bottom-up; at each height every node is
        tried (ties broken lexicographically).  With ``l`` and
        ``sensitive`` given, every released equivalence class must also
        contain at least ``l`` distinct sensitive values (classes failing
        only diversity are suppressed under the same allowance).  Raises
        :class:`~repro.errors.ReproError` when even the top node fails —
        which can only happen if ``max_suppressed`` < ``len(records)`` and
        ``k > len(records)``.
        """
        records = list(records)
        self._validate(k, max_suppressed, l, sensitive)
        screen = self._screen_for(records, sensitive)
        max_height = self.lattice.height_of(self.lattice.top)
        for height in range(max_height + 1):
            for node in self.lattice.nodes_at_height(height):
                if screen is not None and not screen.node_passes(
                    node, k, max_suppressed, l
                ):
                    continue
                # Winning (or scalar-mode candidate) node: materialize via
                # the scalar reference so results stay byte-identical.
                result = self._try_node(
                    records, node, k, max_suppressed, l, sensitive
                )
                if result is not None:
                    return result
        requirement = f"{k}-anonymity"
        if l is not None:
            requirement += f" with {l}-diversity on {sensitive!r}"
        raise ReproError(
            f"no generalization achieves {requirement} for "
            f"{len(records)} records (allowance {max_suppressed})"
        )

    def satisfying_nodes(self, records, k, max_suppressed=0, l=None,
                         sensitive=None):
        """Every lattice node satisfying the requirements (for analysis)."""
        records = list(records)
        self._validate(k, max_suppressed, l, sensitive)
        screen = self._screen_for(records, sensitive)
        if screen is not None:
            return [
                node
                for node in self.lattice.all_nodes()
                if screen.node_passes(node, k, max_suppressed, l)
            ]
        return [
            node
            for node in self.lattice.all_nodes()
            if self._try_node(records, node, k, max_suppressed, l, sensitive)
            is not None
        ]

    def _validate(self, k, max_suppressed, l, sensitive):
        if k < 1:
            raise ReproError("k must be >= 1")
        if max_suppressed < 0:
            raise ReproError("max_suppressed must be >= 0")
        if (l is None) != (sensitive is None):
            raise ReproError("l and sensitive must be given together")
        if l is not None and l < 1:
            raise ReproError("l must be >= 1")

    def _screen_for(self, records, sensitive):
        if use_scalar_kernels() or not records:
            return None
        return _LatticeScreen(self.lattice, records, sensitive)

    def _try_node(self, records, node, k, max_suppressed, l=None,
                  sensitive=None):
        generalized = self.lattice.generalize_records(records, node)
        classes = equivalence_classes(generalized, self.quasi_identifiers)
        keep, suppressed = [], []
        for members in classes.values():
            diverse = (
                l is None
                or len({m.get(sensitive) for m in members}) >= l  # repro-lint: disable=REP012 -- scalar reference path
            )
            if len(members) >= k and diverse:
                keep.extend(members)
            else:
                suppressed.extend(members)
        if len(suppressed) > max_suppressed:
            return None
        if not keep and records:
            return None  # suppressing everything is not a release
        return AnonymizationResult(node, keep, suppressed)
