"""l-diversity checks on released tables.

k-anonymity bounds re-identification but not attribute disclosure: a
k-anonymous class whose members all share one sensitive value reveals it
anyway.  Distinct l-diversity requires ≥ l distinct sensitive values per
equivalence class; entropy l-diversity requires the class's sensitive-value
entropy to be at least ``log(l)``.
"""

from __future__ import annotations

import math

from repro.errors import ReproError
from repro.anonymity.kanonymity import equivalence_classes


def distinct_l_diversity(records, quasi_identifiers, sensitive, l):
    """True when every equivalence class has ≥ l distinct sensitive values."""
    _check_l(l)
    records = list(records)
    if not records:
        return True
    for members in equivalence_classes(records, quasi_identifiers).values():
        values = {m.get(sensitive) for m in members}
        if len(values) < l:
            return False
    return True


def entropy_l_diversity(records, quasi_identifiers, sensitive, l):
    """True when every class's sensitive-value entropy is ≥ log(l)."""
    _check_l(l)
    records = list(records)
    if not records:
        return True
    threshold = math.log(l)
    for members in equivalence_classes(records, quasi_identifiers).values():
        if _entropy(members, sensitive) < threshold - 1e-12:
            return False
    return True


def measured_l(records, quasi_identifiers, sensitive):
    """Smallest distinct sensitive-value count over all classes."""
    records = list(records)
    if not records:
        return 0
    return min(
        len({m.get(sensitive) for m in members})
        for members in equivalence_classes(records, quasi_identifiers).values()
    )


def _entropy(members, sensitive):
    counts = {}
    for member in members:
        value = member.get(sensitive)
        counts[value] = counts.get(value, 0) + 1
    total = len(members)
    return -sum(
        (count / total) * math.log(count / total) for count in counts.values()
    )


def _check_l(l):
    if l < 1:
        raise ReproError("l must be >= 1")
