"""The full-domain generalization lattice.

A lattice node assigns one generalization level to each quasi-identifier;
``(0, ..., 0)`` is the raw data and the top node suppresses everything.
Samarati's search walks the lattice by height (sum of levels), returning
the lowest nodes that satisfy a predicate (e.g. "is k-anonymous") —
monotonicity of k-anonymity under generalization makes the first hit per
height minimal.
"""

from __future__ import annotations

import itertools

from repro.errors import ReproError


class GeneralizationLattice:
    """The product lattice of per-attribute level ranges."""

    def __init__(self, hierarchies):
        if not hierarchies:
            raise ReproError("lattice needs at least one hierarchy")
        self.hierarchies = list(hierarchies)
        self.attributes = [h.attribute for h in self.hierarchies]

    @property
    def bottom(self):
        """The identity node (no generalization)."""
        return tuple(0 for _ in self.hierarchies)

    @property
    def top(self):
        """The full-suppression node."""
        return tuple(h.height for h in self.hierarchies)

    def height_of(self, node):
        """Sum of levels (the node's height in the lattice)."""
        return sum(node)

    def nodes_at_height(self, height):
        """All valid nodes whose levels sum to ``height``, sorted."""
        ranges = [range(h.height + 1) for h in self.hierarchies]
        return sorted(
            node
            for node in itertools.product(*ranges)
            if sum(node) == height
        )

    def all_nodes(self):
        """Every node, in increasing height order (then lexicographic)."""
        max_height = self.height_of(self.top)
        for height in range(max_height + 1):
            yield from self.nodes_at_height(height)

    def successors(self, node):
        """Nodes one level above ``node`` in exactly one attribute."""
        self._validate(node)
        out = []
        for i, hierarchy in enumerate(self.hierarchies):
            if node[i] < hierarchy.height:
                out.append(node[:i] + (node[i] + 1,) + node[i + 1:])
        return out

    def generalize_record(self, record, node):
        """Apply ``node``'s levels to the QI attributes of ``record``.

        Non-QI attributes pass through untouched.
        """
        self._validate(node)
        generalized = dict(record)
        for level, hierarchy in zip(node, self.hierarchies):
            attribute = hierarchy.attribute
            if attribute in generalized:
                generalized[attribute] = hierarchy.generalize(
                    generalized[attribute], level
                )
        return generalized

    def generalize_records(self, records, node):
        """Apply ``node`` to every record."""
        return [self.generalize_record(record, node) for record in records]

    def _validate(self, node):
        if len(node) != len(self.hierarchies):
            raise ReproError(
                f"node arity {len(node)} != {len(self.hierarchies)} hierarchies"
            )
        for level, hierarchy in zip(node, self.hierarchies):
            if not 0 <= level <= hierarchy.height:
                raise ReproError(
                    f"level {level} out of range for {hierarchy.attribute!r}"
                )
