"""k-anonymity and friends.

The paper names k-anonymity (Samarati–Sweeney, refs [37, 28]) as an
established privacy measure for the loss-computation module.  This package
implements value generalization hierarchies
(:mod:`repro.anonymity.hierarchy`), the full-domain generalization lattice
and Samarati-style minimal search (:mod:`repro.anonymity.lattice`,
:mod:`repro.anonymity.kanonymity`), greedy multidimensional Mondrian
partitioning (:mod:`repro.anonymity.mondrian`), and l-diversity checks
(:mod:`repro.anonymity.ldiversity`).
"""

from repro.anonymity.hierarchy import (
    GeneralizationHierarchy,
    interval_hierarchy,
    taxonomy_hierarchy,
)
from repro.anonymity.lattice import GeneralizationLattice
from repro.anonymity.kanonymity import (
    FullDomainGeneralizer,
    equivalence_classes,
    is_k_anonymous,
)
from repro.anonymity.mondrian import mondrian_partition
from repro.anonymity.microaggregation import (
    mdav_microaggregate,
    sse_information_loss,
)
from repro.anonymity.ldiversity import distinct_l_diversity, entropy_l_diversity

__all__ = [
    "mdav_microaggregate",
    "sse_information_loss",
    "GeneralizationHierarchy",
    "interval_hierarchy",
    "taxonomy_hierarchy",
    "GeneralizationLattice",
    "FullDomainGeneralizer",
    "equivalence_classes",
    "is_k_anonymous",
    "mondrian_partition",
    "distinct_l_diversity",
    "entropy_l_diversity",
]
