"""MDAV microaggregation.

The classic statistical-disclosure-control alternative to generalization
for numeric microdata (Domingo-Ferrer & Mateo-Sanz): partition records
into groups of at least k by the *maximum distance to average vector*
heuristic, then replace every member's quasi-identifiers with its group
centroid.  Released values stay numeric (unlike range labels), which many
downstream analyses prefer; utility is measured by the within-group /
total sum-of-squares ratio (the standard SSE/SST information loss).
"""

from __future__ import annotations

import math

from repro.errors import ReproError


def mdav_microaggregate(records, quasi_identifiers, k):
    """Microaggregate ``records`` on numeric ``quasi_identifiers``.

    Returns ``(released_records, groups)`` where groups are lists of the
    original record indices.  Every group has between k and 2k−1 members.
    """
    records = list(records)
    if k < 1:
        raise ReproError("k must be >= 1")
    if len(records) < k:
        raise ReproError(f"{len(records)} records cannot form a {k}-group")
    if not quasi_identifiers:
        raise ReproError("microaggregation needs at least one attribute")
    vectors = []
    for record in records:
        vector = []
        for attribute in quasi_identifiers:
            value = record.get(attribute)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ReproError(
                    f"microaggregation needs numeric values; "
                    f"{attribute!r}={value!r}"
                )
            vector.append(float(value))
        vectors.append(vector)

    # Standardize so no attribute dominates the distances.
    scales = []
    dims = len(quasi_identifiers)
    for d in range(dims):
        column = [v[d] for v in vectors]
        mean = sum(column) / len(column)
        variance = sum((x - mean) ** 2 for x in column) / len(column)
        scales.append(math.sqrt(variance) or 1.0)
    standardized = [
        [v[d] / scales[d] for d in range(dims)] for v in vectors
    ]

    remaining = set(range(len(records)))
    groups = []
    while len(remaining) >= 3 * k:
        centroid = _centroid([standardized[i] for i in remaining])
        far = _farthest(standardized, remaining, centroid)
        groups.append(_take_nearest(standardized, remaining, far, k))
        if len(remaining) >= k:
            # the record farthest from the one just used, per MDAV
            opposite = _farthest(standardized, remaining, standardized[far])
            groups.append(_take_nearest(standardized, remaining, opposite, k))
    if len(remaining) >= 2 * k:
        centroid = _centroid([standardized[i] for i in remaining])
        far = _farthest(standardized, remaining, centroid)
        groups.append(_take_nearest(standardized, remaining, far, k))
    if remaining:
        groups.append(sorted(remaining))
        remaining = set()

    released = [dict(record) for record in records]
    for group in groups:
        for d, attribute in enumerate(quasi_identifiers):
            mean = sum(vectors[i][d] for i in group) / len(group)
            for i in group:
                released[i][attribute] = mean
    return released, groups


def sse_information_loss(records, released, quasi_identifiers):
    """SSE/SST: within-group variability lost to centroid replacement.

    0 means no distortion; 1 means all variability destroyed.
    """
    records, released = list(records), list(released)
    if len(records) != len(released):
        raise ReproError("records and released must align")
    if not records:
        raise ReproError("cannot score an empty release")
    sse = 0.0
    sst = 0.0
    for attribute in quasi_identifiers:
        original = [float(r[attribute]) for r in records]
        mean = sum(original) / len(original)
        sst += sum((x - mean) ** 2 for x in original)
        sse += sum(
            (float(r[attribute]) - float(p[attribute])) ** 2
            for r, p in zip(records, released)
        )
    if sst == 0:
        return 0.0
    return sse / sst


def _centroid(points):
    dims = len(points[0])
    return [sum(p[d] for p in points) / len(points) for d in range(dims)]


def _distance(a, b):
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


def _farthest(standardized, remaining, reference):
    return max(remaining, key=lambda i: (_distance(standardized[i], reference), i))


def _take_nearest(standardized, remaining, seed_index, k):
    ordered = sorted(
        remaining,
        key=lambda i: (_distance(standardized[i], standardized[seed_index]), i),
    )
    group = ordered[:k]
    for i in group:
        remaining.discard(i)
    return sorted(group)
