"""Greedy multidimensional partitioning (Mondrian) for numeric QIs.

Instead of one global generalization level, Mondrian recursively splits the
record set on the median of the widest-normalized-range quasi-identifier,
stopping when a split would leave a side with fewer than k records.  Each
final partition is released with its QI values replaced by the partition's
ranges.  Typically loses far less information than full-domain
generalization — benchmark A6 quantifies the difference.
"""

from __future__ import annotations

from repro.errors import ReproError


def mondrian_partition(records, quasi_identifiers, k):
    """Partition ``records`` into k-anonymous groups.

    All quasi-identifiers must be numeric.  Returns a list of partitions;
    each partition is ``(ranges, members)`` with ``ranges`` a
    ``{attribute: (low, high)}`` mapping.
    """
    records = list(records)
    if k < 1:
        raise ReproError("k must be >= 1")
    if not quasi_identifiers:
        raise ReproError("Mondrian needs at least one quasi-identifier")
    if len(records) < k:
        raise ReproError(f"{len(records)} records cannot be {k}-anonymous")
    for record in records:
        for attribute in quasi_identifiers:
            value = record.get(attribute)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ReproError(
                    f"Mondrian requires numeric QIs; {attribute!r}={value!r}"
                )

    # Global ranges for normalization, so one wide attribute does not
    # dominate the split choice.
    spans = {}
    for attribute in quasi_identifiers:
        values = [r[attribute] for r in records]
        spans[attribute] = (min(values), max(values))

    partitions = []
    _split(records, quasi_identifiers, k, spans, partitions)
    return partitions


def anonymized_records(partitions, quasi_identifiers):
    """Flatten partitions into released records with range-valued QIs."""
    released = []
    for ranges, members in partitions:
        for record in members:
            out = dict(record)
            for attribute in quasi_identifiers:
                low, high = ranges[attribute]
                if low == high:
                    out[attribute] = low
                else:
                    out[attribute] = f"[{low}-{high}]"
            released.append(out)
    return released


def _split(records, quasi_identifiers, k, spans, partitions):
    best_attribute = _choose_attribute(records, quasi_identifiers, spans)
    if best_attribute is not None:
        values = sorted(r[best_attribute] for r in records)
        median = values[len(values) // 2]
        left = [r for r in records if r[best_attribute] < median]
        right = [r for r in records if r[best_attribute] >= median]
        if len(left) >= k and len(right) >= k:
            _split(left, quasi_identifiers, k, spans, partitions)
            _split(right, quasi_identifiers, k, spans, partitions)
            return
        # Median split failed; try the strict split the other way around.
        left = [r for r in records if r[best_attribute] <= median]
        right = [r for r in records if r[best_attribute] > median]
        if len(left) >= k and len(right) >= k:
            _split(left, quasi_identifiers, k, spans, partitions)
            _split(right, quasi_identifiers, k, spans, partitions)
            return
    ranges = {
        attribute: (
            min(r[attribute] for r in records),
            max(r[attribute] for r in records),
        )
        for attribute in quasi_identifiers
    }
    partitions.append((ranges, records))


def _choose_attribute(records, quasi_identifiers, spans):
    """The attribute with the widest normalized range (ties: name order)."""
    best, best_width = None, 0.0
    for attribute in sorted(quasi_identifiers):
        low = min(r[attribute] for r in records)
        high = max(r[attribute] for r in records)
        global_low, global_high = spans[attribute]
        denominator = global_high - global_low
        width = (high - low) / denominator if denominator else 0.0
        if width > best_width:
            best, best_width = attribute, width
    return best
