"""Greedy multidimensional partitioning (Mondrian) for numeric QIs.

Instead of one global generalization level, Mondrian recursively splits the
record set on the median of the widest-normalized-range quasi-identifier,
stopping when a split would leave a side with fewer than k records.  Each
final partition is released with its QI values replaced by the partition's
ranges.  Typically loses far less information than full-domain
generalization — benchmark A6 quantifies the difference.

The default implementation loads each QI into one float column array and
recurses over index arrays with boolean masks — split choice, medians,
and ranges are ndarray reductions, and range endpoints are read back from
the original Python values (types preserved).  ``REPRO_SCALAR_KERNELS=1``
selects the original per-record reference; both produce identical
partitions in identical order.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.kernels import use_scalar_kernels


def mondrian_partition(records, quasi_identifiers, k):
    """Partition ``records`` into k-anonymous groups.

    All quasi-identifiers must be numeric.  Returns a list of partitions;
    each partition is ``(ranges, members)`` with ``ranges`` a
    ``{attribute: (low, high)}`` mapping.
    """
    records = list(records)
    if k < 1:
        raise ReproError("k must be >= 1")
    if not quasi_identifiers:
        raise ReproError("Mondrian needs at least one quasi-identifier")
    if len(records) < k:
        raise ReproError(f"{len(records)} records cannot be {k}-anonymous")
    for record in records:  # repro-lint: disable=REP012 -- type validation must see each raw value once
        for attribute in quasi_identifiers:
            value = record.get(attribute)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ReproError(
                    f"Mondrian requires numeric QIs; {attribute!r}={value!r}"
                )

    if use_scalar_kernels():
        # Global ranges for normalization, so one wide attribute does not
        # dominate the split choice.
        spans = {}
        for attribute in quasi_identifiers:
            values = [r[attribute] for r in records]  # repro-lint: disable=REP012 -- scalar reference path
            spans[attribute] = (min(values), max(values))
        partitions = []
        _split_scalar(records, quasi_identifiers, k, spans, partitions)
        return partitions

    attributes = sorted(quasi_identifiers)
    raw = {
        attribute: [r[attribute] for r in records]  # repro-lint: disable=REP012 -- one column-load pass feeding the ndarray recursion
        for attribute in attributes
    }
    columns = {a: np.asarray(raw[a], dtype=float) for a in attributes}
    spans = {
        a: float(columns[a].max() - columns[a].min()) for a in attributes
    }
    partitions = []
    _split_vector(
        np.arange(len(records), dtype=np.intp), records, raw, columns,
        attributes, k, spans, partitions,
    )
    return partitions


def anonymized_records(partitions, quasi_identifiers):
    """Flatten partitions into released records with range-valued QIs."""
    released = []
    for ranges, members in partitions:
        for record in members:  # repro-lint: disable=REP012 -- release materialization: one output dict per record
            out = dict(record)
            for attribute in quasi_identifiers:
                low, high = ranges[attribute]
                if low == high:
                    out[attribute] = low
                else:
                    out[attribute] = f"[{low}-{high}]"
            released.append(out)
    return released


def _split_vector(index, records, raw, columns, attributes, k, spans,
                  partitions):
    """The reference recursion over an index array instead of record lists."""
    best, best_width = None, 0.0
    for attribute in attributes:
        values = columns[attribute][index]
        denominator = spans[attribute]
        width = (
            float(values.max() - values.min()) / denominator
            if denominator else 0.0
        )
        if width > best_width:
            best, best_width = attribute, width
    if best is not None:
        values = columns[best][index]
        median = np.sort(values, kind="stable")[len(values) // 2]
        for left_mask in (values < median, values <= median):
            left, right = index[left_mask], index[~left_mask]
            if len(left) >= k and len(right) >= k:
                _split_vector(left, records, raw, columns, attributes, k,
                              spans, partitions)
                _split_vector(right, records, raw, columns, attributes, k,
                              spans, partitions)
                return
    ranges = {}
    for attribute in attributes:
        values = columns[attribute][index]
        # Read endpoints back from the original values: int QIs must stay
        # ints in the released ranges, exactly as the scalar min()/max().
        ranges[attribute] = (
            raw[attribute][index[int(values.argmin())]],
            raw[attribute][index[int(values.argmax())]],
        )
    partitions.append((ranges, [records[i] for i in index]))  # repro-lint: disable=REP012 -- partition materialization


def _split_scalar(records, quasi_identifiers, k, spans, partitions):
    best_attribute = _choose_attribute(records, quasi_identifiers, spans)
    if best_attribute is not None:
        values = sorted(r[best_attribute] for r in records)  # repro-lint: disable=REP012 -- scalar reference path
        median = values[len(values) // 2]
        left = [r for r in records if r[best_attribute] < median]  # repro-lint: disable=REP012 -- scalar reference path
        right = [r for r in records if r[best_attribute] >= median]  # repro-lint: disable=REP012 -- scalar reference path
        if len(left) >= k and len(right) >= k:
            _split_scalar(left, quasi_identifiers, k, spans, partitions)
            _split_scalar(right, quasi_identifiers, k, spans, partitions)
            return
        # Median split failed; try the strict split the other way around.
        left = [r for r in records if r[best_attribute] <= median]  # repro-lint: disable=REP012 -- scalar reference path
        right = [r for r in records if r[best_attribute] > median]  # repro-lint: disable=REP012 -- scalar reference path
        if len(left) >= k and len(right) >= k:
            _split_scalar(left, quasi_identifiers, k, spans, partitions)
            _split_scalar(right, quasi_identifiers, k, spans, partitions)
            return
    ranges = {
        attribute: (
            min(r[attribute] for r in records),  # repro-lint: disable=REP012 -- scalar reference path
            max(r[attribute] for r in records),  # repro-lint: disable=REP012 -- scalar reference path
        )
        for attribute in quasi_identifiers
    }
    partitions.append((ranges, records))


def _choose_attribute(records, quasi_identifiers, spans):
    """The attribute with the widest normalized range (ties: name order)."""
    best, best_width = None, 0.0
    for attribute in sorted(quasi_identifiers):
        low = min(r[attribute] for r in records)  # repro-lint: disable=REP012 -- scalar reference path
        high = max(r[attribute] for r in records)  # repro-lint: disable=REP012 -- scalar reference path
        global_low, global_high = spans[attribute]
        denominator = global_high - global_low
        width = (high - low) / denominator if denominator else 0.0
        if width > best_width:
            best, best_width = attribute, width
    return best
