"""Value generalization hierarchies.

A hierarchy maps a ground value through successively coarser levels; the
top level is always full suppression (``'*'``).  Two constructors cover the
common quasi-identifier shapes: :func:`interval_hierarchy` for numbers
(age → 5-year band → 10-year band → … → '*') and
:func:`taxonomy_hierarchy` for categorical trees (city → county → state →
'*').
"""

from __future__ import annotations

from repro.errors import ReproError

SUPPRESSED = "*"


class GeneralizationHierarchy:
    """A per-attribute generalization function with discrete levels.

    ``levels`` is a list of callables; ``levels[i]`` maps a ground value to
    its level-i generalization.  Level 0 is the identity; the constructor
    appends the suppression level automatically.
    """

    def __init__(self, attribute, levels):
        self.attribute = attribute
        self._levels = [lambda value: value] + list(levels) + [lambda value: SUPPRESSED]

    @property
    def height(self):
        """Index of the top (suppression) level."""
        return len(self._levels) - 1

    def generalize(self, value, level):
        """Generalize ``value`` to ``level`` (0 = identity, height = '*')."""
        if not 0 <= level <= self.height:
            raise ReproError(
                f"level {level} out of range [0, {self.height}] "
                f"for attribute {self.attribute!r}"
            )
        if value is None:
            return SUPPRESSED
        return self._levels[level](value)


def interval_hierarchy(attribute, widths, low=0):
    """A numeric hierarchy with one level per interval width.

    ``widths`` must be increasing (e.g. ``[5, 10, 20]`` gives levels
    age → [60-65) → [60-70) → [60-80) → '*').  Values are labelled
    ``'[a-b)'``.
    """
    if not widths:
        raise ReproError("interval hierarchy needs at least one width")
    if any(w <= 0 for w in widths):
        raise ReproError("interval widths must be positive")
    if list(widths) != sorted(widths):
        raise ReproError("interval widths must be increasing")

    def make_level(width):
        def level(value):
            value = float(value)
            start = low + ((value - low) // width) * width
            return f"[{_fmt(start)}-{_fmt(start + width)})"

        return level

    return GeneralizationHierarchy(attribute, [make_level(w) for w in widths])


def taxonomy_hierarchy(attribute, parents):
    """A categorical hierarchy from a child → parent mapping.

    The mapping's transitive chains define the levels: level i maps a value
    i steps up the tree (staying at the root once reached).  The hierarchy
    height is the longest chain in ``parents``.
    """
    if not parents:
        raise ReproError("taxonomy hierarchy needs a parent mapping")

    def climb(value, steps):
        current = str(value)
        for _ in range(steps):
            if current in parents:
                current = parents[current]
        return current

    max_depth = 0
    for value in parents:
        depth, current = 0, value
        seen = set()
        while current in parents:
            if current in seen:
                raise ReproError(f"cycle in taxonomy at {current!r}")
            seen.add(current)
            current = parents[current]
            depth += 1
        max_depth = max(max_depth, depth)

    levels = [
        (lambda steps: (lambda value: climb(value, steps)))(i)
        for i in range(1, max_depth + 1)
    ]
    return GeneralizationHierarchy(attribute, levels)


def _fmt(number):
    if float(number).is_integer():
        return str(int(number))
    return f"{number:g}"
