"""Static plan checking: decide disclosure before dispatch (Benedikt-style).

The paper's enforcement is *rewrite-then-execute*: every privacy verdict
(policy grants, loss budgets, statistical-database guards) is computable
from the query and policies alone — except the few that depend on data
or history.  :class:`PlanAnalyzer` exploits that split.  For each source
of a fragmentation plan it runs the *actual runtime components* up to —
but excluding — execution:

    transform → policy decisions → rewrite (dry run) → features
              → cluster peek → loss estimate → budget comparison

and classifies the source as statically **answering**, statically
**refusing** (with the same exception kind and message the source would
raise), or **runtime-dependent**.  Because the same functions compute
both verdicts, static and runtime agreement is exact, not heuristic —
the differential property test in ``tests/analysis`` holds it to zero
disagreements.

Plan-level verdict lattice (see ``docs/static_analysis.md``)::

            SAFE                 no policy can refuse this plan
              |
        RUNTIME_CHECK            verdict depends on data/history;
              |                  remaining checks are enumerated
            REFUSE               some policy is guaranteed to refuse

``REFUSE`` carries the offending source and path (from the taint
labels), and the worst-case aggregated loss bound ``1 - Π(1 - loss_i)``
is computed symbolically with the same
:func:`repro.metrics.privacy_loss.budget_fixed_point` the runtime
:class:`~repro.mediator.control.PrivacyControl` applies.

What stays runtime-dependent (and why):

* aggregate queries with a WHERE clause (or a consent predicate): the
  query set — hence set-size control and the empty-set check — depends
  on the data;
* overlap control: depends on the history of previously answered sets;
* audit-trail over SUM/AVG: depends on the auditor's recorded history.

Availability is *not* part of the verdict: ``SAFE`` promises no
**policy refusal**, not that every source is reachable — dispatch
deadlines, retries, and circuit breakers still apply downstream.
"""

from __future__ import annotations

import time

from repro.analysis import taint
from repro.errors import (
    AccessDenied,
    PathError,
    PrivacyViolation,
    QueryError,
    ReproError,
)
from repro.metrics.privacy_loss import budget_fixed_point, compound_loss
from repro.policy.matching import combine, evaluate_request
from repro.query.features import extract_features, features_with_budget
from repro.query.language import piql_without_maxloss, to_piql

#: Verdicts, ordered SAFE > RUNTIME_CHECK > REFUSE (certainty of answering).
SAFE = "SAFE"
REFUSE = "REFUSE"
RUNTIME_CHECK = "RUNTIME_CHECK"

#: Per-source static statuses.
ANSWERS = "answers"
REFUSES = "refuses"
RUNTIME = "runtime"


class SourceStaticOutcome:
    """What the analyzer concluded about one source's fragment."""

    def __init__(self, source, status, loss=None, budget=None, labels=(),
                 refusal_kind=None, refusal_reason=None, runtime_checks=()):
        self.source = source
        self.status = status            # ANSWERS | REFUSES | RUNTIME
        self.loss = loss                # static per-source loss (ANSWERS)
        self.budget = budget            # granted loss budget (ANSWERS)
        self.labels = list(labels)      # TaintLabels for this fragment
        self.refusal_kind = refusal_kind
        self.refusal_reason = refusal_reason
        self.runtime_checks = list(runtime_checks)

    def to_dict(self):
        return {
            "source": self.source,
            "status": self.status,
            "loss": self.loss,
            "budget": self.budget,
            "labels": [label.to_dict() for label in self.labels],
            "refusal_kind": self.refusal_kind,
            "refusal_reason": self.refusal_reason,
            "runtime_checks": list(self.runtime_checks),
        }

    def __repr__(self):
        return f"SourceStaticOutcome({self.source}: {self.status})"


class PlanVerdict:
    """The analyzer's verdict for one fragmentation plan."""

    def __init__(self, verdict, reason=None, source=None, path=None,
                 per_source=(), aggregated_bound=0.0, max_loss=1.0,
                 runtime_checks=(), analysis_ms=0.0):
        self.verdict = verdict          # SAFE | REFUSE | RUNTIME_CHECK
        self.reason = reason            # REFUSE: the message pose() raises
        self.source = source            # REFUSE: first offending source
        self.path = path                # REFUSE: offending path, if known
        self.per_source = {o.source: o for o in per_source}
        self.aggregated_bound = aggregated_bound  # 1 - Π(1 - loss_i)
        self.max_loss = max_loss
        self.runtime_checks = list(runtime_checks)
        self.analysis_ms = analysis_ms

    @property
    def refusing_sources(self):
        return sorted(
            name for name, outcome in self.per_source.items()
            if outcome.status == REFUSES
        )

    def to_dict(self):
        return {
            "verdict": self.verdict,
            "reason": self.reason,
            "source": self.source,
            "path": self.path,
            "per_source": {
                name: outcome.to_dict()
                for name, outcome in sorted(self.per_source.items())
            },
            "aggregated_bound": self.aggregated_bound,
            "max_loss": self.max_loss,
            "runtime_checks": list(self.runtime_checks),
            "analysis_ms": self.analysis_ms,
        }

    def __repr__(self):
        return (
            f"PlanVerdict({self.verdict}, "
            f"bound={self.aggregated_bound:.3f}/{self.max_loss:.3f})"
        )


class PlanAnalyzer:
    """Taint-tracking abstract interpreter over fragmentation plans."""

    def __init__(self, cache=None):
        # Tier-2b of repro.cache: per-source dry-run outcomes, memoized
        # on everything the interpretation reads (fragment text,
        # principal, policy-store version, table size, overlap state).
        # Duck-typed (anything with get/put, e.g. an LRUCache) and
        # injected by the engine so one shared tier serves the gate and
        # direct ``analyze()`` calls; None disables memoization.
        self.cache = cache

    def analyze(self, query, plan, sources, requester=None, role=None,
                subjects=(), shared=None):
        """Statically check ``plan`` (a :class:`FragmentPlan`) for ``query``.

        ``sources`` maps source name → :class:`RemoteSource` (the
        engine's registry).  Returns a :class:`PlanVerdict`; raises
        :class:`AccessDenied` when RBAC blocks the requester, exactly as
        the runtime pipeline would (fail fast, before privacy checks).

        ``shared`` is a batch-scoped dict (``pose_many``): within one
        batch the interpretation *prefix* — transform, policy
        decisions, taint labels, dry-run rewrite, consent fold — is
        memoized per (source, MAXLOSS-stripped fragment, principal,
        policy version), because none of it reads MAXLOSS.  Everything
        MAXLOSS-sensitive (features, cluster peek, loss estimate, the
        budget comparison) still runs per query, and the persistent
        tier-2b memo is still written under the full per-query key, so
        the cache ends a batch in the identical state a query-at-a-time
        caller would have left.
        """
        started = time.perf_counter()
        outcomes = []
        for name in plan.sources:
            outcomes.append(self._analyze_source(
                sources[name], name, plan.fragments[name],
                requester, role, subjects, shared,
            ))
        verdict = self._combine(query, outcomes)
        verdict.analysis_ms = (time.perf_counter() - started) * 1000.0
        return verdict

    # -- per-source abstract interpretation --------------------------------

    def _analyze_source(self, remote, name, fragment, requester, role,
                        subjects, shared=None):
        key = self._outcome_key(remote, name, fragment, requester, role,
                                subjects)
        if key is not None:
            outcome, hit = self.cache.get(key)
            if hit:
                return outcome
        try:
            outcome = self._interpret(remote, name, fragment, requester,
                                      role, subjects, shared)
        except AccessDenied:
            raise  # runtime fails fast on RBAC; the gate must too
        except (PrivacyViolation, PathError) as error:
            # the exact refusal the dispatcher would record as final —
            # cacheable below precisely because refusals are final
            outcome = SourceStaticOutcome(
                name, REFUSES,
                refusal_kind=type(error).__name__,
                refusal_reason=str(error),
            )
        except (ReproError, AttributeError, TypeError, KeyError) as error:
            # Unanalyzable source (duck-typed test double, exotic
            # configuration): stay sound by deferring to runtime rather
            # than guessing.  Never cached: the double's behaviour is
            # not captured by the key.
            return SourceStaticOutcome(
                name, RUNTIME,
                runtime_checks=[f"{name}: not statically analyzable "
                                f"({type(error).__name__}: {error})"],
            )
        if key is not None:
            self.cache.put(key, outcome)
        return outcome

    def _outcome_key(self, remote, name, fragment, requester, role,
                     subjects):
        """The memo key for one source interpretation, or None.

        The key must pin every input ``_interpret`` reads: the rendered
        fragment (includes purpose and MAXLOSS), the principal, the
        source's policy-store version (any registration bumps it), the
        table size (the no-WHERE set-size check depends on it), and
        whether overlap control is armed.  Sources that do not expose
        these (duck-typed doubles) are simply not memoized.
        """
        if self.cache is None:
            return None
        try:
            version = remote.policy_store.version
            table_rows = len(remote.table)
            overlap_armed = remote.overlap is not None
        except (AttributeError, TypeError):
            return None
        if not isinstance(version, int):
            return None
        return (name, to_piql(fragment), requester, role, tuple(subjects),
                version, table_rows, overlap_armed)

    def _interpret(self, remote, name, fragment, requester, role, subjects,
                   shared=None):
        key = self._share_key(remote, name, fragment, requester, role,
                              subjects) if shared is not None else None
        labels, rewrite, query, view = self._interpret_prefix(
            remote, name, fragment, requester, role, subjects, shared, key
        )

        if key is not None:
            # Features share the prefix key: only requested_loss_budget
            # reads MAXLOSS, and it is stamped on per query below.
            features_key = ("static-features",) + key[1:]
            base = shared.get(features_key)
            if base is None:
                base = shared[features_key] = extract_features(
                    fragment, view
                )
            features = features_with_budget(base, fragment.max_loss)
        else:
            features = extract_features(fragment, view)
        techniques = remote.clusterer.peek(features)

        runtime_checks = self._sequence_defense_checks(
            remote, name, query, techniques
        )

        estimate = remote.loss_estimator.estimate(rewrite, features,
                                                  techniques)
        budget = min(fragment.max_loss, rewrite.loss_budget)
        if not estimate.within_budget(budget):
            # Mirror the optimizer's pre-execution refusal verbatim so a
            # static REFUSE reads identically to the runtime one.
            return SourceStaticOutcome(
                name, REFUSES, labels=labels,
                refusal_kind="PrivacyViolation",
                refusal_reason=(
                    f"estimated privacy loss {estimate.privacy_loss:.3f} "
                    f"exceeds budget {budget:.3f}; refusing before execution"
                ),
            )

        if runtime_checks:
            return SourceStaticOutcome(
                name, RUNTIME, loss=estimate.privacy_loss,
                budget=rewrite.loss_budget, labels=labels,
                runtime_checks=runtime_checks,
            )
        return SourceStaticOutcome(
            name, ANSWERS, loss=estimate.privacy_loss,
            budget=rewrite.loss_budget, labels=labels,
        )

    def _share_key(self, remote, name, fragment, requester, role, subjects):
        """The batch sharing key for one source interpretation, or None.

        Pins the MAXLOSS-stripped fragment, the principal, and the
        source's policy version — everything the MAXLOSS-independent
        prefix (and the feature base) reads.
        """
        version = getattr(
            getattr(remote, "policy_store", None), "version", None
        )
        if not isinstance(version, int):
            return None
        return ("static", name, piql_without_maxloss(fragment),
                requester, role, tuple(subjects), version)

    def _interpret_prefix(self, remote, name, fragment, requester, role,
                          subjects, shared=None, key=None):
        """The MAXLOSS-independent head of one source interpretation.

        Transform → policy decisions → taint labels → dry-run rewrite →
        consent fold, none of which reads ``fragment.max_loss``.  With a
        batch-scoped ``shared`` dict the whole head — including any
        refusal it raises — is computed once per (source,
        MAXLOSS-stripped fragment, principal, policy version) and
        replayed for the batch's MAXLOSS variants.  Refusals replay as
        the *same* exception object: :meth:`_analyze_source` only reads
        its type and message, both immutable.
        """
        if shared is None:
            key = None
        elif key is None:
            key = self._share_key(remote, name, fragment, requester, role,
                                  subjects)
        if key is not None:
            cached = shared.get(key)
            if cached is not None:
                kind, payload = cached
                if kind == "error":
                    raise payload
                return payload
        try:
            prefix = self._interpret_head(remote, name, fragment, requester,
                                          role, subjects)
        except Exception as error:
            if key is not None:
                shared[key] = ("error", error)
            raise
        if key is not None:
            shared[key] = ("ok", prefix)
        return prefix

    def _interpret_head(self, remote, name, fragment, requester, role,
                        subjects):
        transform = remote.transformer.transform(fragment)

        purpose = fragment.purpose or "research"
        decisions = {}
        for path_repr, column in sorted(transform.column_of_path.items()):
            decision = evaluate_request(
                remote.policy_store, name, path_repr, purpose,
                role=role, subjects=subjects,
            )
            if column in decisions:
                decisions[column] = combine(decisions[column], decision)
            else:
                decisions[column] = decision

        labels = taint.label_source_query(
            name, transform.query, transform.column_of_path, decisions
        )

        # dry_run raises the same AccessDenied / PrivacyViolation the
        # runtime rewrite would, caught by _analyze_source above.
        rewrite = remote.rewriter.dry_run(transform.query, decisions,
                                          requester)

        view = remote.policy_store.view_for(name)

        query = rewrite.query
        if remote.consent_predicate is not None:
            query = query.replace(
                where=query.where.and_(remote.consent_predicate)
            )
        return labels, rewrite, query, view

    def _sequence_defense_checks(self, remote, name, query, techniques):
        """Statically resolve ``RemoteSource._sequence_defenses``.

        Returns the list of checks that must stay at runtime; raises
        :class:`PrivacyViolation` for defenses that are guaranteed to
        fail (caught by the caller as a static refusal).
        """
        if not query.is_aggregate:
            return []
        names = {t.name for t in techniques}
        checks = []
        if query.where.columns_used():
            # The query set depends on the data: the empty-set check and
            # set-size control cannot be decided here.
            detail = "query set is data-dependent (WHERE clause)"
            checks.append(f"{name}: query set non-empty [{detail}]")
            if "set-size-control" in names:
                checks.append(
                    f"{name}: {remote.set_size.k} <= |query set| [{detail}]"
                )
        else:
            # No predicate → the query set is the whole table, so both
            # defenses are decidable now.
            table_size = len(remote.table)
            if table_size == 0:
                raise PrivacyViolation(f"{name}: empty query set")
            if "set-size-control" in names:
                remote.set_size.check(range(table_size))
        if remote.overlap is not None:
            checks.append(
                f"{name}: |query set ∩ answered set| <= "
                f"{remote.overlap.max_overlap} [history-dependent]"
            )
        sums_private = any(
            a.func in ("sum", "avg") for a in query.aggregates
        )
        if "audit-trail" in names and sums_private:
            checks.append(
                f"{name}: SUM/AVG audit trail stays uncompromised "
                f"[history-dependent]"
            )
        return checks

    # -- plan-level combination --------------------------------------------

    def _combine(self, query, outcomes):
        answering = [o for o in outcomes if o.status == ANSWERS]
        refusing = [o for o in outcomes if o.status == REFUSES]
        runtime = [o for o in outcomes if o.status == RUNTIME]
        runtime_checks = [c for o in runtime for c in o.runtime_checks]

        if refusing and not answering and not runtime:
            # Every relevant source is statically guaranteed to refuse:
            # this is the runtime "no responses" branch, decided early.
            detail = "; ".join(
                f"{o.source}: {o.refusal_reason}" for o in refusing
            )
            offender = self._offending(refusing[0])
            return PlanVerdict(
                REFUSE,
                reason=("every relevant source refused the query "
                        f"(decided statically, before dispatch): {detail}"),
                source=refusing[0].source,
                path=offender,
                per_source=outcomes,
                max_loss=query.max_loss,
            )

        # Worst-case symbolic bound: every statically-answering and every
        # runtime-dependent source participates with its static loss.
        losses = {
            o.source: o.loss for o in answering + runtime
            if o.loss is not None
        }
        bound = compound_loss(losses.values()) if losses else 0.0

        if not runtime:
            # Fully static plan: replay the privacy control's budget
            # fixed point symbolically and compare against MAXLOSS.
            budgets = {o.source: o.budget for o in answering}
            _participating, aggregated, _withheld = budget_fixed_point(
                {o.source: o.loss for o in answering}, budgets
            )
            if aggregated > query.max_loss + 1e-9:
                return PlanVerdict(
                    REFUSE,
                    reason=(
                        f"aggregated privacy loss {aggregated:.3f} exceeds "
                        f"the requester's MAXLOSS {query.max_loss:.3f} "
                        "(decided statically, before dispatch)"
                    ),
                    source=max(answering, key=lambda o: o.loss).source,
                    per_source=outcomes,
                    aggregated_bound=bound,
                    max_loss=query.max_loss,
                )
            return PlanVerdict(
                SAFE, per_source=outcomes, aggregated_bound=bound,
                max_loss=query.max_loss,
            )

        if bound > query.max_loss + 1e-9:
            # The bound alone cannot justify REFUSE: budget withholding
            # or a runtime refusal may shrink the participating set.
            runtime_checks.append(
                f"aggregated loss bound {bound:.3f} vs MAXLOSS "
                f"{query.max_loss:.3f} (participating set is "
                "runtime-dependent)"
            )
        return PlanVerdict(
            RUNTIME_CHECK, per_source=outcomes, aggregated_bound=bound,
            max_loss=query.max_loss, runtime_checks=runtime_checks,
        )

    def _offending(self, outcome):
        """The offending path of a refusing source, from its taint labels."""
        label = taint.blocking_label(outcome.labels)
        if label is not None:
            return label.path
        denied = [lab for lab in outcome.labels if not lab.allowed]
        return denied[0].path if denied else None


def resolve_static_check(static_check):
    """Normalize the ``static_check`` constructor argument.

    ``True``/``None`` → a fresh :class:`PlanAnalyzer` (the default gate);
    ``False`` → ``None`` (gate disabled); a :class:`PlanAnalyzer`
    instance passes through.
    """
    if static_check is None or static_check is True:
        return PlanAnalyzer()
    if static_check is False:
        return None
    if isinstance(static_check, PlanAnalyzer):
        return static_check
    raise QueryError(
        "static_check must be True, False, None, or a PlanAnalyzer, "
        f"not {type(static_check).__name__}"
    )
