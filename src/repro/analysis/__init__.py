"""Static analysis for PRIVATE-IYE: plan checking and repo linting.

Two engines live here:

* :mod:`repro.analysis.plancheck` + :mod:`repro.analysis.taint` — a
  taint-tracking abstract interpreter over PIQL fragmentation plans.  It
  decides, *before any source is contacted*, whether a plan is ``SAFE``
  (no policy can refuse it), ``REFUSE`` (some policy is guaranteed to
  refuse it, with the offending source and path), or ``RUNTIME_CHECK``
  (the verdict depends on data or query history, with the remaining
  runtime checks enumerated).  The mediation engine runs it as a
  pre-dispatch gate (``PrivateIye(static_check=...)``, on by default).
* :mod:`repro.analysis.lint` — a stdlib-``ast`` lint framework with
  repo-specific rules (REP001–REP007) guarding the invariants earlier
  PRs introduced by convention: telemetry lock discipline, refusal
  finality, the :class:`~repro.errors.ReproError` hierarchy, layering,
  swallowed exceptions, and mutable default arguments.  Run it with
  ``python -m repro.analysis.lint src/``.

See ``docs/static_analysis.md`` for the verdict lattice and rule
catalog.
"""

from repro.analysis.plancheck import (
    REFUSE,
    RUNTIME_CHECK,
    SAFE,
    PlanAnalyzer,
    PlanVerdict,
    SourceStaticOutcome,
    resolve_static_check,
)
from repro.analysis.taint import TaintLabel, label_source_query

__all__ = [
    "SAFE",
    "REFUSE",
    "RUNTIME_CHECK",
    "PlanAnalyzer",
    "PlanVerdict",
    "SourceStaticOutcome",
    "resolve_static_check",
    "TaintLabel",
    "label_source_query",
]
