"""Entry point for ``python -m repro.analysis.lint``."""

import sys

from repro.analysis.lint.cli import main

sys.exit(main())
