"""repro-lint: repo-specific invariant checking over the Python AST.

Machine-checks the conventions earlier PRs established by hand:

* **REP001** shared state in lock-owning classes mutated outside the lock
* **REP002** refusals caught and retried (refusal finality)
* **REP003** raising builtin exceptions instead of the ReproError hierarchy
* **REP004** layering violations (a lower layer importing a higher one)
* **REP005** bare ``except`` / silently swallowed exceptions
* **REP006** mutable default arguments
* **REP007** ad-hoc dict-based caches outside ``repro.cache``

Run ``python -m repro.analysis.lint src/`` (``--format=json`` in CI).
Suppress a finding in place with a justification::

    raise TypeError(...)  # repro-lint: disable=REP003 -- test-asserted API

See ``docs/static_analysis.md`` for the full rule catalog.
"""

from repro.analysis.lint.core import (
    Finding,
    LintContext,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    rule,
)
from repro.analysis.lint import rules as _rules  # registers REP001–REP007

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "rule",
]

del _rules
