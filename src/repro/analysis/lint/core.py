"""Lint framework: rule registry, suppression comments, file driver.

Rules are plain functions registered with the :func:`rule` decorator;
each receives a :class:`LintContext` (parsed AST, source lines, dotted
module name) and yields :class:`Finding` objects.  Findings are filtered
through per-line suppression comments before they reach a reporter::

    # repro-lint: disable=REP003 -- why this is intentional

A suppression comment applies to the physical line it sits on; a comment
alone on a line applies to the next line instead.  The justification
after ``--`` is required by convention (the linter records whether one
was given, and the CI gate treats codes without justification the same —
review enforces the habit).  A suppression naming a code the linter does
not know (a typo, or a rule that was renamed) is itself a finding
(``REP000``): a misspelled suppression silently suppresses *nothing*,
which is the worst possible failure mode for a directive whose whole job
is to be deliberate.

Two codes are *whole-program*: REP010 (confidential flow to sink) and
REP011 (unguarded shared mutation) are produced by the interprocedural
analyzer in :mod:`repro.analysis.flow`, not by per-file rules here —
but their suppression comments use this framework's syntax and are
validated against :data:`WHOLE_PROGRAM_CODES` alongside the per-file
registry.

Everything here is stdlib-only (``ast``, ``tokenize``): the linter must
run in the barest CI container, before any dependency is installed.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.errors import ReproError

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<codes>[A-Z0-9, ]+)"
    r"(?:\s*--\s*(?P<why>.*))?"
)

#: Codes produced by the whole-program analyzer (repro.analysis.flow),
#: not by per-file rules — valid suppression targets nonetheless.
WHOLE_PROGRAM_CODES = {
    "REP010": "unsanitized confidential flow reaches a sink",
    "REP011": "shared mutable state mutated without its guarding lock",
}

#: The meta-code for a suppression directive that names no known rule.
UNKNOWN_SUPPRESSION_CODE = "REP000"


class Finding:
    """One lint finding, pointing at a file position."""

    __slots__ = ("code", "message", "path", "line", "col")

    def __init__(self, code, message, path, line, col=0):
        self.code = code
        self.message = message
        self.path = path
        self.line = line
        self.col = col

    def to_dict(self):
        return {
            "code": self.code,
            "message": self.message,
            "path": str(self.path),
            "line": self.line,
            "col": self.col,
        }

    def __repr__(self):
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class LintContext:
    """Everything a rule may inspect about one file."""

    def __init__(self, path, source, tree, module):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.module = module  # dotted module name, e.g. "repro.mediator.engine"

    @property
    def in_repro(self):
        """Whether the file belongs to the ``repro`` package."""
        return self.module is not None and (
            self.module == "repro" or self.module.startswith("repro.")
        )

    def finding(self, code, message, node):
        return Finding(code, message, self.path,
                       getattr(node, "lineno", 1),
                       getattr(node, "col_offset", 0))


class Rule:
    """A registered rule: code, one-line summary, and its check function."""

    def __init__(self, code, summary, check):
        self.code = code
        self.summary = summary
        self.check = check

    def run(self, context):
        return list(self.check(context))

    def __repr__(self):
        return f"Rule({self.code}: {self.summary})"


_REGISTRY = {}


def rule(code, summary):
    """Register a rule function under ``code`` (e.g. ``"REP003"``)."""

    def decorator(func):
        if code in _REGISTRY:
            raise ReproError(f"duplicate lint rule {code}")
        _REGISTRY[code] = Rule(code, summary, func)
        return func

    return decorator


def all_rules():
    """Registered rules, sorted by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


class Suppressions:
    """Per-line ``repro-lint: disable=`` directives of one file."""

    def __init__(self, lines):
        self._by_line = {}  # line number → set of codes
        self.unjustified = []  # (line, codes) with no -- justification
        self.directives = []  # (directive line, set of codes), in order
        for number, text in enumerate(lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if not match:
                continue
            codes = {
                code.strip() for code in match.group("codes").split(",")
                if code.strip()
            }
            target = number
            if text.lstrip().startswith("#"):
                # comment-only line: the directive covers the next
                # statement line (skipping the rest of the comment block)
                target = number + 1
                while target <= len(lines):
                    following = lines[target - 1].strip()
                    if following and not following.startswith("#"):
                        break
                    target += 1
            self._by_line.setdefault(target, set()).update(codes)
            self.directives.append((number, codes))
            if not (match.group("why") or "").strip():
                self.unjustified.append((number, sorted(codes)))

    def covers(self, finding):
        return finding.code in self._by_line.get(finding.line, ())

    def unknown_code_findings(self, path, known_codes):
        """One REP000 finding per suppressed code the linter doesn't know.

        A ``disable=REP0003`` typo never matches a real finding, so the
        directive silently does nothing while reading as if it worked;
        surfacing the unknown code keeps suppressions honest.
        """
        for line, codes in self.directives:
            for code in sorted(codes - known_codes):
                yield Finding(
                    UNKNOWN_SUPPRESSION_CODE,
                    f"suppression names unknown rule code {code!r} — it "
                    "suppresses nothing (known codes: per-file REP001-9 "
                    "and REP012-13, whole-program REP010-11)",
                    path, line,
                )


def module_name_for(path):
    """Dotted module name for ``path``, or None outside a package tree.

    Walks up while ``__init__.py`` siblings exist, so
    ``src/repro/mediator/engine.py`` → ``repro.mediator.engine``.
    """
    path = Path(path).resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else None


def known_codes():
    """Every valid suppression target: per-file rules + whole-program codes."""
    codes = set(_REGISTRY) | set(WHOLE_PROGRAM_CODES)
    codes.add(UNKNOWN_SUPPRESSION_CODE)
    return codes


def lint_source(source, path="<string>", module=None, select=None):
    """Lint one source text; returns ``(findings, suppressed_count)``."""
    tree = ast.parse(source, filename=str(path))
    context = LintContext(path, source, tree, module)
    suppressions = Suppressions(context.lines)
    findings, suppressed = [], 0
    for lint_rule in all_rules():
        if select is not None and lint_rule.code not in select:
            continue
        for finding in lint_rule.run(context):
            if suppressions.covers(finding):
                suppressed += 1
            else:
                findings.append(finding)
    if select is None or UNKNOWN_SUPPRESSION_CODE in select:
        for finding in suppressions.unknown_code_findings(path,
                                                          known_codes()):
            if suppressions.covers(finding):
                suppressed += 1
            else:
                findings.append(finding)
    findings.sort(key=lambda f: (str(f.path), f.line, f.col, f.code))
    return findings, suppressed


def iter_python_files(paths):
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    seen = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            seen.extend(sorted(entry.rglob("*.py")))
        elif entry.suffix == ".py":
            seen.append(entry)
    return seen


class LintRunError:
    """One file the linter could not check (parse/read failure).

    A file that fails to parse yielded *no* findings — reporting that as
    exit status 1 ("findings") would let a syntax error masquerade as a
    policy verdict.  The CLI maps these to exit status 2 instead.
    """

    __slots__ = ("path", "message")

    def __init__(self, path, message):
        self.path = path
        self.message = message

    def to_dict(self):
        return {"path": str(self.path), "message": self.message}

    def __repr__(self):
        return f"{self.path}: error: {self.message}"


def lint_paths(paths, select=None):
    """Lint files/trees; returns ``(findings, files_checked, suppressed)``.

    Parse failures raise (the historical contract); callers that need to
    distinguish findings from broken input use :func:`lint_paths_detailed`.
    """
    findings, checked, suppressed, errors = lint_paths_detailed(
        paths, select=select
    )
    if errors:
        raise SyntaxError(str(errors[0]))
    return findings, checked, suppressed


def lint_paths_detailed(paths, select=None):
    """Lint files/trees, capturing per-file failures instead of raising.

    Returns ``(findings, files_checked, suppressed, errors)`` where
    ``errors`` is a list of :class:`LintRunError` — one per file that
    could not be read or parsed.  Files that error are not counted in
    ``files_checked``.
    """
    findings, suppressed, checked, errors = [], 0, 0, []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
            file_findings, file_suppressed = lint_source(
                source, path=path, module=module_name_for(path),
                select=select,
            )
        except (SyntaxError, ValueError, OSError) as error:
            errors.append(LintRunError(path, str(error)))
            continue
        findings.extend(file_findings)
        suppressed += file_suppressed
        checked += 1
    return findings, checked, suppressed, errors
