"""The REP rule catalog (see docs/static_analysis.md for examples).

Each rule guards an invariant this repo established in an earlier PR and
previously enforced only by convention and review:

* REP001 — classes that own a lock must mutate their shared attributes
  under it (PR 1/2: telemetry registries are shared across dispatcher
  threads).
* REP002 — a refusal (``PrivacyViolation``/``AuditRefusal``/
  ``REFUSAL_ERRORS``) is a *final protocol answer*; catching one inside
  a loop and retrying (``continue``) or ignoring it (``pass``) breaks
  refusal finality (PR 2's core invariant).
* REP003 — library code raises :class:`repro.errors.ReproError`
  subclasses, never bare builtins, so ``except ReproError`` stays a
  complete catch for callers.
* REP004 — imports must respect the layer order (substrates below
  policy/query, below source, below mediator, below core); a lower
  layer importing a higher one at module level is a cycle waiting to
  happen.
* REP005 — bare ``except:`` and silently swallowed broad handlers hide
  refusals and faults from the dispatcher's accounting.
* REP006 — mutable default arguments alias state across calls.
* REP007 — ad-hoc dict-based caches (``self._cache = {}`` and friends)
  outside :mod:`repro.cache` are unbounded, epoch-blind, and invisible
  to metrics; route them through the cache layer or justify why the
  layering forbids it (the cache-coherence invariant of the multi-tier
  caching PR).
* REP008 — diagnostics must flow through the structured event log
  (:mod:`repro.telemetry.events`), not ``logging`` or bare
  ``print``/``sys.stdout``/``sys.stderr`` writes: side-channel output
  is invisible to the disclosure observatory's exporters and report
  CLI (the observability PR's invariant).  :mod:`repro.telemetry`
  itself — the sanctioned rendering layer — is exempt.
* REP009 — every public name in :mod:`repro.persistence` carries a
  docstring: the durability layer's API *is* its contract (what is
  guaranteed to survive a crash at each point), and an undocumented
  backend method is a crash-consistency bug waiting for a caller to
  guess wrong (the durable-privacy-state PR's invariant).
* REP012 — the modules in :data:`KERNEL_MODULES` carry vectorized hot
  paths gated by :mod:`repro.kernels`; a per-row Python loop over
  records/rows/members there is either the pinned scalar reference
  (suppress with the justification) or an accidental de-vectorization
  the benchmarks will pay for (the vectorized-kernels PR's invariant).
* REP013 — the observatory hot paths in :data:`OBS_HOT_MODULES`
  (sampling loops, inline event listeners) must not emit spans/events
  or offer to sinks directly: per-sample emission is unbounded and an
  emitting listener recurses into the very stream being observed —
  fold into the bounded aggregation table / bundle ring and emit from
  rate-limited trigger paths only (the performance-observatory PR's
  invariant).
"""

from __future__ import annotations

import ast

from repro.analysis.lint.core import rule

# -- REP001: shared state mutated outside the owning lock ---------------------

_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore",
                   "BoundedSemaphore"}
_MUTATORS = {"append", "extend", "add", "update", "pop", "popitem",
             "remove", "discard", "clear", "insert", "appendleft",
             "popleft", "setdefault"}


def _call_factory_name(node):
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _self_attribute(node):
    """The attribute name when ``node`` is ``self.<attr>``, else None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _lock_attributes(class_node):
    """Attributes of ``class_node`` assigned a lock in ``__init__``."""
    locks = set()
    for item in class_node.body:
        if not (isinstance(item, ast.FunctionDef)
                and item.name == "__init__"):
            continue
        for node in ast.walk(item):
            if isinstance(node, ast.Assign):
                if _call_factory_name(node.value) in _LOCK_FACTORIES:
                    for target in node.targets:
                        attr = _self_attribute(target)
                        if attr is not None:
                            locks.add(attr)
    return locks


def _mutated_self_attribute(node):
    """The ``self.<attr>`` a statement/expression mutates, if any."""
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            attr = _self_attribute(target)
            if attr is not None:
                return attr
            if isinstance(target, ast.Subscript):
                attr = _self_attribute(target.value)
                if attr is not None:
                    return attr
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _MUTATORS:
            attr = _self_attribute(node.func.value)
            if attr is not None:
                return attr
    return None


def _holds_lock(with_node, locks):
    for item in with_node.items:
        expr = item.context_expr
        # accept ``with self._lock:`` and ``with self._lock.acquire():``
        attr = _self_attribute(expr)
        if attr in locks:
            return True
        if (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and _self_attribute(expr.func.value) in locks):
            return True
    return False


@rule("REP001", "shared state of a lock-owning class mutated outside its lock")
def check_lock_discipline(context):
    for class_node in ast.walk(context.tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        locks = _lock_attributes(class_node)
        if not locks:
            continue
        for method in class_node.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue  # construction happens-before sharing
            yield from _scan_method(context, class_node, method, locks)


def _scan_method(context, class_node, method, locks, under_lock=False):
    """Walk one method body tracking whether the class lock is held."""
    for node in ast.iter_child_nodes(method):
        yield from _scan_node(context, class_node, method, node, locks,
                              under_lock)


def _scan_node(context, class_node, method, node, locks, under_lock):
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.Lambda)):
        return  # nested function: called later, lock state unknown
    if isinstance(node, (ast.With, ast.AsyncWith)):
        held = under_lock or _holds_lock(node, locks)
        for child in node.body:
            yield from _scan_node(context, class_node, method, child,
                                  locks, held)
        return
    if not under_lock:
        attr = _mutated_self_attribute(node)
        if attr is not None and attr not in locks:
            yield context.finding(
                "REP001",
                f"{class_node.name}.{method.name} mutates self.{attr} "
                f"outside `with self.{sorted(locks)[0]}`",
                node,
            )
    for child in ast.iter_child_nodes(node):
        yield from _scan_node(context, class_node, method, child, locks,
                              under_lock)


# -- REP002: refusal caught and retried ---------------------------------------

_REFUSAL_NAMES = {"PrivacyViolation", "AuditRefusal", "REFUSAL_ERRORS"}


def _handler_names(handler_type):
    if handler_type is None:
        return set()
    names = set()
    for node in ast.walk(handler_type):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


def _body_retries(body):
    """Whether a handler body re-enters the loop (or ignores the error)."""
    if all(isinstance(stmt, ast.Pass) for stmt in body):
        return True
    return any(_reaches_continue(stmt) for stmt in body)


def _reaches_continue(node):
    """A ``continue`` binding to the *enclosing* loop, not a nested one."""
    if isinstance(node, ast.Continue):
        return True
    if isinstance(node, (ast.For, ast.While, ast.FunctionDef,
                         ast.AsyncFunctionDef, ast.Lambda)):
        return False  # continue inside these binds to their own scope
    return any(_reaches_continue(child)
               for child in ast.iter_child_nodes(node))


@rule("REP002", "refusal caught inside a loop and retried or ignored")
def check_refusal_finality(context):
    yield from _scan_refusals(context.tree, context, in_loop=False)


def _scan_refusals(node, context, in_loop):
    for child in ast.iter_child_nodes(node):
        child_in_loop = in_loop or isinstance(child, (ast.For, ast.While))
        if isinstance(child, ast.ExceptHandler) and in_loop:
            caught = _handler_names(child.type) & _REFUSAL_NAMES
            if caught and _body_retries(child.body):
                yield context.finding(
                    "REP002",
                    f"refusal ({', '.join(sorted(caught))}) caught inside "
                    "a loop and retried/ignored — refusals are final",
                    child,
                )
        yield from _scan_refusals(child, context, child_in_loop)


# -- REP003: builtin exceptions raised in library code ------------------------

_BUILTIN_EXCEPTIONS = {
    "ArithmeticError", "AttributeError", "BaseException", "BufferError",
    "EOFError", "Exception", "FloatingPointError", "IOError", "ImportError",
    "IndexError", "KeyError", "LookupError", "MemoryError", "NameError",
    "OSError", "OverflowError", "RecursionError", "ReferenceError",
    "RuntimeError", "SystemError", "TypeError", "UnboundLocalError",
    "UnicodeError", "ValueError", "ZeroDivisionError",
}
# intentionally exempt: NotImplementedError (abstract methods),
# AssertionError, StopIteration/StopAsyncIteration (protocols),
# KeyboardInterrupt/SystemExit (control flow).


@rule("REP003", "builtin exception raised in repro library code")
def check_repro_errors(context):
    if not context.in_repro:
        return
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        name = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name in _BUILTIN_EXCEPTIONS:
            yield context.finding(
                "REP003",
                f"raise {name} in library code — raise a "
                "repro.errors.ReproError subclass so `except ReproError` "
                "stays a complete catch",
                node,
            )


# -- REP004: layering violations ----------------------------------------------

#: Import-order ranks.  A module may import layers of rank <= its own;
#: importing a strictly higher rank at module level is a violation.
#: Derived from the actual dependency DAG (see docs/static_analysis.md).
LAYER_RANKS = {
    "errors": 0,
    "kernels": 0,
    "relational": 10, "crypto": 10, "anonymity": 10, "access": 10,
    "inference": 10, "metrics": 10,
    "xmlkit": 20, "statdb": 20, "linkage": 20, "mining": 20, "data": 20,
    "query": 30, "policy": 30,
    "telemetry": 40,
    "cache": 45,
    "source": 50,
    "analysis": 60,
    "observatory": 65,
    "mediator": 70,
    # persistence captures/replays engine state wholesale, so it sits
    # above the mediator; the engine reaches it via deferred import
    "persistence": 75,
    "core": 80,
    "testing": 90,
    # validation drives the full system through PrivateIye.pose() and
    # reuses the testing fixtures, so it sits above both
    "validation": 95,
    # the repro facade re-exports everything
    "": 100,
}


def _layer_of(module):
    """The layer name of a dotted ``repro.*`` module, or None."""
    if module is None or not module.startswith("repro"):
        return None
    parts = module.split(".")
    return parts[1] if len(parts) > 1 else ""


def _imported_repro_modules(node):
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names
                if alias.name.startswith("repro")]
    if isinstance(node, ast.ImportFrom) and node.level == 0:
        if node.module and node.module.startswith("repro"):
            return [node.module]
    return []


@rule("REP004", "module-level import of a higher architectural layer")
def check_layering(context):
    layer = _layer_of(context.module)
    if layer is None or layer not in LAYER_RANKS:
        return
    own_rank = LAYER_RANKS[layer]
    for node in _module_level_nodes(context.tree):
        for imported in _imported_repro_modules(node):
            imported_layer = _layer_of(imported)
            imported_rank = LAYER_RANKS.get(imported_layer)
            if imported_rank is not None and imported_rank > own_rank:
                yield context.finding(
                    "REP004",
                    f"layer '{layer}' (rank {own_rank}) imports "
                    f"'{imported}' from higher layer '{imported_layer}' "
                    f"(rank {imported_rank}) at module level — invert the "
                    "dependency or defer the import into the function "
                    "that needs it",
                    node,
                )


def _module_level_nodes(tree):
    """Statements executed at import time (not inside any function)."""
    stack = list(tree.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue  # lazy imports inside functions are the sanctioned escape
        stack.extend(ast.iter_child_nodes(node))


# -- REP005: bare except / swallowed exceptions -------------------------------

_BROAD_NAMES = {"Exception", "BaseException"}


@rule("REP005", "bare except or silently swallowed broad handler")
def check_swallowed_exceptions(context):
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            yield context.finding(
                "REP005",
                "bare `except:` catches SystemExit/KeyboardInterrupt and "
                "hides refusals — name the exceptions",
                node,
            )
            continue
        if (_handler_names(node.type) & _BROAD_NAMES
                and all(isinstance(stmt, ast.Pass) for stmt in node.body)):
            yield context.finding(
                "REP005",
                "broad handler silently swallows the exception — record, "
                "re-raise, or narrow it",
                node,
            )


# -- REP006: mutable default arguments ----------------------------------------

_MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "deque",
                  "OrderedDict", "Counter"}


def _is_mutable_default(node):
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    return _call_factory_name(node) in _MUTABLE_CALLS


@rule("REP006", "mutable default argument")
def check_mutable_defaults(context):
    for node in ast.walk(context.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults)
        defaults.extend(d for d in node.args.kw_defaults if d is not None)
        for default in defaults:
            if _is_mutable_default(default):
                yield context.finding(
                    "REP006",
                    f"function {node.name} has a mutable default argument "
                    "— default to None and build inside",
                    default,
                )


# -- REP007: ad-hoc dict caches outside repro.cache ---------------------------

_CACHE_NAME_MARKERS = ("cache", "memo")
_FRESH_MAPPING_FACTORIES = {"dict", "OrderedDict", "WeakValueDictionary"}


def _builds_fresh_mapping(node):
    """Whether ``node`` constructs a brand-new mapping to fill later.

    ``{}``, zero-argument ``dict()``/``OrderedDict()``, and
    ``defaultdict(...)`` (its argument is the default *factory*, not
    contents) all start empty; ``dict(other)``/``{...: ...}`` copy or
    seed existing data and are not cache storage being born.
    """
    if isinstance(node, ast.Dict):
        return not node.keys
    name = _call_factory_name(node)
    if name == "defaultdict":
        return True
    if name in _FRESH_MAPPING_FACTORIES:
        return not (node.args or node.keywords)
    return False


def _assigned_cache_name(target):
    """The cache-suggesting name a target binds, or None."""
    name = _self_attribute(target)
    if name is None and isinstance(target, ast.Name):
        name = target.id
    if name is None:
        return None
    lowered = name.lower()
    if any(marker in lowered for marker in _CACHE_NAME_MARKERS):
        return name
    return None


@rule("REP007", "ad-hoc dict-based cache outside repro.cache")
def check_adhoc_caches(context):
    if not context.in_repro:
        return
    if _layer_of(context.module) == "cache":
        return  # repro.cache is where cache storage is *supposed* to live
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Assign):
            continue
        if not _builds_fresh_mapping(node.value):
            continue
        for target in node.targets:
            name = _assigned_cache_name(target)
            if name is not None:
                yield context.finding(
                    "REP007",
                    f"{name} is an ad-hoc dict cache — use repro.cache "
                    "(bounded LRU, epoch invalidation, hit/miss stats) or "
                    "suppress with the layering justification",
                    node,
                )


# -- REP008: diagnostics bypassing the event log ------------------------------

_STDIO_STREAMS = {"stdout", "stderr"}


def _imports_logging(node):
    """Whether ``node`` imports the stdlib ``logging`` machinery."""
    if isinstance(node, ast.Import):
        return any(alias.name == "logging"
                   or alias.name.startswith("logging.")
                   for alias in node.names)
    if isinstance(node, ast.ImportFrom) and node.level == 0:
        return (node.module == "logging"
                or (node.module or "").startswith("logging."))
    return False


def _stdio_stream_attr(node):
    """``"stdout"``/``"stderr"`` when ``node`` is ``sys.<stream>``."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "sys"
            and node.attr in _STDIO_STREAMS):
        return node.attr
    return None


@rule("REP008", "logging / stdout diagnostics outside repro.telemetry")
def check_diagnostic_channels(context):
    if not context.in_repro:
        return
    if _layer_of(context.module) == "telemetry":
        return  # the sanctioned rendering layer (exporters, report CLI)
    for node in ast.walk(context.tree):
        if _imports_logging(node):
            yield context.finding(
                "REP008",
                "stdlib logging bypasses the structured event log — emit "
                "telemetry events (repro.telemetry.events) instead",
                node,
            )
        elif (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"):
            yield context.finding(
                "REP008",
                "print() writes diagnostics to a side channel the "
                "observatory cannot export — emit an event, or justify "
                "(CLI entry points rendering for humans)",
                node,
            )
        else:
            stream = _stdio_stream_attr(node)
            if stream is not None:
                yield context.finding(
                    "REP008",
                    f"bare sys.{stream} write bypasses the event log — "
                    "emit an event, or justify (CLI entry points "
                    "rendering for humans)",
                    node,
                )


# -- REP012: per-row Python loops in vectorized kernel modules -----------------

#: Modules with a vectorized hot path behind the :mod:`repro.kernels`
#: gate.  The rule is scoped to exactly these — elsewhere a row loop is
#: ordinary Python; here it is either the scalar reference the
#: differential tests pin the kernels against (suppressed with that
#: justification) or a de-vectorization regression.
KERNEL_MODULES = {
    "repro.inference.bounds",
    "repro.anonymity.kanonymity",
    "repro.anonymity.mondrian",
    "repro.statdb.laplace",
    "repro.metrics.privacy_loss",
}

_ROW_COLLECTION_NAMES = {"records", "rows", "members"}
_ITER_WRAPPERS = {"enumerate", "sorted", "reversed", "zip"}


def _row_collection(node):
    """The records/rows/members collection ``node`` iterates, or None.

    Unwraps one level of ``enumerate``/``sorted``/``reversed``/``zip``
    (the common loop dressings) and accepts both plain names and
    attribute reads (``self.records``).
    """
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in _ITER_WRAPPERS):
        for arg in node.args:
            name = _row_collection(arg)
            if name is not None:
                return name
        return None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return None
    return name if name in _ROW_COLLECTION_NAMES else None


@rule("REP012", "per-row Python loop in a vectorized kernel module")
def check_per_row_loops(context):
    if context.module not in KERNEL_MODULES:
        return
    for node in ast.walk(context.tree):
        if isinstance(node, ast.For):
            iterables = [node.iter]
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iterables = [gen.iter for gen in node.generators]
        else:
            continue
        for iterable in iterables:
            name = _row_collection(iterable)
            if name is not None:
                yield context.finding(
                    "REP012",
                    f"per-row Python loop over {name!r} in a kernel module "
                    "— batch it through the vectorized path (np.unique / "
                    "ndarray ops, see repro.kernels) or suppress with the "
                    "scalar-reference justification",
                    node,
                )
                break


# -- REP013: telemetry emission inside observatory hot paths -------------------

#: Modules of :mod:`repro.telemetry.obs` whose inner loops run per
#: sample or per emitted event — the observatory's own hot paths.  The
#: rule is scoped to exactly these: elsewhere in the tree a span or an
#: event is ordinary instrumentation; here it feeds back into the very
#: stream being observed (event → listener → event …) or allocates per
#: sample at the sampling rate.
OBS_HOT_MODULES = {
    "repro.telemetry.obs.profiler",
    "repro.telemetry.obs.recorder",
}

#: Telemetry write calls that are banned in hot contexts: spans and
#: events allocate and (for events) fan out to sinks/listeners; sink
#: ``offer`` bypasses the ring entirely.  Metric observations on
#: pre-resolved instruments (``inc``/``set``/``observe``) stay legal —
#: they are fixed-size, which is the whole point.
_OBS_EMISSION_ATTRS = {"emit", "span", "offer"}

#: Function names that run once per sample or once per emitted event.
#: ``sample_once``/``_run`` are the profiler's sampling loop;
#: ``_on_*`` are inline event-log listeners (they execute inside every
#: ``emit()`` call in the process).
_OBS_HOT_FUNCTIONS = {"sample_once", "_run"}


def _is_obs_hot_function(name):
    """Whether a function name marks an observatory hot path."""
    return name in _OBS_HOT_FUNCTIONS or name.startswith("_on_")


def _emission_calls(body_nodes):
    """Yield ``.emit``/``.span``/``.offer`` call nodes in ``body_nodes``."""
    for body_node in body_nodes:
        for node in ast.walk(body_node):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _OBS_EMISSION_ATTRS):
                yield node


@rule("REP013", "span/event emission inside an observatory hot path")
def check_obs_hot_path_emission(context):
    """Flag direct telemetry emission in ``repro.telemetry.obs`` loops.

    Two hot contexts: functions that run per sample / per event
    (:data:`_OBS_HOT_FUNCTIONS` and ``_on_*`` listeners), and ``while``
    loops anywhere in the hot modules (sampling/drain loops).  Emitting
    there either recurses into the event log mid-emit or allocates at
    the sampling rate — route the data through the bounded aggregation
    table / bundle ring instead, and emit from the triggered (rate-
    limited) paths only.
    """
    if context.module not in OBS_HOT_MODULES:
        return
    seen = set()
    for node in ast.walk(context.tree):
        if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and _is_obs_hot_function(node.name)):
            for call in _emission_calls(node.body):
                if id(call) not in seen:
                    seen.add(id(call))
                    yield context.finding(
                        "REP013",
                        f"direct .{call.func.attr}() inside hot function "
                        f"{node.name!r} of an observatory module — "
                        "aggregate into the bounded sampling table or "
                        "bundle ring and emit from a rate-limited "
                        "trigger path instead",
                        call,
                    )
        elif isinstance(node, ast.While):
            for call in _emission_calls(node.body):
                if id(call) not in seen:
                    seen.add(id(call))
                    yield context.finding(
                        "REP013",
                        f"direct .{call.func.attr}() inside a while-loop "
                        "of an observatory module — per-iteration "
                        "emission is unbounded; fold into the bounded "
                        "aggregation state instead",
                        call,
                    )


# -- REP009: undocumented public persistence API -------------------------------

def _is_public_name(name):
    """Public = not underscore-prefixed (dunders are implementation)."""
    return not name.startswith("_")


def _has_docstring(node):
    """Whether a module/class/function node opens with a docstring."""
    return ast.get_docstring(node, clean=False) is not None


@rule("REP009", "public persistence API missing its durability docstring")
def check_persistence_docstrings(context):
    """Flag undocumented public names in the ``repro.persistence`` layer.

    The durability layer is pure contract: callers decide what is safe
    to release based on what each method *guarantees has already hit
    the medium*, and recovery decides what to trust based on what each
    loader promises about corruption.  A public module, class, or
    function there without a docstring leaves that guarantee to
    guesswork, so its absence is a finding — on the module itself, on
    every public class, and on every public function or method
    (underscore-prefixed helpers are exempt; document the callers
    instead).
    """
    if not context.in_repro:
        return
    if _layer_of(context.module) != "persistence":
        return
    if not _has_docstring(context.tree):
        yield context.finding(
            "REP009",
            "persistence module lacks a docstring — state the module's "
            "durability contract (what survives a crash, and when)",
            context.tree,
        )
    for node in ast.walk(context.tree):
        if isinstance(node, ast.ClassDef):
            if _is_public_name(node.name) and not _has_docstring(node):
                yield context.finding(
                    "REP009",
                    f"public persistence class {node.name!r} lacks a "
                    "docstring — document its durability contract",
                    node,
                )
            continue
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _is_public_name(node.name) or _has_docstring(node):
            continue
        yield context.finding(
            "REP009",
            f"public persistence function {node.name!r} lacks a "
            "docstring — state what is durable when it returns",
            node,
        )
