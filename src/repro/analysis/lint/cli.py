"""``python -m repro.analysis.lint`` — the repro-lint command line.

Exit status 0 when no unsuppressed finding remains, 1 otherwise (the CI
gate), 2 for usage errors.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.lint.core import all_rules, lint_paths
from repro.analysis.lint.reporters import RENDERERS


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="repro-lint: repo-specific invariant checks (REP001-8)",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=sorted(RENDERERS),
                        default="text", help="output format")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for lint_rule in all_rules():
            # repro-lint: disable=REP008 -- CLI entry point: human output
            # on stdout *is* the command's contract.
            print(f"{lint_rule.code}  {lint_rule.summary}")
        return 0
    select = None
    if args.select:
        select = {code.strip() for code in args.select.split(",")
                  if code.strip()}
        known = {lint_rule.code for lint_rule in all_rules()}
        unknown = select - known
        if unknown:
            print(  # repro-lint: disable=REP008 -- CLI usage error
                f"unknown rule code(s): {sorted(unknown)}",
                file=sys.stderr,  # repro-lint: disable=REP008 -- CLI stderr
            )
            return 2
    findings, files_checked, suppressed = lint_paths(args.paths,
                                                     select=select)
    # repro-lint: disable=REP008 -- CLI entry point: the rendered report
    # on stdout *is* the command's contract.
    print(RENDERERS[args.format](findings, files_checked, suppressed))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
