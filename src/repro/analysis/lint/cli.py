"""``python -m repro.analysis.lint`` — the repro-lint command line.

Exit status contract (the CI gate keys off it):

* ``0`` — every file parsed and no unsuppressed finding remains;
* ``1`` — the linter ran to completion and found violations;
* ``2`` — the linter itself could not do its job: usage errors, or one
  or more files failed to read/parse.  A syntax error yields *no*
  findings, so conflating it with status 1 would let broken input
  masquerade as a clean-or-dirty verdict.

Unknown rule codes inside suppression comments are findings (REP000),
not errors: the file parsed fine, the directive is just inert.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.lint.core import (
    WHOLE_PROGRAM_CODES,
    all_rules,
    known_codes,
    lint_paths_detailed,
)
from repro.analysis.lint.reporters import RENDERERS


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="repro-lint: repo-specific invariant checks "
                    "(REP001-9, REP012-13; "
                    "REP010/REP011 are whole-program — see "
                    "python -m repro.analysis.flow)",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=sorted(RENDERERS),
                        default="text", help="output format")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for lint_rule in all_rules():
            # repro-lint: disable=REP008 -- CLI entry point: human output
            # on stdout *is* the command's contract.
            print(f"{lint_rule.code}  {lint_rule.summary}")
        for code, summary in sorted(WHOLE_PROGRAM_CODES.items()):
            # repro-lint: disable=REP008 -- CLI entry point (as above)
            print(f"{code}  {summary} [whole-program: "
                  "python -m repro.analysis.flow]")
        return 0
    select = None
    if args.select:
        select = {code.strip() for code in args.select.split(",")
                  if code.strip()}
        unknown = select - known_codes()
        if unknown:
            print(  # repro-lint: disable=REP008 -- CLI usage error
                f"unknown rule code(s): {sorted(unknown)}",
                file=sys.stderr,  # repro-lint: disable=REP008 -- CLI stderr
            )
            return 2
    findings, files_checked, suppressed, errors = lint_paths_detailed(
        args.paths, select=select
    )
    # repro-lint: disable=REP008 -- CLI entry point: the rendered report
    # on stdout *is* the command's contract.
    print(RENDERERS[args.format](findings, files_checked, suppressed))
    if errors:
        for error in errors:
            print(  # repro-lint: disable=REP008 -- CLI stderr diagnostics
                f"error: {error}",
                file=sys.stderr,  # repro-lint: disable=REP008 -- CLI stderr
            )
        return 2
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
