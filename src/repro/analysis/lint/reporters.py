"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json


def render_text(findings, files_checked, suppressed):
    """Classic ``path:line:col: CODE message`` lines plus a summary."""
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.code} {f.message}"
        for f in findings
    ]
    summary = (
        f"{len(findings)} finding(s) in {files_checked} file(s)"
        + (f", {suppressed} suppressed" if suppressed else "")
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(findings, files_checked, suppressed):
    """JSON document: findings list plus summary counts (CI-friendly)."""
    return json.dumps(
        {
            "findings": [f.to_dict() for f in findings],
            "summary": {
                "findings": len(findings),
                "files_checked": files_checked,
                "suppressed": suppressed,
            },
        },
        indent=2,
        sort_keys=True,
    )


RENDERERS = {"text": render_text, "json": render_json}
