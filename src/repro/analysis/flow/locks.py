"""Whole-program lockset analysis (REP011) and the shared-state map.

The per-file REP001 rule sees one method at a time: it cannot tell that a
private helper is only ever invoked with the owner's lock already held,
and it cannot see that two methods guard the *same* attribute with
*different* locks.  This pass generalizes it over the whole program:

1. **Lock discovery.**  A class that assigns ``threading.Lock()`` (or
   RLock/Condition/Semaphore) to an attribute is a *lock-owning* class —
   the author's own declaration that its instances are shared across
   threads.

2. **Per-method lockset simulation.**  Every method body is walked with
   the set of class locks currently held (``with self._lock:`` blocks,
   paired ``acquire()``/``release()`` calls).  Each mutation of a
   ``self.<attr>`` (assignment, augmented assignment, ``self.attr[k] =``
   stores, mutator-method calls like ``append``/``popitem``, and
   mutations of nested state such as ``self.stats.hits += 1``) is
   recorded with the lockset in force, as is every intra-class call with
   the lockset at the call site.

3. **Caller-held-lock credit (fixpoint).**  A private method's *entry
   lockset* is the intersection, over every recorded in-class call, of
   the caller's entry lockset union the lockset at the call site — a
   must-analysis: a lock is credited only when **every** path in holds
   it.  Public methods (and private methods with no recorded callers)
   enter with the empty lockset, since anyone may call them.  The
   effective guard of a mutation is the site lockset union the entry
   lockset, which is what lets ``LRUCache.put``'s eviction loop call a
   helper that mutates ``self._entries`` without a false positive.

4. **Thread contexts.**  ``threading.Thread(target=...)`` constructions
   and ``pool.submit(fn, ...)`` calls name the program's worker entry
   points; a breadth-first walk over the resolved call graph marks every
   function reachable from each.  The shared-state map labels each
   mutation site with the contexts that can execute it (``main`` plus
   any worker entries), which is exactly the evidence the sharding work
   needs to decide what state can stay shard-local.

Findings are REP011 — a mutation whose effective lockset contains no
lock of the owning class, or an attribute guarded by one lock here and a
different lock there.  ``__init__`` is exempt (construction
happens-before sharing).  :meth:`LockAnalysis.shared_state_map` renders
the full inventory — every lock-guarded mutable, its guarding lock, its
mutation sites, its thread contexts — as the JSON artifact
``shared_state_map.json`` the sharded-mediator PR consumes as its
partitioning spec.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.flow.loader import load_program
from repro.analysis.lint.core import Finding

#: Mutator method names that change their receiver in place (shared with
#: the per-file REP001 rule's vocabulary, extended with deque's ends).
_MUTATORS = {"append", "extend", "add", "update", "pop", "popitem",
             "remove", "discard", "clear", "insert", "appendleft",
             "popleft", "setdefault", "move_to_end", "put", "put_nowait"}

_EMPTY = frozenset()


class MutationSite:
    """One write to shared instance state, with the locks held there."""

    __slots__ = ("class_qname", "attr", "method_qname", "line", "col",
                 "locks_held", "effective", "kind")

    def __init__(self, class_qname, attr, method_qname, line, col,
                 locks_held, kind):
        self.class_qname = class_qname
        self.attr = attr
        self.method_qname = method_qname
        self.line = line
        self.col = col
        self.locks_held = locks_held    # locks held syntactically at site
        self.effective = locks_held     # + caller-held credit (fixpoint)
        self.kind = kind                # "assign" | "augassign" | "mutator"

    def __repr__(self):
        held = ",".join(sorted(self.effective)) or "-"
        return (f"MutationSite({self.class_qname}.{self.attr} "
                f"@{self.method_qname}:{self.line} [{held}])")


class LockAnalysis:
    """The lockset pass result: findings plus the shared-state inventory."""

    def __init__(self, program):
        self.program = program
        #: class qname → list of MutationSite
        self.sites = {}
        #: class qname → sorted list of lock attribute names
        self.class_locks = {}
        #: worker label → entry function qname
        self.worker_entries = {}
        #: worker label → set of reachable function qnames
        self.worker_reachable = {}
        self.findings = []

    # -- the map (the sharding PR's partitioning spec) ---------------------

    def shared_state_map(self):
        """The full shared-state inventory as a JSON-serializable dict."""
        classes = {}
        for class_qname in sorted(self.sites):
            sites = self.sites[class_qname]
            class_info = self.program.classes[class_qname]
            locks = sorted(self.class_locks.get(class_qname, ()))
            attributes = {}
            for attr in sorted({site.attr for site in sites}):
                attr_sites = [s for s in sites if s.attr == attr]
                attributes[attr] = self._attribute_entry(
                    class_qname, locks, attr_sites
                )
            classes[class_qname] = {
                "module": class_info.module.name,
                "path": _portable_path(class_info.module.path),
                "locks": locks,
                "attributes": attributes,
            }
        return {
            "schema_version": 1,
            "generated_by": "python -m repro.analysis.flow --map",
            "worker_entries": {
                label: qname
                for label, qname in sorted(self.worker_entries.items())
            },
            "classes": classes,
        }

    def _attribute_entry(self, class_qname, locks, attr_sites):
        non_init = [s for s in attr_sites if not _is_init(s.method_qname)]
        guards = [frozenset(s.effective) & frozenset(locks)
                  for s in non_init]
        common = None
        for guard in guards:
            common = guard if common is None else (common & guard)
        common = common or _EMPTY
        guarding_lock = sorted(common)[0] if common else None
        return {
            "guarding_lock": guarding_lock,
            "consistent": bool(common) or not non_init,
            "mutation_sites": [
                {
                    "method": s.method_qname,
                    "line": s.line,
                    "kind": s.kind,
                    "locks_held": sorted(s.effective),
                    "thread_contexts": self._contexts(s.method_qname),
                }
                for s in sorted(attr_sites,
                                key=lambda s: (s.method_qname, s.line))
            ],
        }

    def _contexts(self, method_qname):
        """Thread contexts that can execute ``method_qname``."""
        workers = sorted(
            label for label, reachable in self.worker_reachable.items()
            if method_qname in reachable
        )
        entry_qnames = set(self.worker_entries.values())
        if method_qname in entry_qnames and workers:
            return workers  # a worker body never runs on the caller thread
        return ["main"] + workers


def analyze_locks(paths_or_program):
    """Run the whole-program lockset analysis; returns :class:`LockAnalysis`.

    ``paths_or_program`` is a path list (loaded fresh) or an
    already-loaded :class:`~repro.analysis.flow.loader.Program` (shared
    with the taint pass to parse the tree once).
    """
    program = (
        paths_or_program
        if hasattr(paths_or_program, "modules")
        else load_program(paths_or_program)
    )
    analysis = LockAnalysis(program)

    # Pass 1: per-method lockset simulation over lock-owning classes.
    internal_calls = {}   # callee qname → [(caller qname, site lockset)]
    for class_info in program.classes.values():
        if not class_info.lock_attrs:
            continue
        analysis.class_locks[class_info.qname] = set(class_info.lock_attrs)
        sites = analysis.sites.setdefault(class_info.qname, [])
        for method in class_info.methods.values():
            scan = _MethodScan(class_info, method)
            scan.walk(method.node.body, _EMPTY)
            sites.extend(scan.sites)
            for callee, lockset in scan.internal_calls:
                internal_calls.setdefault(callee, []).append(
                    (method.qname, lockset)
                )

    # Pass 2: caller-held-lock credit to fixpoint (a must-analysis).
    entry = _entry_locksets(program, analysis, internal_calls)
    for sites in analysis.sites.values():
        for site in sites:
            site.effective = frozenset(
                site.locks_held | entry.get(site.method_qname, _EMPTY)
            )

    # Pass 3: thread entry points and reachability.
    analysis.worker_entries = _find_worker_entries(program)
    graph = _call_graph(program)
    for label, qname in analysis.worker_entries.items():
        analysis.worker_reachable[label] = _reachable(graph, qname)

    # Pass 4: findings.
    _collect_findings(analysis)
    return analysis


def _is_init(method_qname):
    return method_qname.rsplit(".", 1)[-1] == "__init__"


def _portable_path(path):
    """Relative to the working directory when possible.

    The map is a committed artifact; absolute paths would make it
    differ per checkout.
    """
    try:
        return str(Path(path).resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)


# -- pass 1: per-method simulation ---------------------------------------


class _MethodScan:
    """Walks one method body tracking the lockset currently held."""

    def __init__(self, class_info, method):
        self.class_info = class_info
        self.method = method
        self.locks = class_info.lock_attrs
        self.sites = []
        self.internal_calls = []  # (callee qname, lockset at call site)

    def walk(self, body, lockset):
        """Walk a statement list, threading acquire()/release() state."""
        held = set(lockset)
        for stmt in body:
            held |= self._acquired_locks(stmt)
            released = self._released_locks(stmt)
            self._statement(stmt, frozenset(held))
            held -= released

    def _statement(self, node, lockset):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return  # nested defs run later; their lock state is unknown
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self._expression(item.context_expr, lockset)
            inner = lockset | self._with_locks(node)
            self.walk(node.body, inner)
            return
        if isinstance(node, ast.Try):
            self.walk(node.body, lockset)
            for handler in node.handlers:
                self.walk(handler.body, lockset)
            self.walk(node.orelse, lockset)
            self.walk(node.finalbody, lockset)
            return
        if isinstance(node, (ast.If, ast.For, ast.AsyncFor, ast.While)):
            for field in ("test", "iter"):
                child = getattr(node, field, None)
                if child is not None:
                    self._expression(child, lockset)
            target = getattr(node, "target", None)
            if target is not None:
                self._record_target(target, lockset, node)
            self.walk(node.body, lockset)
            self.walk(node.orelse, lockset)
            return
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            kind = ("augassign" if isinstance(node, ast.AugAssign)
                    else "assign")
            for target in targets:
                self._record_target(target, lockset, node, kind)
            if node.value is not None:
                self._expression(node.value, lockset)
            return
        # remaining statements: scan embedded expressions for mutator
        # calls and internal call edges
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expression(child, lockset)
            elif isinstance(child, ast.stmt):
                self._statement(child, lockset)

    def _expression(self, node, lockset):
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            attr_chain = _self_attr_chain(func.value)
            if attr_chain:
                if func.attr in _MUTATORS:
                    self._record(attr_chain[0], lockset, call, "mutator")
                else:
                    # a call on self/self.attr: record the intra-class edge
                    self._record_internal_call(func, lockset)
            elif isinstance(func.value, ast.Name) \
                    and func.value.id == "self":
                self._record_internal_call(func, lockset)

    def _record_internal_call(self, func, lockset):
        if not (isinstance(func.value, ast.Name)
                and func.value.id == "self"):
            return
        callee = self.class_info.methods.get(func.attr)
        if callee is not None:
            self.internal_calls.append((callee.qname, lockset))

    def _record_target(self, target, lockset, node, kind="assign"):
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target(element, lockset, node, kind)
            return
        if isinstance(target, ast.Starred):
            self._record_target(target.value, lockset, node, kind)
            return
        chain = _self_attr_chain(target)
        if chain:
            if len(chain) > 1 \
                    and chain[0] in self.class_info.sync_attrs:
                return  # store *through* a self-synchronized object
            self._record(chain[0], lockset, node, kind)

    def _record(self, attr, lockset, node, kind):
        if attr in self.locks:
            return  # assigning/acquiring the lock itself is not shared data
        if kind == "mutator" and attr in self.class_info.sync_attrs:
            # queue.Queue and friends lock internally; calling put() on
            # one needs no class-owned lock.  Rebinding the *slot*
            # (kind "assign") is still a shared mutation and still flags.
            return
        self.sites.append(MutationSite(
            self.class_info.qname, attr, self.method.qname,
            getattr(node, "lineno", 1), getattr(node, "col_offset", 0),
            frozenset(lockset), kind,
        ))

    # -- lock recognition --------------------------------------------------

    def _with_locks(self, node):
        held = set()
        for item in node.items:
            expr = item.context_expr
            attr = _self_attr(expr)
            if attr in self.locks:
                held.add(attr)
            elif (isinstance(expr, ast.Call)
                    and isinstance(expr.func, ast.Attribute)
                    and _self_attr(expr.func.value) in self.locks):
                held.add(_self_attr(expr.func.value))
        return held

    def _acquired_locks(self, stmt):
        return self._lock_calls(stmt, "acquire")

    def _released_locks(self, stmt):
        return self._lock_calls(stmt, "release")

    def _lock_calls(self, stmt, verb):
        if not isinstance(stmt, ast.Expr):
            return set()
        call = stmt.value
        if not (isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == verb):
            return set()
        attr = _self_attr(call.func.value)
        return {attr} if attr in self.locks else set()


def _self_attr(node):
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _self_attr_chain(node):
    """``["stats", "hits"]`` for ``self.stats.hits``; None otherwise.

    Subscripts along the way (``self._entries[key]``) keep the chain —
    the *base* attribute is the shared object being mutated.
    """
    parts = []
    while True:
        if isinstance(node, ast.Subscript):
            node = node.value
            continue
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
            continue
        break
    if isinstance(node, ast.Name) and node.id == "self" and parts:
        return list(reversed(parts))
    return None


# -- pass 2: caller-held-lock credit --------------------------------------


def _entry_locksets(program, analysis, internal_calls):
    """Per-method entry locksets: what every caller must already hold.

    Public methods (and private ones with no recorded in-class callers)
    enter with nothing held.  A private method's entry set is the
    intersection over all recorded call sites of the caller's entry set
    union the site lockset — iterated to a fixpoint because helpers call
    helpers.  Intersections only shrink in a finite lattice, so this
    terminates.
    """
    entry = {}
    methods = [
        method
        for class_qname in analysis.class_locks
        for method in program.classes[class_qname].methods.values()
    ]
    all_locks = {
        method.qname: frozenset(
            analysis.class_locks[method.class_info.qname]
        )
        for method in methods
    }
    for method in methods:
        private = method.name.startswith("_") \
            and not method.name.startswith("__")
        has_callers = method.qname in internal_calls
        entry[method.qname] = (
            all_locks[method.qname] if (private and has_callers) else _EMPTY
        )
    for _ in range(len(methods) + 1):
        changed = False
        for method in methods:
            qname = method.qname
            calls = internal_calls.get(qname)
            if not calls or entry[qname] == _EMPTY:
                continue
            incoming = None
            for caller, lockset in calls:
                held = frozenset(entry.get(caller, _EMPTY) | lockset)
                incoming = held if incoming is None else (incoming & held)
            incoming = incoming if incoming is not None else _EMPTY
            if incoming != entry[qname]:
                entry[qname] = incoming
                changed = True
        if not changed:
            break
    return entry


# -- pass 3: thread entry points and reachability -------------------------


def _find_worker_entries(program):
    """``{label: entry qname}`` for every thread/pool hand-off in the tree."""
    entries = {}
    for function in program.functions.values():
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Call):
                continue
            target, label = _thread_target(node), None
            if target is None and _is_submit(node) and node.args:
                target = node.args[0]
            if target is None:
                continue
            qname = _resolve_callable(program, function, target)
            if qname is None:
                continue
            label = _thread_name(node) or qname.rsplit(".", 2)[-2] \
                + "." + qname.rsplit(".", 1)[-1]
            entries[label] = qname
    return entries


def _thread_target(call):
    """The ``target=`` expression of a ``Thread(...)`` construction."""
    func = call.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None
    )
    if name != "Thread":
        return None
    for keyword in call.keywords:
        if keyword.arg == "target":
            return keyword.value
    return None


def _is_submit(call):
    return (isinstance(call.func, ast.Attribute)
            and call.func.attr == "submit")


def _thread_name(call):
    for keyword in call.keywords:
        if keyword.arg == "name" and isinstance(keyword.value,
                                                ast.Constant):
            value = keyword.value.value
            if isinstance(value, str):
                return value
    return None


def _resolve_callable(program, function, expr):
    """Resolve a callable expression to an in-tree function qname."""
    if isinstance(expr, ast.Attribute) \
            and isinstance(expr.value, ast.Name) \
            and expr.value.id == "self" \
            and function.class_info is not None:
        method = program.method_of(function.class_info, expr.attr)
        return method.qname if method is not None else None
    if isinstance(expr, ast.Name):
        module = function.module
        dotted = module.imports.get(expr.id)
        if dotted in program.functions:
            return dotted
        local = f"{module.name}.{expr.id}"
        if local in program.functions:
            return local
    return None


def _call_graph(program):
    """Resolved call edges: function qname → set of callee qnames."""
    graph = {}
    for function in program.functions.values():
        callees = graph.setdefault(function.qname, set())
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                qname = _resolve_callable(program, function, func)
                if qname is not None:
                    callees.add(qname)
                continue
            if not isinstance(func, ast.Attribute):
                continue
            qname = _resolve_callable(program, function, func)
            if qname is not None:
                callees.add(qname)
                continue
            # attribute call on a typed receiver: self.attr.m(...)
            for class_info in _receiver_classes(program, function,
                                                func.value):
                method = program.method_of(class_info, func.attr)
                if method is not None:
                    callees.add(method.qname)
    return graph


def _receiver_classes(program, function, expr):
    if isinstance(expr, ast.Attribute) \
            and isinstance(expr.value, ast.Name) \
            and expr.value.id == "self" \
            and function.class_info is not None:
        found = []
        for qname in function.class_info.attr_types.get(expr.attr, ()):
            class_info = program.classes.get(qname)
            if class_info is not None:
                found.append(class_info)
        return found
    return []


def _reachable(graph, start):
    seen = {start}
    frontier = [start]
    while frontier:
        current = frontier.pop()
        for callee in graph.get(current, ()):
            if callee not in seen:
                seen.add(callee)
                frontier.append(callee)
    return seen


# -- pass 4: findings -----------------------------------------------------


def _collect_findings(analysis):
    program = analysis.program
    for class_qname in sorted(analysis.sites):
        locks = frozenset(analysis.class_locks[class_qname])
        class_info = program.classes[class_qname]
        by_attr = {}
        for site in analysis.sites[class_qname]:
            if _is_init(site.method_qname):
                continue  # construction happens-before sharing
            by_attr.setdefault(site.attr, []).append(site)
        for attr in sorted(by_attr):
            sites = by_attr[attr]
            guards = {site: frozenset(site.effective) & locks
                      for site in sites}
            guarded = [g for g in guards.values() if g]
            common = None
            for guard in guarded:
                common = guard if common is None else (common & guard)
            for site in sites:
                guard = guards[site]
                if not guard:
                    lock_name = sorted(locks)[0]
                    analysis.findings.append(Finding(
                        "REP011",
                        f"{class_qname.rsplit('.', 1)[-1]}."
                        f"{site.method_qname.rsplit('.', 1)[-1]} mutates "
                        f"self.{attr} with no lock held (class owns "
                        f"{sorted(locks)}) — guard with `with "
                        f"self.{lock_name}:` or suppress with a written "
                        "justification",
                        class_info.module.path, site.line, site.col,
                    ))
                elif common is not None and not common and guarded:
                    analysis.findings.append(Finding(
                        "REP011",
                        f"self.{attr} is guarded by "
                        f"{sorted(guard)} here but by a different lock "
                        f"elsewhere in {class_qname} — pick one lock per "
                        "attribute",
                        class_info.module.path, site.line, site.col,
                    ))
    analysis.findings.sort(
        key=lambda f: (str(f.path), f.line, f.col, f.message)
    )
