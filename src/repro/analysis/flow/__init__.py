"""Whole-program information-flow and shared-state analysis.

Everything in :mod:`repro.analysis.lint` is *per-file*: a rule sees one
AST and must answer from it alone.  That is the wrong granularity for
the two questions this package answers:

* **REP010 — does any confidential value reach a side channel?**  The
  paper's disclosure guarantee covers the mediated ``pose()`` path only;
  the structured event log, metric labels, audit journal, JSONL sink,
  exporters, persistence WAL, and exception messages are *side
  channels* that nothing in the runtime accounts for.  One careless
  ``emit(..., value=row[col])`` outflanks every defense the validation
  suite measures.  Proving its absence requires following values across
  function and module boundaries — an interprocedural taint analysis
  (:mod:`~repro.analysis.flow.engine`) over a declared catalog of
  sources, sanitizers, and sinks
  (:mod:`~repro.analysis.flow.catalog`).

* **REP011 — is every shared mutable guarded by a consistent lock?**
  The per-file REP001 rule checks one method at a time and cannot see
  that a private helper is only ever called with the lock already held,
  or that two methods guard the same attribute with *different* locks.
  The lockset pass (:mod:`~repro.analysis.flow.locks`) resolves both
  whole-program and emits ``shared_state_map.json`` — the verified
  inventory of lock-guarded mutables the sharded-service work consumes
  as its partitioning spec.

Findings carry the established ``repro-lint`` codes and honor the same
per-line suppression-with-justification comments.  Run it as::

    python -m repro.analysis.flow src/repro --map shared_state_map.json
"""

from __future__ import annotations

from repro.analysis.flow.catalog import Catalog, DEFAULT_CATALOG
from repro.analysis.flow.driver import FlowReport, run_analysis
from repro.analysis.flow.engine import FlowAnalysis, analyze_flows
from repro.analysis.flow.loader import Program, load_program
from repro.analysis.flow.locks import LockAnalysis, analyze_locks

__all__ = [
    "Catalog",
    "DEFAULT_CATALOG",
    "FlowAnalysis",
    "FlowReport",
    "LockAnalysis",
    "Program",
    "analyze_flows",
    "analyze_locks",
    "load_program",
    "run_analysis",
]
