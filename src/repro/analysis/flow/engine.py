"""The interprocedural, flow-sensitive taint engine (REP010).

The analysis runs in three phases over the :class:`~repro.analysis.flow.
loader.Program`:

**Phase A — symbolic summaries (fixpoint).**  Every function is
interpreted abstractly, statement by statement, with a taint environment
mapping local names to *tag sets*.  Tags are symbolic: ``src:<label>``
(the value derives from a cataloged confidential source), ``param:<i>``
(it derives from the function's i-th parameter), or ``attr:<Class.attr>``
(it derives from an instance attribute).  Calls substitute the callee's
current return summary — ``param:i`` tags become the taint of the actual
argument at this call site, which is what makes the analysis
context-sensitive for returns.  Unknown callees conservatively propagate
the union of their argument taints; cataloged sanitizers return clean;
cataloged sources return ``src:`` tags.  The pass records, per function,
its return summary, every attribute store, every resolved call edge with
per-argument tags, and every sink reached with per-argument tags.
Summaries grow monotonically in a finite lattice, so iterating to a
fixpoint terminates.

**Phase B — concrete hotness (fixpoint).**  A tag set is *hot* in the
context of function ``f`` when it contains a ``src:`` tag, a ``param:i``
tag with ``f``'s parameter ``i`` known to receive confidential data from
some call site, or an ``attr:`` tag whose attribute some method stores
confidential data into.  Starting from sources, hotness propagates
along the recorded call edges and attribute stores until stable — the
interprocedural step that lets taint entering ``SnooperWatch.note_cell``
surface at a sink three classes away.

**Phase C — findings.**  Every recorded sink whose argument tags
concretize hot yields a REP010 finding at the sink's source line,
naming the sink kind and the confidential origin.  ``raise`` statements
are structural sinks: an exception message built from a hot value is a
disclosure, because refusal messages travel back to the requester and
into the event log.

The engine is deliberately *whole-program but modest*: no aliasing, no
container element sensitivity (a tainted element taints the container),
objects constructed from tainted arguments are tainted wholesale (so an
attribute read off one is tainted).  Those over-approximations cost a
handful of justified suppressions in the tree and buy the property the
differential test pins: no false negatives on live paths.
"""

from __future__ import annotations

import ast

from repro.analysis.flow.catalog import DEFAULT_CATALOG
from repro.analysis.flow.loader import load_program
from repro.analysis.lint.core import Finding

EMPTY = frozenset()

#: Builtins that transform but do not launder their arguments.
_PROPAGATING_BUILTINS = {
    "str", "repr", "format", "float", "int", "bool", "list", "tuple",
    "dict", "set", "frozenset", "sorted", "reversed", "min", "max", "abs",
    "round", "zip", "enumerate", "next", "iter", "map", "filter", "vars",
    "getattr", "print",
}

#: Builtins whose result reveals only size/shape — aggregation per the
#: catalog (len/sum are also declared there; this set is the fallback
#: when the catalog is customized).
_CLEANING_BUILTINS = {"len", "id", "hash", "isinstance", "issubclass",
                      "callable", "type", "range"}


def _tag_src(label):
    return f"src:{label}"


def _tag_param(index):
    return f"param:{index}"


def _tag_attr(class_qname, attr):
    return f"attr:{class_qname}.{attr}"


class CallRecord:
    """One resolved call edge: which tags flow into which callee params."""

    __slots__ = ("callee", "arg_tags")

    def __init__(self, callee, arg_tags):
        self.callee = callee        # qname
        self.arg_tags = arg_tags    # param index → frozenset of tags


class StoreRecord:
    """One ``self.<attr> = value`` (or mutation) with the value's tags."""

    __slots__ = ("class_qname", "attr", "tags")

    def __init__(self, class_qname, attr, tags):
        self.class_qname = class_qname
        self.attr = attr
        self.tags = tags


class SinkRecord:
    """One call (or raise) into a cataloged sink, with argument tags."""

    __slots__ = ("kind", "description", "node", "arg_tags", "arg_names",
                 "event_name", "callee")

    def __init__(self, kind, description, node, arg_tags, arg_names,
                 event_name=None, callee=None):
        self.kind = kind
        self.description = description
        self.node = node
        self.arg_tags = arg_tags    # list of frozensets, call order
        self.arg_names = arg_names  # printable arg descriptions
        self.event_name = event_name  # literal first arg, when a string
        self.callee = callee


class FunctionFacts:
    """Everything phase A learned about one function."""

    __slots__ = ("returns", "calls", "stores", "sinks", "_sink_nodes")

    def __init__(self):
        self.returns = EMPTY
        self.calls = []
        self.stores = []
        self.sinks = []
        self._sink_nodes = {}  # id(ast node) → index into sinks

    def record_sink(self, record):
        """Add or replace the sink record for one call site.

        Loop bodies are interpreted twice (to pick up loop-carried
        taint), so the same AST call node can be visited again with
        richer tags — the later visit *replaces* the earlier record
        rather than duplicating the site.
        """
        index = self._sink_nodes.get(id(record.node))
        if index is None:
            self._sink_nodes[id(record.node)] = len(self.sinks)
            self.sinks.append(record)
        else:
            self.sinks[index] = record


class FlowAnalysis:
    """The analysis result: findings plus the static sink inventory."""

    def __init__(self, program, catalog):
        self.program = program
        self.catalog = catalog
        self.facts = {}        # qname → FunctionFacts
        self.hot_params = {}   # qname → {param index → set of labels}
        self.hot_attrs = {}    # "Class.attr" tag suffix → set of labels
        self.findings = []
        self.iterations = 0

    # -- inventory (consumed by the differential test and the docs) --------

    def sink_inventory(self):
        """Every statically known sink site, as comparable dicts."""
        inventory = []
        for qname, facts in sorted(self.facts.items()):
            for sink in facts.sinks:
                inventory.append({
                    "function": qname,
                    "kind": sink.kind,
                    "line": sink.node.lineno,
                    "event_name": sink.event_name,
                })
        return inventory

    def event_names(self):
        """Every event name emitted through a *literal* first argument."""
        return sorted({
            sink.event_name
            for facts in self.facts.values()
            for sink in facts.sinks
            if sink.kind == "event" and sink.event_name
        })


def analyze_flows(paths_or_program, catalog=DEFAULT_CATALOG,
                  max_iterations=12):
    """Run the whole-program taint analysis; returns :class:`FlowAnalysis`.

    ``paths_or_program`` is a path list (loaded fresh) or an
    already-loaded :class:`~repro.analysis.flow.loader.Program` (shared
    with the lockset pass to parse the tree once).
    """
    program = (
        paths_or_program
        if hasattr(paths_or_program, "modules")
        else load_program(paths_or_program)
    )
    analysis = FlowAnalysis(program, catalog)

    # Phase A: symbolic summaries to fixpoint.
    returns = {qname: EMPTY for qname in program.functions}
    for iteration in range(max_iterations):
        changed = False
        for qname, function in program.functions.items():
            interp = _Interpreter(program, catalog, function, returns)
            facts = interp.run()
            analysis.facts[qname] = facts
            if facts.returns != returns[qname]:
                returns[qname] = facts.returns
                changed = True
        analysis.iterations = iteration + 1
        if not changed:
            break

    # Phase B: concrete hotness to fixpoint.
    hot_params = {qname: {} for qname in program.functions}
    hot_attrs = {}
    for _ in range(max_iterations):
        changed = False
        for qname, facts in analysis.facts.items():
            context = _HotContext(qname, hot_params, hot_attrs)
            for store in facts.stores:
                labels = context.concretize(store.tags)
                if labels:
                    key = f"{store.class_qname}.{store.attr}"
                    known = hot_attrs.setdefault(key, set())
                    if not labels <= known:
                        known |= labels
                        changed = True
            for call in facts.calls:
                callee_hot = hot_params.setdefault(call.callee, {})
                for index, tags in call.arg_tags.items():
                    labels = context.concretize(tags)
                    if labels:
                        known = callee_hot.setdefault(index, set())
                        if not labels <= known:
                            known |= labels
                            changed = True
        if not changed:
            break
    analysis.hot_params = hot_params
    analysis.hot_attrs = hot_attrs

    # Phase C: findings at hot sinks.
    for qname, facts in sorted(analysis.facts.items()):
        function = program.functions[qname]
        context = _HotContext(qname, hot_params, hot_attrs)
        for sink in facts.sinks:
            hot_args = []
            labels = set()
            for arg_name, tags in zip(sink.arg_names, sink.arg_tags):
                arg_labels = context.concretize(tags)
                if arg_labels:
                    hot_args.append(arg_name)
                    labels |= arg_labels
            if not hot_args:
                continue
            origin = "; ".join(sorted(labels))
            where = f" {sink.event_name!r}" if sink.event_name else ""
            analysis.findings.append(Finding(
                "REP010",
                f"confidential value ({origin}) reaches {sink.kind} "
                f"sink{where} via {', '.join(hot_args)} in {qname} — "
                "sanitize (repro.telemetry.redact digest/bucket, "
                "aggregation, generalization) or suppress with a written "
                "justification",
                function.module.path,
                sink.node.lineno,
                getattr(sink.node, "col_offset", 0),
            ))
    analysis.findings.sort(
        key=lambda f: (str(f.path), f.line, f.col, f.message)
    )
    return analysis


class _HotContext:
    """Concretizes symbolic tags inside one function's context."""

    __slots__ = ("qname", "hot_params", "hot_attrs")

    def __init__(self, qname, hot_params, hot_attrs):
        self.qname = qname
        self.hot_params = hot_params.get(qname, {})
        self.hot_attrs = hot_attrs

    def concretize(self, tags):
        """The set of confidential labels ``tags`` denotes here."""
        labels = set()
        for tag in tags:
            if tag.startswith("src:"):
                labels.add(tag[4:])
            elif tag.startswith("param:"):
                labels |= self.hot_params.get(int(tag[6:]), set())
            elif tag.startswith("attr:"):
                labels |= self.hot_attrs.get(tag[5:], set())
        return labels


class _Interpreter:
    """Abstractly interprets one function body, collecting facts."""

    def __init__(self, program, catalog, function, returns):
        self.program = program
        self.catalog = catalog
        self.function = function
        self.module = function.module
        self.returns = returns  # qname → current return summary
        self.facts = FunctionFacts()
        self.env = {}

    def run(self):
        for index, name in enumerate(self.function.params):
            self.env[name] = frozenset({_tag_param(index)})
        self._exec_body(self.function.node.body)
        return self.facts

    # -- statements ---------------------------------------------------------

    def _exec_body(self, body):
        for stmt in body:
            self._exec(stmt)

    def _exec(self, node):
        method = getattr(self, f"_exec_{type(node).__name__}", None)
        if method is not None:
            method(node)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested definitions analyzed via their own entries
        # default: evaluate embedded expressions for their side effects
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child)
            elif isinstance(child, ast.stmt):
                self._exec(child)

    def _exec_Expr(self, node):
        self._eval(node.value)

    def _exec_Assign(self, node):
        tags = self._eval(node.value)
        for target in node.targets:
            self._assign(target, tags)

    def _exec_AnnAssign(self, node):
        tags = self._eval(node.value) if node.value is not None else EMPTY
        self._assign(node.target, tags)

    def _exec_AugAssign(self, node):
        tags = self._eval(node.value) | self._eval_target_read(node.target)
        self._assign(node.target, tags)

    def _exec_Return(self, node):
        if node.value is not None:
            self.facts.returns = self.facts.returns | self._eval(node.value)

    def _exec_If(self, node):
        self._eval(node.test)
        before = dict(self.env)
        self._exec_body(node.body)
        branch_env = self.env
        self.env = before
        self._exec_body(node.orelse)
        self._join(branch_env)

    def _exec_For(self, node):
        iter_tags = self._eval(node.iter)
        self._assign(node.target, iter_tags)
        # two passes pick up loop-carried taint
        for _ in range(2):
            self._exec_body(node.body)
        self._exec_body(node.orelse)

    _exec_AsyncFor = _exec_For

    def _exec_While(self, node):
        self._eval(node.test)
        for _ in range(2):
            self._exec_body(node.body)
        self._exec_body(node.orelse)

    def _exec_With(self, node):
        for item in node.items:
            tags = self._eval(item.context_expr)
            if item.optional_vars is not None:
                self._assign(item.optional_vars, tags)
        self._exec_body(node.body)

    _exec_AsyncWith = _exec_With

    def _exec_Try(self, node):
        self._exec_body(node.body)
        for handler in node.handlers:
            if handler.name:
                self.env[handler.name] = EMPTY  # exception objects: opaque
            self._exec_body(handler.body)
        self._exec_body(node.orelse)
        self._exec_body(node.finalbody)

    _exec_TryStar = _exec_Try

    def _exec_Raise(self, node):
        if node.exc is None:
            return
        tags = self._eval(node.exc)
        if not isinstance(node.exc, ast.Call):
            return
        arg_tags, arg_names = [], []
        for arg in node.exc.args:
            arg_tags.append(self._eval(arg))
            arg_names.append(_describe(arg))
        for keyword in node.exc.keywords:
            arg_tags.append(self._eval(keyword.value))
            arg_names.append(keyword.arg or "**kwargs")
        if any(arg_tags):
            self.facts.record_sink(SinkRecord(
                self.catalog.exception_sink,
                "exception message construction",
                node, arg_tags, arg_names,
                callee=_describe(node.exc.func),
            ))
        del tags

    def _exec_Delete(self, node):
        pass

    def _exec_Global(self, node):
        pass

    _exec_Nonlocal = _exec_Global
    _exec_Pass = _exec_Global
    _exec_Break = _exec_Global
    _exec_Continue = _exec_Global
    _exec_Import = _exec_Global
    _exec_ImportFrom = _exec_Global

    def _exec_Assert(self, node):
        self._eval(node.test)
        if node.msg is not None:
            self._eval(node.msg)

    # -- assignment targets ---------------------------------------------------

    def _assign(self, target, tags):
        if isinstance(target, ast.Name):
            self.env[target.id] = tags
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, tags)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, tags)
        elif isinstance(target, ast.Attribute):
            self._store_attribute(target, tags)
        elif isinstance(target, ast.Subscript):
            # storing into a container taints the container
            self._taint_lvalue_base(target.value, tags)

    def _store_attribute(self, target, tags):
        base = target.value
        if isinstance(base, ast.Name) and base.id == "self" \
                and self.function.class_info is not None:
            if tags:
                self.facts.stores.append(StoreRecord(
                    self.function.class_info.qname, target.attr, tags
                ))
            self.env[f"self.{target.attr}"] = tags
        else:
            self._taint_lvalue_base(base, tags)

    def _taint_lvalue_base(self, base, tags):
        if not tags:
            return
        if isinstance(base, ast.Name):
            self.env[base.id] = self.env.get(base.id, EMPTY) | tags
        elif isinstance(base, ast.Attribute):
            self._store_attribute(
                base, self._eval(base) | tags
            ) if False else None
            # attribute container mutation: taint the attribute itself
            inner = base.value
            if isinstance(inner, ast.Name) and inner.id == "self" \
                    and self.function.class_info is not None:
                self.facts.stores.append(StoreRecord(
                    self.function.class_info.qname, base.attr, tags
                ))
            elif isinstance(inner, ast.Name):
                self.env[inner.id] = self.env.get(inner.id, EMPTY) | tags

    def _eval_target_read(self, target):
        if isinstance(target, (ast.Name, ast.Attribute, ast.Subscript)):
            return self._eval(target)
        return EMPTY

    def _join(self, other_env):
        for name, tags in other_env.items():
            self.env[name] = self.env.get(name, EMPTY) | tags

    # -- expressions ----------------------------------------------------------

    def _eval(self, node):
        if node is None:
            return EMPTY
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        # default: union over child expressions
        tags = EMPTY
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                tags |= self._eval(child)
            elif isinstance(child, (ast.comprehension,)):
                tags |= self._eval(child.iter)
        return tags

    def _eval_Constant(self, node):
        return EMPTY

    def _eval_Name(self, node):
        return self.env.get(node.id, EMPTY)

    def _eval_Attribute(self, node):
        base = node.value
        if isinstance(base, ast.Name) and base.id == "self":
            cached = self.env.get(f"self.{node.attr}")
            if cached is not None:
                return cached
            if self.function.class_info is not None:
                return frozenset({
                    _tag_attr(self.function.class_info.qname, node.attr)
                })
        return self._eval(base)

    def _eval_Subscript(self, node):
        return self._eval(node.value) | self._eval(node.slice)

    def _eval_BinOp(self, node):
        return self._eval(node.left) | self._eval(node.right)

    def _eval_BoolOp(self, node):
        tags = EMPTY
        for value in node.values:
            tags |= self._eval(value)
        return tags

    def _eval_UnaryOp(self, node):
        return self._eval(node.operand)

    def _eval_Compare(self, node):
        tags = self._eval(node.left)
        for comparator in node.comparators:
            tags |= self._eval(comparator)
        return tags

    def _eval_IfExp(self, node):
        self._eval(node.test)
        return self._eval(node.body) | self._eval(node.orelse)

    def _eval_JoinedStr(self, node):
        tags = EMPTY
        for value in node.values:
            tags |= self._eval(value)
        return tags

    def _eval_FormattedValue(self, node):
        return self._eval(node.value)

    def _eval_Lambda(self, node):
        return EMPTY  # a lambda value itself carries no data taint

    def _eval_Await(self, node):
        return self._eval(node.value)

    def _eval_Starred(self, node):
        return self._eval(node.value)

    def _eval_NamedExpr(self, node):
        tags = self._eval(node.value)
        self._assign(node.target, tags)
        return tags

    def _eval_Dict(self, node):
        tags = EMPTY
        for key in node.keys:
            tags |= self._eval(key)
        for value in node.values:
            tags |= self._eval(value)
        return tags

    def _eval_List(self, node):
        tags = EMPTY
        for element in node.elts:
            tags |= self._eval(element)
        return tags

    _eval_Tuple = _eval_List
    _eval_Set = _eval_List

    def _eval_comprehension_node(self, node):
        tags = EMPTY
        for generator in node.generators:
            iter_tags = self._eval(generator.iter)
            self._assign(generator.target, iter_tags)
            tags |= iter_tags
            for condition in generator.ifs:
                self._eval(condition)
        return tags

    def _eval_ListComp(self, node):
        tags = self._eval_comprehension_node(node)
        return tags | self._eval(node.elt)

    _eval_SetComp = _eval_ListComp
    _eval_GeneratorExp = _eval_ListComp

    def _eval_DictComp(self, node):
        tags = self._eval_comprehension_node(node)
        return tags | self._eval(node.key) | self._eval(node.value)

    def _eval_Yield(self, node):
        if node.value is not None:
            tags = self._eval(node.value)
            self.facts.returns = self.facts.returns | tags
        return EMPTY

    def _eval_YieldFrom(self, node):
        tags = self._eval(node.value)
        self.facts.returns = self.facts.returns | tags
        return tags

    # -- calls ------------------------------------------------------------

    def _eval_Call(self, node):
        arg_tags = [self._eval(arg) for arg in node.args]
        kw_tags = {
            keyword.arg: self._eval(keyword.value)
            for keyword in node.keywords
        }
        all_arg_tags = EMPTY
        for tags in arg_tags:
            all_arg_tags |= tags
        for tags in kw_tags.values():
            all_arg_tags |= tags

        names, speculative, receiver_tags, receiver_text = (
            self._resolve(node.func)
        )

        # Mapping-key refinement: `.keys()` on a dict-like receiver
        # yields *identifiers* (column names, source names — the tree
        # keys rows and loss maps by schema metadata), not payload.
        # Without this, `Table.from_dicts(rows)` taints every column
        # name and, transitively, every schema-validation exception.
        # A mapping keyed by cell values would be hidden from this
        # analysis — see the caveat in docs/static_analysis.md.
        if isinstance(node.func, ast.Attribute) and node.func.attr == "keys" \
                and not node.args and not node.keywords \
                and not self._candidates(names):
            return EMPTY

        # catalog checks come first — against *confident* names only
        # (receiver-typed methods, dotted imports, `*.attr` fallbacks);
        # speculative bare-name candidates would turn every list.append
        # into a journal write.  A sanitizer call launders its args.
        if self.catalog.is_sanitizer(names):
            return EMPTY
        label = self.catalog.source_label(names)
        if label is not None:
            return frozenset({_tag_src(label)}) | receiver_tags

        sink = self.catalog.sink_for(names, receiver_text)
        if sink is not None:
            record_tags = list(arg_tags) + list(kw_tags.values())
            record_names = (
                [_describe(arg) for arg in node.args]
                + [keyword.arg or "**kwargs" for keyword in node.keywords]
            )
            event_name = None
            if node.args and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                event_name = node.args[0].value
            self.facts.record_sink(SinkRecord(
                sink.kind, sink.description, node, record_tags,
                record_names, event_name=event_name,
                callee=receiver_text or (names[0] if names else None),
            ))

        # resolved in-tree callees: record edges and substitute summaries
        candidates = self._candidates(names + speculative)
        if candidates:
            result = EMPTY
            for callee in candidates:
                mapped = self._map_args(
                    callee, arg_tags, kw_tags, receiver_tags, node
                )
                if mapped:
                    self.facts.calls.append(CallRecord(callee.qname, mapped))
                summary = self.returns.get(callee.qname, EMPTY)
                result |= _substitute(summary, mapped)
            if self._is_constructor_call(node.func, names):
                result |= all_arg_tags  # the object carries its field taint
            return result | receiver_tags

        # builtins
        if isinstance(node.func, ast.Name):
            if node.func.id in _CLEANING_BUILTINS:
                return EMPTY
            if node.func.id in _PROPAGATING_BUILTINS:
                return all_arg_tags
        # unknown callee: conservatively propagate everything visible
        return all_arg_tags | receiver_tags

    def _is_constructor_call(self, func, names):
        return any(name in self.program.classes for name in names if name)

    def _candidates(self, names):
        """FunctionInfos the resolved names denote (ctor → ``__init__``)."""
        found = []
        for name in names:
            if name is None:
                continue
            if name in self.program.functions:
                found.append(self.program.functions[name])
            elif name in self.program.classes:
                class_info = self.program.classes[name]
                init = self.program.method_of(class_info, "__init__")
                if init is not None:
                    found.append(init)
        return found

    def _map_args(self, callee, arg_tags, kw_tags, receiver_tags, node):
        """Map call-site taint onto the callee's parameter indexes."""
        mapped = {}
        offset = 0
        if callee.is_method and callee.params \
                and callee.params[0] in ("self", "cls"):
            offset = 1
            if receiver_tags:
                mapped[0] = receiver_tags
        for position, tags in enumerate(arg_tags):
            if not tags:
                continue
            index = position + offset
            if index < len(callee.params):
                mapped[index] = mapped.get(index, EMPTY) | tags
            elif callee.has_varargs and callee.params:
                last = len(callee.params) - 1
                mapped[last] = mapped.get(last, EMPTY) | tags
        for name, tags in kw_tags.items():
            if not tags:
                continue
            if name is None:  # **kwargs at the call site: smear
                for index in range(offset, len(callee.params)):
                    mapped[index] = mapped.get(index, EMPTY) | tags
                continue
            index = callee.param_index(name)
            if index is not None:
                mapped[index] = mapped.get(index, EMPTY) | tags
            elif callee.has_varargs and callee.params:
                last = len(callee.params) - 1
                mapped[last] = mapped.get(last, EMPTY) | tags
        return mapped

    # -- name resolution ----------------------------------------------------

    def _resolve(self, func):
        """Resolve a call target to qualified-name candidates.

        Returns ``(names, speculative, receiver_tags, receiver_text)``.
        ``names`` are *confident*: the bare/dotted name, receiver-typed
        method qnames, and the ``*.attr`` fallback — safe to match
        against the catalog.  ``speculative`` are program-wide bare-name
        guesses for an unresolved receiver — used only to propagate
        summaries and call edges, never for source/sanitizer/sink
        classification (a guess that ``x.append`` might be the journal's
        ``append`` must not make every list a sink).
        """
        if isinstance(func, ast.Name):
            name = func.id
            dotted = self.module.imports.get(name)
            names = [name]
            if dotted is not None:
                names.append(dotted)
            local = f"{self.module.name}.{name}"
            if local in self.program.functions \
                    or local in self.program.classes:
                names.append(local)
            speculative = []
            if dotted is None and local not in self.program.functions \
                    and local not in self.program.classes:
                # unique program-wide match by bare name (helps fixtures)
                functions = self.program.functions_by_name.get(name, [])
                classes = self.program.class_named(name)
                if len(functions) == 1 and not classes:
                    speculative.append(functions[0].qname)
                elif len(classes) == 1 and not functions:
                    speculative.append(classes[0].qname)
            return names, speculative, EMPTY, name

        if isinstance(func, ast.Attribute):
            receiver_text = _describe(func.value)
            receiver_tags = self._eval(func.value)
            names = [f"*.{func.attr}"]
            receiver_types = self._receiver_types(func.value)
            for class_info in receiver_types:
                method = self.program.method_of(class_info, func.attr)
                if method is not None:
                    names.append(method.qname)
            # module attribute: repro.telemetry.redact.digest
            dotted = self._dotted_module_target(func)
            if dotted is not None:
                names.append(dotted)
            speculative = []
            if len(receiver_types) == 0:
                # unresolved receiver: propagate taint through the
                # program-wide method index only when the bare name is
                # unambiguous — one definition program-wide
                candidates = self.program.methods_by_name.get(func.attr, [])
                if len(candidates) == 1:
                    speculative.append(candidates[0].qname)
            return names, speculative, receiver_tags, receiver_text

        # calls on arbitrary expressions: evaluate for taint only
        return [], [], self._eval(func), None

    def _receiver_types(self, expr):
        """ClassInfos the receiver expression may denote."""
        if isinstance(expr, ast.Name):
            if expr.id == "self" and self.function.class_info is not None:
                return [self.function.class_info]
            dotted = self.module.imports.get(expr.id)
            if dotted is not None:
                bare = self.program.global_instances.get(dotted)
                if bare is not None:
                    return self.program.class_named(bare)
            return []
        if isinstance(expr, ast.Attribute):
            base_types = self._receiver_types(expr.value)
            found = []
            for base in base_types:
                for qname in base.attr_types.get(expr.attr, ()):
                    class_info = self.program.classes.get(qname)
                    if class_info is not None:
                        found.append(class_info)
            return found
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            dotted = self.module.imports.get(expr.func.id)
            for candidate in (dotted,
                              f"{self.module.name}.{expr.func.id}"):
                if candidate in self.program.classes:
                    return [self.program.classes[candidate]]
        return []

    def _dotted_module_target(self, func):
        """``redact.digest`` → ``repro.telemetry.redact.digest``."""
        parts = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        dotted = self.module.imports.get(node.id)
        if dotted is None:
            return None
        return ".".join([dotted] + list(reversed(parts)))


def _substitute(summary_tags, mapped_args):
    """Instantiate a callee's return summary at one call site."""
    result = EMPTY
    for tag in summary_tags:
        if tag.startswith("param:"):
            result |= mapped_args.get(int(tag[6:]), EMPTY)
        else:
            result = result | {tag}
    return frozenset(result)


def _describe(node):
    """A short printable form of an argument expression."""
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expr>"
    return text if len(text) <= 48 else text[:45] + "..."
