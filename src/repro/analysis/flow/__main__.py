"""Entry point for ``python -m repro.analysis.flow``."""

from repro.analysis.flow.cli import main

raise SystemExit(main())
