"""One-call driver: both passes, one parse, suppression filtering.

The taint engine and the lockset pass share one parsed
:class:`~repro.analysis.flow.loader.Program`, and their findings are
filtered through the same per-line ``# repro-lint: disable=REP010 --
why`` comments the per-file linter established — one suppression syntax,
one review habit, two analyzers.
"""

from __future__ import annotations

from repro.analysis.flow.catalog import DEFAULT_CATALOG
from repro.analysis.flow.engine import analyze_flows
from repro.analysis.flow.loader import load_program
from repro.analysis.flow.locks import analyze_locks
from repro.analysis.lint.core import Suppressions


class FlowReport:
    """Everything one analysis run produced, suppressions applied."""

    def __init__(self, program, flow, locks, findings, suppressed):
        self.program = program
        self.flow = flow            # FlowAnalysis (REP010, sink inventory)
        self.locks = locks          # LockAnalysis (REP011, state map)
        self.findings = findings    # unsuppressed, sorted
        self.suppressed = suppressed

    @property
    def files_checked(self):
        return len(self.program.modules)

    def shared_state_map(self):
        """The lock inventory artifact (see docs/static_analysis.md)."""
        return self.locks.shared_state_map()

    def sink_inventory(self):
        """The static sink inventory (the differential test's oracle)."""
        return self.flow.sink_inventory()


def run_analysis(paths, catalog=DEFAULT_CATALOG, select=None):
    """Run both whole-program passes over ``paths``; returns a report.

    ``select`` optionally restricts findings to a set of codes
    (``{"REP010"}``); the passes still both run — the shared-state map
    is part of the result regardless.
    """
    program = load_program(paths)
    flow = analyze_flows(program, catalog=catalog)
    locks = analyze_locks(program)
    raw = list(flow.findings) + list(locks.findings)
    if select is not None:
        raw = [finding for finding in raw if finding.code in select]
    findings, suppressed = _apply_suppressions(program, raw)
    findings.sort(key=lambda f: (str(f.path), f.line, f.col, f.code))
    return FlowReport(program, flow, locks, findings, suppressed)


def _apply_suppressions(program, raw_findings):
    """Filter findings through each module's per-line directives."""
    by_path = {}
    for module in program.modules.values():
        by_path[str(module.path)] = Suppressions(module.lines)
    findings, suppressed = [], 0
    for finding in raw_findings:
        suppressions = by_path.get(str(finding.path))
        if suppressions is not None and suppressions.covers(finding):
            suppressed += 1
        else:
            findings.append(finding)
    return findings, suppressed
