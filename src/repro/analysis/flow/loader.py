"""Load a source tree into a whole-program model.

The per-file linter parses one file at a time; the flow analyzer needs
the *program*: every module's AST plus indexes that let the call-graph
builder resolve a name at one call site to a function defined three
packages away.  Everything here is stdlib-only (``ast`` + ``pathlib``)
and never imports the analyzed code — the analyzer must be able to run
against a tree too broken to import.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.lint.core import iter_python_files, module_name_for
from repro.errors import ReproError


class ModuleInfo:
    """One parsed module: AST, source lines, and its import map."""

    __slots__ = ("name", "path", "tree", "lines", "imports")

    def __init__(self, name, path, tree, lines):
        self.name = name
        self.path = path
        self.tree = tree
        self.lines = lines
        #: local alias → fully dotted target ("events" →
        #: "repro.telemetry.events.EventLog" or "repro.telemetry.events")
        self.imports = _import_map(tree)

    def __repr__(self):
        return f"ModuleInfo({self.name!r})"


class FunctionInfo:
    """One function or method with its resolved parameter list."""

    __slots__ = ("qname", "module", "node", "class_info", "params",
                 "has_varargs")

    def __init__(self, qname, module, node, class_info=None):
        self.qname = qname
        self.module = module
        self.node = node
        self.class_info = class_info  # ClassInfo for methods, else None
        args = node.args
        self.params = (
            [a.arg for a in args.posonlyargs]
            + [a.arg for a in args.args]
            + [a.arg for a in args.kwonlyargs]
        )
        self.has_varargs = args.vararg is not None or args.kwarg is not None

    @property
    def name(self):
        return self.node.name

    @property
    def is_method(self):
        return self.class_info is not None

    def param_index(self, name):
        """Index of parameter ``name``, or None."""
        try:
            return self.params.index(name)
        except ValueError:
            return None

    def __repr__(self):
        return f"FunctionInfo({self.qname!r})"


class ClassInfo:
    """One class: its methods, base names, and inferred attribute types."""

    __slots__ = ("qname", "module", "node", "bases", "methods",
                 "attr_types", "lock_attrs", "sync_attrs")

    def __init__(self, qname, module, node):
        self.qname = qname
        self.module = module
        self.node = node
        self.bases = [_base_name(b) for b in node.bases]
        self.methods = {}     # bare name → FunctionInfo
        self.attr_types = {}  # self.<attr> → set of class qnames
        self.lock_attrs = set()  # self.<attr> holding a threading lock
        self.sync_attrs = set()  # self-synchronized: Queue, threading.local

    @property
    def name(self):
        return self.node.name

    def __repr__(self):
        return f"ClassInfo({self.qname!r})"


class Program:
    """The whole analyzed tree, indexed for name resolution."""

    def __init__(self, root):
        self.root = Path(root)
        self.modules = {}           # dotted name → ModuleInfo
        self.functions = {}         # qname → FunctionInfo
        self.classes = {}           # qname → ClassInfo
        self.methods_by_name = {}   # bare method name → [FunctionInfo]
        self.functions_by_name = {}  # bare module-level name → [FunctionInfo]
        self.classes_by_name = {}   # bare class name → [ClassInfo]
        #: module-level instances: dotted name → class qname
        #: ("repro.telemetry.events.NOOP_EVENTS" → "....NoopEventLog")
        self.global_instances = {}

    def class_named(self, bare_name):
        """All classes named ``bare_name`` across the program."""
        return self.classes_by_name.get(bare_name, [])

    def resolve_class(self, class_info, bare_name):
        """A base-class lookup: prefer same module, fall back program-wide."""
        same_module = [
            c for c in self.class_named(bare_name)
            if c.module is class_info.module
        ]
        candidates = same_module or self.class_named(bare_name)
        return candidates[0] if candidates else None

    def method_of(self, class_info, name, _seen=None):
        """Method ``name`` on ``class_info`` or (by name) its bases."""
        seen = _seen if _seen is not None else set()
        if class_info.qname in seen:
            return None
        seen.add(class_info.qname)
        method = class_info.methods.get(name)
        if method is not None:
            return method
        for base_name in class_info.bases:
            base = self.resolve_class(class_info, base_name)
            if base is not None:
                method = self.method_of(base, name, seen)
                if method is not None:
                    return method
        return None

    def __repr__(self):
        return (f"Program({self.root}, modules={len(self.modules)}, "
                f"functions={len(self.functions)})")


def load_program(paths):
    """Parse every ``.py`` file under ``paths`` into a :class:`Program`."""
    files = iter_python_files(
        paths if isinstance(paths, (list, tuple)) else [paths]
    )
    if not files:
        raise ReproError(f"no python files under {paths!r}")
    program = Program(files[0].parent)
    for path in files:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        name = module_name_for(path) or path.stem
        module = ModuleInfo(name, path, tree, source.splitlines())
        program.modules[name] = module
        _index_module(program, module)
    _infer_attr_types(program)
    return program


# -- indexing ------------------------------------------------------------


def _index_module(program, module):
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = FunctionInfo(f"{module.name}.{node.name}", module, node)
            program.functions[info.qname] = info
            program.functions_by_name.setdefault(node.name, []).append(info)
        elif isinstance(node, ast.ClassDef):
            _index_class(program, module, node)
        elif isinstance(node, ast.Assign):
            _index_global_instance(program, module, node)


def _index_class(program, module, node):
    class_info = ClassInfo(f"{module.name}.{node.name}", module, node)
    program.classes[class_info.qname] = class_info
    program.classes_by_name.setdefault(node.name, []).append(class_info)
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = FunctionInfo(
                f"{class_info.qname}.{item.name}", module, item, class_info
            )
            class_info.methods[item.name] = info
            program.functions[info.qname] = info
            program.methods_by_name.setdefault(item.name, []).append(info)


def _index_global_instance(program, module, node):
    """Record ``NAME = ClassName(...)`` module-level singletons."""
    if not isinstance(node.value, ast.Call):
        return
    func = node.value.func
    if not isinstance(func, ast.Name):
        return
    for target in node.targets:
        if isinstance(target, ast.Name):
            program.global_instances[f"{module.name}.{target.id}"] = func.id


_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore",
                   "BoundedSemaphore"}

#: Constructors whose instances synchronize themselves: mutating through
#: them needs no class-owned lock (``queue.Queue`` locks internally;
#: ``threading.local`` is per-thread by construction).
_SELF_SYNC_FACTORIES = {"Queue", "SimpleQueue", "LifoQueue",
                        "PriorityQueue", "local"}


def _infer_attr_types(program):
    """Fill each class's ``attr_types`` and ``lock_attrs``.

    Scans every method for ``self.<attr> = <expr>`` where the expression
    is a recognizable constructor call, a module-level singleton, or a
    parameter annotated by a same-named class — enough typing for the
    call-graph builder to resolve ``self._journal.append(...)`` to
    :class:`AuditJournal` rather than ``list``.
    """
    for class_info in program.classes.values():
        for method in class_info.methods.values():
            for node in ast.walk(method.node):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is None:
                        continue
                    type_name = _constructed_class(program, class_info,
                                                   node.value)
                    if type_name is not None:
                        class_info.attr_types.setdefault(attr, set()).add(
                            type_name
                        )
                    if _is_lock_factory(node.value):
                        class_info.lock_attrs.add(attr)
                    if _is_factory_of(node.value, _SELF_SYNC_FACTORIES):
                        class_info.sync_attrs.add(attr)


def _constructed_class(program, class_info, value):
    """The class qname ``value`` constructs/aliases, or None."""
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        resolved = _resolve_class_name(program, class_info.module,
                                       value.func.id)
        if resolved is not None:
            return resolved.qname
    if isinstance(value, ast.Name):
        dotted = class_info.module.imports.get(value.id)
        if dotted is None:
            dotted = f"{class_info.module.name}.{value.id}"
        bare = program.global_instances.get(dotted)
        if bare is not None:
            resolved = _resolve_class_name(program, class_info.module, bare)
            if resolved is not None:
                return resolved.qname
    return None


def _resolve_class_name(program, module, bare_name):
    """A class by bare name: imports first, same module, then program-wide."""
    dotted = module.imports.get(bare_name)
    if dotted is not None and dotted in program.classes:
        return program.classes[dotted]
    local = f"{module.name}.{bare_name}"
    if local in program.classes:
        return program.classes[local]
    candidates = program.class_named(bare_name)
    return candidates[0] if len(candidates) == 1 else None


def _is_lock_factory(value):
    return _is_factory_of(value, _LOCK_FACTORIES)


def _is_factory_of(value, factory_names):
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None
    )
    return name in factory_names


def _self_attr(node):
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _base_name(node):
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _import_map(tree):
    imports = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    imports[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module is None:
                continue
            for alias in node.names:
                imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return imports
