"""``python -m repro.analysis.flow`` — the whole-program analyzer CLI.

Exit status contract (mirrors ``repro.analysis.lint``; the CI
``flow-analysis`` job keys off it):

* ``0`` — the tree analyzed and no unsuppressed REP010/REP011 finding
  remains;
* ``1`` — the analysis ran to completion and found violations;
* ``2`` — the analyzer could not do its job: usage errors, no python
  files under the given paths, or a file that failed to parse (a broken
  tree yields *no* findings and must not masquerade as clean-or-dirty).

``--map PATH`` additionally writes the shared-state inventory
(``shared_state_map.json``) — the sharding work's partitioning spec —
and ``-`` streams it to stdout instead of the findings report.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.flow.driver import run_analysis
from repro.analysis.lint.core import WHOLE_PROGRAM_CODES
from repro.analysis.lint.reporters import RENDERERS
from repro.errors import ReproError


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.flow",
        description=(
            "whole-program information-flow (REP010) and lockset "
            "(REP011) analysis over a source tree"
        ),
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze "
                             "(default: src)")
    parser.add_argument("--format", choices=sorted(RENDERERS),
                        default="text", help="findings report format")
    parser.add_argument("--select",
                        help="comma-separated codes to report "
                             "(REP010,REP011)")
    parser.add_argument("--map", dest="map_path", metavar="PATH",
                        help="write shared_state_map.json to PATH "
                             "('-' for stdout)")
    parser.add_argument("--inventory", action="store_true",
                        help="append the static sink inventory to the "
                             "JSON report")
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    select = None
    if args.select:
        select = {code.strip() for code in args.select.split(",")
                  if code.strip()}
        unknown = select - set(WHOLE_PROGRAM_CODES)
        if unknown:
            print(  # repro-lint: disable=REP008 -- CLI usage error
                f"unknown whole-program code(s): {sorted(unknown)} "
                f"(valid: {sorted(WHOLE_PROGRAM_CODES)})",
                file=sys.stderr,  # repro-lint: disable=REP008 -- CLI stderr
            )
            return 2
    try:
        report = run_analysis(args.paths, select=select)
    except (SyntaxError, ReproError, OSError) as error:
        print(  # repro-lint: disable=REP008 -- CLI stderr diagnostics
            f"error: {error}",
            file=sys.stderr,  # repro-lint: disable=REP008 -- CLI stderr
        )
        return 2

    if args.map_path:
        rendered_map = json.dumps(report.shared_state_map(), indent=2,
                                  sort_keys=True)
        if args.map_path == "-":
            # repro-lint: disable=REP008 -- CLI entry point: the map on
            # stdout *is* the command's contract under `--map -`.
            print(rendered_map)
            return 0
        with open(args.map_path, "w", encoding="utf-8") as handle:
            handle.write(rendered_map + "\n")

    if args.format == "json":
        document = json.loads(RENDERERS["json"](
            report.findings, report.files_checked, report.suppressed
        ))
        if args.inventory:
            document["sink_inventory"] = report.sink_inventory()
        # repro-lint: disable=REP008 -- CLI entry point: the rendered
        # report on stdout *is* the command's contract.
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        # repro-lint: disable=REP008 -- CLI entry point (as above)
        print(RENDERERS["text"](
            report.findings, report.files_checked, report.suppressed
        ))
    return 1 if report.findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
