"""The taint lattice and the source / sanitizer / sink catalog.

The lattice is deliberately small: a value is either CLEAN or it carries
a set of *taint labels* naming the confidential origin(s) it derives
from ("relational row/cell accessor", "inferred feasibility interval",
...).  Join is set union; CLEAN is the empty set.  What turns the
lattice into a policy is the catalog:

* **Sources** introduce taint: the relational engine's row/cell
  accessors, ``DisclosureForm`` payload construction in the source-side
  result builder, warehouse tuple reads, the inference solver's cell
  bounds (an *inferred* confidential value is still confidential), the
  validation zoo's ground truth, and the audit trail's compromised
  record identities.

* **Sanitizers** clear taint: the k-anonymity generalization hierarchy,
  the Laplace mechanism, aggregation (``len``/``sum``), sha256 hashing,
  canonical plan fingerprints, the validation metrics (which score a
  release rather than repeat it), and :mod:`repro.telemetry.redact` —
  the helpers written specifically so side channels have something safe
  to carry.

* **Sinks** are where taint must never arrive: structured event
  emission, metric name/label/observation calls, the observatory's
  journal and JSONL sink and exporters, persistence WAL record
  encoding, and exception message construction (``raise`` is handled
  structurally by the engine; it consults :data:`Catalog.exception_sink`
  only for the *kind* label).

Patterns match the call-graph builder's resolved qualified names with
``fnmatch`` globs (``repro.relational.table.Table.rows_as_dicts``), and
``*.name`` patterns additionally match *unresolved* attribute calls by
bare method name — the analyzer errs conservative when it cannot prove
a receiver's type.  Method-name sinks that collide with ubiquitous
builtins (``append``) carry a *receiver hint* regex so ``rows.append``
stays a list and ``self._backend.append`` stays a WAL write.
"""

from __future__ import annotations

import re
from fnmatch import fnmatchcase


class SinkSpec:
    """One sink pattern: where tainted data must never arrive."""

    __slots__ = ("kind", "pattern", "receiver_hint", "description")

    def __init__(self, kind, pattern, receiver_hint=None, description=""):
        self.kind = kind
        self.pattern = pattern
        self.receiver_hint = (
            re.compile(receiver_hint) if receiver_hint else None
        )
        self.description = description


class Catalog:
    """A taint policy: source, sanitizer, and sink patterns."""

    def __init__(self, sources, sanitizers, sinks,
                 exception_sink="exception"):
        self.sources = dict(sources)        # pattern → label
        self.sanitizers = list(sanitizers)  # patterns
        self.sinks = list(sinks)            # SinkSpec
        self.exception_sink = exception_sink

    # -- classification ----------------------------------------------------

    def source_label(self, names):
        """The source label when any resolved ``names`` matches, else None."""
        for pattern, label in self.sources.items():
            if any(_matches(pattern, name) for name in names):
                return label
        return None

    def is_sanitizer(self, names):
        return any(
            _matches(pattern, name)
            for pattern in self.sanitizers
            for name in names
        )

    def sink_for(self, names, receiver_text=None):
        """The :class:`SinkSpec` any of ``names`` matches, else None.

        ``receiver_text`` is the dotted receiver of an attribute call
        (``"self._backend"``); sinks with a receiver hint match only
        when the hint is found in it.
        """
        for spec in self.sinks:
            if not any(_matches(spec.pattern, name) for name in names):
                continue
            if spec.receiver_hint is not None:
                if receiver_text is None:
                    continue
                if not spec.receiver_hint.search(receiver_text):
                    continue
            return spec
        return None


def _matches(pattern, name):
    if name is None:
        return False
    return fnmatchcase(name, pattern)


#: Taint labels, named once so findings and docs agree.
LABEL_ROWS = "relational row/cell accessor"
LABEL_RESULT = "source-side disclosure payload"
LABEL_WAREHOUSE = "warehouse tuple"
LABEL_BOUNDS = "inferred feasibility interval (cell bounds)"
LABEL_TRUTH = "validation-zoo confidential ground truth"
LABEL_RECORDS = "audit-trail compromised record identity"


DEFAULT_SOURCES = {
    # the relational engine's raw row/cell accessors
    "repro.relational.table.Table.rows_as_dicts": LABEL_ROWS,
    "*.rows_as_dicts": LABEL_ROWS,
    "repro.relational.table.Table.column_values": LABEL_ROWS,
    "*.column_values": LABEL_ROWS,
    # DisclosureForm payload assembly (tagged result documents carry the
    # post-rewrite cell values a source agreed to disclose)
    "repro.source.results.tag_results": LABEL_RESULT,
    "*.tag_results": LABEL_RESULT,
    "repro.source.results.untag_results": LABEL_RESULT,
    "*.untag_results": LABEL_RESULT,
    # warehouse entries hand back whole materialized result sets
    "repro.mediator.warehouse.Warehouse.answer": LABEL_WAREHOUSE,
    "repro.mediator.warehouse.Warehouse.entry": LABEL_WAREHOUSE,
    # statdb protected views hold the raw microdata rows
    "repro.statdb.protected.*._column_values": LABEL_ROWS,
    "*._column_values": LABEL_ROWS,
    # the inference solver: a bound tight enough to alert on IS the value
    "repro.inference.bounds.cell_bounds": LABEL_BOUNDS,
    "*.cell_bounds": LABEL_BOUNDS,
    # validation zoo ground truth (the confidential matrix itself)
    "repro.validation.adversaries.zoo_truth": LABEL_TRUTH,
    "*.zoo_truth": LABEL_TRUTH,
    # which records a query sequence pins down identifies *people*
    "repro.statdb.audit.AuditTrail._compromised_indices": LABEL_RECORDS,
    "*._compromised_indices": LABEL_RECORDS,
}

DEFAULT_SANITIZERS = [
    # the sanctioned redaction helpers
    "repro.telemetry.redact.digest",
    "repro.telemetry.redact.bucket",
    "repro.telemetry.redact.bucket_interval",
    "repro.telemetry.redact.scrub_reason",
    "*.hexdigest",
    # aggregation: a count or sum over a collection is a sanctioned form
    "len",
    "sum",
    # class identity is metadata, never the value itself
    "type",
    # schema-identifier accessors: column names are metadata even when
    # read off a table built from confidential rows
    "*.column_names",
    # privacy-loss compounding: 1 - Π(1 - l_i) over per-source losses is
    # an aggregate by construction — the quantity the mediator is
    # *supposed* to account and publish, not a confidential payload
    "repro.metrics.privacy_loss.compound_loss",
    "repro.metrics.privacy_loss.aggregate_interval_loss",
    # k-anonymity generalization and anonymization
    "*.generalize",
    "*.anonymize",
    "repro.anonymity.*",
    # differential privacy output perturbation
    "repro.statdb.laplace.LaplaceMechanism.answer",
    # canonical fingerprints are sha256-derived
    "repro.cache.fingerprint.plan_fingerprint",
    "*.plan_fingerprint",
    # validation metrics score a release; they do not repeat it
    "repro.validation.api.validate",
    "repro.validation.api.summarize",
    "*.summarize",
]

DEFAULT_SINKS = [
    SinkSpec("event", "*.emit",
             description="structured event emission (EventLog.emit)"),
    SinkSpec("event", "*.offer",
             description="JSONL sink hand-off (JsonlSink.offer)"),
    SinkSpec("metric", "*.counter",
             description="metric name/label registration"),
    SinkSpec("metric", "*.gauge",
             description="metric name/label registration"),
    SinkSpec("metric", "*.histogram",
             description="metric name/label registration"),
    SinkSpec("metric", "*.observe",
             description="histogram observation"),
    SinkSpec("metric", "*.set",
             receiver_hint=r"gauge|metric",
             description="gauge value"),
    SinkSpec("journal", "repro.observatory.journal.*",
             description="hash-chained audit journal record"),
    SinkSpec("journal", "*.append",
             receiver_hint=r"journal|backend|wal|_sink",
             description="journal/WAL append"),
    SinkSpec("export", "repro.telemetry.export.*",
             description="Chrome-trace / Prometheus exporters"),
    SinkSpec("wal", "repro.persistence.wal._dump",
             description="WAL record encoding"),
    SinkSpec("wal", "*.write_atomic",
             description="atomic snapshot write"),
    SinkSpec("wal", "repro.persistence.*.append",
             description="persistence backend append"),
    SinkSpec("wal", "repro.persistence.*.save_snapshot",
             description="persistence snapshot"),
]


DEFAULT_CATALOG = Catalog(DEFAULT_SOURCES, DEFAULT_SANITIZERS, DEFAULT_SINKS)
