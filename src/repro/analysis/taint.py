"""Taint labels for confidential paths flowing through a PIQL plan.

The plan analyzer needs to know, per source, *which* confidential path a
query touches, *how* it flows out (projection, predicate, group-by, or
aggregate), and what disclosure form the source's policy grants for it.
This module computes those labels from the same inputs the runtime
pipeline uses — the transformer's path→column mapping and the policy
decisions — so a label is a faithful abstraction of what the rewriter
will later do with the column.

The label lattice is the disclosure-form lattice of
:class:`repro.policy.model.DisclosureForm` (``SUPPRESSED < AGGREGATE <
RANGE < EXACT``), refined by the *flow* a path takes:

* ``projection`` releases the granted form unchanged (``RANGE`` grants
  are generalized by the executor, which the label records);
* ``aggregate`` flow caps the released form at ``AGGREGATE`` — a value
  that only ever leaves inside ``AVG``/``SUM``/… discloses at most its
  aggregate;
* ``predicate`` and ``group-by`` flows release nothing directly but are
  *load-bearing*: a denied column in either makes the whole fragment
  unanswerable (evaluating a predicate over forbidden data leaks
  through the result set), which is exactly the condition the plan
  analyzer reports as the offending path of a ``REFUSE`` verdict.
"""

from __future__ import annotations

from repro.policy.model import DisclosureForm

#: How a path flows out of a query.
FLOW_PROJECTION = "projection"
FLOW_PREDICATE = "predicate"
FLOW_GROUP_BY = "group-by"
FLOW_AGGREGATE = "aggregate"


class TaintLabel:
    """One confidential-path label: where data comes from and how it flows."""

    __slots__ = ("source", "path", "column", "form", "flows", "allowed",
                 "reasons")

    def __init__(self, source, path, column, form, flows, allowed, reasons):
        self.source = source
        self.path = path          # path repr as posed (mediated fragment)
        self.column = column      # the source-local column it resolves to
        self.form = form          # DisclosureForm granted by policy
        self.flows = tuple(flows)
        self.allowed = allowed
        self.reasons = list(reasons)

    @property
    def released_form(self):
        """The strongest form this label can reach the requester in.

        Denied labels release nothing; labels that only flow through
        aggregates are capped at ``AGGREGATE`` no matter how generous
        the grant is.
        """
        if not self.allowed:
            return DisclosureForm.SUPPRESSED
        if self.flows and set(self.flows) <= {FLOW_AGGREGATE}:
            return min(self.form, DisclosureForm.AGGREGATE)
        return self.form

    @property
    def blocks_fragment(self):
        """Whether this label alone makes the fragment unanswerable.

        Mirrors the rewriter: a denied column in a predicate or
        group-by refuses the whole fragment; a denied projection or
        aggregate is merely dropped.
        """
        return not self.allowed and any(
            flow in (FLOW_PREDICATE, FLOW_GROUP_BY) for flow in self.flows
        )

    def to_dict(self):
        return {
            "source": self.source,
            "path": self.path,
            "column": self.column,
            "form": self.form.name,
            "released_form": self.released_form.name,
            "flows": list(self.flows),
            "allowed": self.allowed,
            "reasons": list(self.reasons),
        }

    def __repr__(self):
        verdict = "allowed" if self.allowed else "DENIED"
        return (
            f"TaintLabel({self.source}:{self.column} {verdict} "
            f"{self.form.name} via {'/'.join(self.flows) or '-'})"
        )


def label_source_query(source, local_query, column_of_path, decisions):
    """Label every path of one source's fragment.

    ``local_query`` is the transformed :class:`SelectQuery`,
    ``column_of_path`` the transformer's ``repr(path) → column`` map,
    and ``decisions`` the per-column policy :class:`Decision` map —
    the exact objects the runtime pipeline computes.  Returns one
    :class:`TaintLabel` per path, ordered by path repr.
    """
    predicate_columns = set(local_query.where.columns_used())
    group_columns = set(local_query.group_by)
    projection_columns = set(local_query.columns)
    aggregate_columns = {
        a.column for a in local_query.aggregates if a.column != "*"
    }

    labels = []
    for path_repr, column in sorted(column_of_path.items()):
        flows = []
        if column in projection_columns:
            flows.append(FLOW_PROJECTION)
        if column in aggregate_columns:
            flows.append(FLOW_AGGREGATE)
        if column in predicate_columns:
            flows.append(FLOW_PREDICATE)
        if column in group_columns:
            flows.append(FLOW_GROUP_BY)
        decision = decisions.get(column)
        if decision is None:
            labels.append(TaintLabel(
                source, path_repr, column, DisclosureForm.SUPPRESSED,
                flows, False, [f"no policy decision for column {column!r}"],
            ))
        else:
            labels.append(TaintLabel(
                source, path_repr, column, decision.form, flows,
                decision.allowed, decision.reasons,
            ))
    return labels


def blocking_label(labels):
    """The first label that makes the fragment unanswerable, if any."""
    for label in labels:
        if label.blocks_fragment:
            return label
    return None


def released_labels(labels):
    """Labels that actually reach the integrated result (non-suppressed)."""
    return [
        label for label in labels
        if label.released_form > DisclosureForm.SUPPRESSED
    ]
