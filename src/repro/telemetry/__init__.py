"""Observability for the PRIVATE-IYE pipeline: tracing, metrics, explain.

The paper argues (Figure 1, §5) that privacy-preserving integration is an
*accounting* problem — what did each query disclose, which source refused
and why, how did per-source losses compound after integration?  This
package gives the reproduction the instruments to answer those questions:

* :mod:`repro.telemetry.tracer` — ``Span``/``Tracer`` with a
  context-manager API and thread-local nesting, so per-source pipeline
  stages nest under the mediator's ``pose`` span without any context
  threading;
* :mod:`repro.telemetry.metrics` — a counters/gauges/histograms registry
  with p50/p95/p99 summaries;
* :mod:`repro.telemetry.explain` — per-query *privacy ledgers*
  (fragmentation plan, per-source rewrite decisions and refusal kinds,
  warehouse hit/miss, sequence-guard verdict, aggregated loss vs MAXLOSS).

One :class:`Telemetry` object bundles the three and is shared by the
mediation engine, the warehouse, and every registered source.  Telemetry
is **off by default**: every component falls back to the module-level
:data:`NOOP` instance, whose tracer/metrics/explain are shared singletons
that record nothing, so the production hot path pays only an attribute
lookup per instrumentation point.  Enable it with
``PrivateIye(telemetry=True)``, ``MediationEngine(telemetry=...)``, or the
environment variable ``REPRO_TELEMETRY=1``.

See ``docs/observability.md`` for the span/attribute reference and
``docs/architecture.md`` for where each instrument sits in Figure 2.
"""

from __future__ import annotations

import os

from repro.telemetry.events import (
    NOOP_EVENTS,
    Event,
    EventLog,
    JsonlSink,
    NoopEventLog,
    resolve_events,
)
from repro.telemetry.explain import (
    NOOP_EXPLAIN,
    NOOP_REPORT,
    ExplainLog,
    ExplainReport,
    NoopExplainLog,
    NoopReport,
)
from repro.telemetry.metrics import (
    NOOP_INSTRUMENT,
    NOOP_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NoopMetrics,
)
from repro.telemetry.tracer import (
    NOOP_SPAN,
    NOOP_TRACER,
    NoopSpan,
    NoopTracer,
    Span,
    Tracer,
)

ENV_FLAG = "REPRO_TELEMETRY"


class Telemetry:
    """Tracer + metrics registry + explain log behind one enabled flag.

    ``Telemetry(enabled=False)`` (and the shared :data:`NOOP` instance)
    wires all three members to their no-op counterparts; the instrumented
    call sites are identical either way.
    """

    __slots__ = ("enabled", "tracer", "metrics", "explain", "events")

    def __init__(self, enabled=True, max_roots=256, max_reports=64,
                 events=None, max_events=2048):
        self.enabled = bool(enabled)
        if self.enabled:
            self.tracer = Tracer(max_roots=max_roots)
            self.metrics = MetricsRegistry()
            self.explain = ExplainLog(max_reports=max_reports)
            self.events = resolve_events(events, max_events=max_events)
        else:
            self.tracer = NOOP_TRACER
            self.metrics = NOOP_METRICS
            self.explain = NOOP_EXPLAIN
            self.events = NOOP_EVENTS

    def span(self, name, **attributes):
        """Shorthand for ``telemetry.tracer.span(...)``."""
        return self.tracer.span(name, **attributes)

    def explain_last(self, requester=None):
        """The newest explain report (optionally for one requester)."""
        return self.explain.last(requester)

    def metrics_snapshot(self):
        """Plain-dict snapshot of every metric."""
        return self.metrics.snapshot()

    def emit(self, name, **attributes):
        """Shorthand for ``telemetry.events.emit(...)``."""
        return self.events.emit(name, **attributes)

    def events_tail(self, n=20):
        """The ``n`` newest structured events, oldest first."""
        return self.events.tail(n)

    def reset(self):
        """Clear finished spans and metrics (explain log is append-only)."""
        self.tracer.reset()
        self.metrics.reset()

    def close(self):
        """Flush and close the event sink, if one is attached."""
        self.events.close()

    def __repr__(self):
        return f"Telemetry(enabled={self.enabled})"


NOOP = Telemetry(enabled=False)


def env_enabled(environ=None):
    """Whether ``REPRO_TELEMETRY`` requests telemetry (``1/true/yes/on``)."""
    value = (environ or os.environ).get(ENV_FLAG, "")
    return value.strip().lower() in ("1", "true", "yes", "on")


def resolve_telemetry(telemetry=None):
    """Normalize a constructor argument into a :class:`Telemetry`.

    ``None`` defers to the environment (``REPRO_TELEMETRY=1`` enables,
    otherwise the shared :data:`NOOP`); a bool builds a fresh instance;
    an existing :class:`Telemetry` passes through, which is how the
    engine, warehouse, and sources end up sharing one.
    """
    if telemetry is None:
        return Telemetry(enabled=True) if env_enabled() else NOOP
    if isinstance(telemetry, bool):
        return Telemetry(enabled=telemetry) if telemetry else NOOP
    if isinstance(telemetry, Telemetry):
        return telemetry
    # repro-lint: disable=REP003 -- test-asserted API contract:
    # constructor-argument type errors are TypeError by Python convention.
    raise TypeError(
        f"telemetry must be None, a bool, or a Telemetry instance, "
        f"not {type(telemetry).__name__}"
    )


__all__ = [
    "Telemetry",
    "NOOP",
    "resolve_telemetry",
    "env_enabled",
    "ENV_FLAG",
    "Tracer",
    "Span",
    "NoopTracer",
    "NoopSpan",
    "NOOP_TRACER",
    "NOOP_SPAN",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "NoopMetrics",
    "NOOP_METRICS",
    "NOOP_INSTRUMENT",
    "Event",
    "EventLog",
    "JsonlSink",
    "NoopEventLog",
    "NOOP_EVENTS",
    "resolve_events",
    "ExplainLog",
    "ExplainReport",
    "NoopExplainLog",
    "NoopReport",
    "NOOP_EXPLAIN",
    "NOOP_REPORT",
]
