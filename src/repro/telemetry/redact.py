"""Redaction helpers — the sanctioned way confidential values cross into
side channels.

The mediated ``pose()`` path is the *only* place raw confidential data
may be released, and there only after policy rewriting, loss accounting,
and the privacy control's re-verification.  Everything else — structured
events, metric labels, exception messages, the audit journal — is a side
channel: useful for operators, invisible to the disclosure ledger, and
therefore never allowed to carry a raw cell.  These helpers give those
channels something *useful* to carry instead:

* :func:`digest` — a short, stable sha256 prefix.  Two log lines about
  the same value correlate; neither reveals it.  The 8-hex-digit prefix
  (32 bits) is deliberately too wide to invert by table lookup over any
  realistic domain while staying short enough for a metric label.
* :func:`bucket` — a generalization-hierarchy-style interval label
  (``"[20,30)"``).  The same shape the k-anonymity hierarchies publish,
  so a bucketed telemetry value never says more than an allowed RANGE
  disclosure would.
* :func:`bucket_interval` — both endpoints of a feasibility interval
  bucketed at once, collapsed to one label; the *width* survives
  exactly (it is the alerting signal), the *position* is generalized.
* :func:`scrub_reason` — exception/refusal text reduced to its first
  line with any digits generalized; refusal messages built from counts
  and limits survive verbatim in shape while anything that could encode
  a cell value is coarsened.

The whole-program flow analyzer (:mod:`repro.analysis.flow`) declares
every function in this module a *sanitizer*: a value that has passed
through one of them no longer carries taint.  That declaration is this
module's contract — keep outputs non-invertible when editing.
"""

from __future__ import annotations

import hashlib
import math
import re

#: Digest length in hex digits (32 bits): wide enough that inverting a
#: label requires brute force over the full value domain, short enough
#: for metric labels and log lines.
DIGEST_HEX_DIGITS = 8

_DIGIT_RUN = re.compile(r"\d+(?:\.\d+)?")


def digest(value, length=DIGEST_HEX_DIGITS):
    """A short, stable sha256 prefix of ``value``'s canonical repr.

    Equal values digest equally (floats canonicalize via ``repr`` so
    ``1`` and ``1.0`` differ — digest the same *type* you compare), so
    operators can correlate events about one cell without learning it.
    """
    if isinstance(value, bytes):
        material = value
    else:
        material = repr(value).encode("utf-8")
    return hashlib.sha256(material).hexdigest()[:length]


def bucket(value, width=10.0):
    """The half-open generalization interval containing ``value``.

    ``bucket(23, 10)`` → ``"[20,30)"`` — the same label shape
    :func:`repro.anonymity.hierarchy.interval_hierarchy` publishes, so
    telemetry carrying a bucket never discloses more than an allowed
    RANGE release of the same width would.
    """
    if width <= 0:
        raise _redact_error("bucket width must be positive")
    low = math.floor(float(value) / width) * width
    high = low + width
    return f"[{_fmt(low)},{_fmt(high)})"


def bucket_interval(low, high, width=10.0):
    """One label generalizing a feasibility interval's *position*.

    The returned ``"[20,30)..[30,40)"`` (or a single bucket when both
    endpoints fall in one) locates the interval only to ``width``
    granularity; report the exact ``high - low`` width separately — the
    width is the alerting signal and discloses nothing about position.
    """
    low_bucket = bucket(low, width)
    high_bucket = bucket(high, width)
    if low_bucket == high_bucket:
        return low_bucket
    return f"{low_bucket}..{high_bucket}"


def scrub_reason(text, max_length=160):
    """Refusal/exception text made safe for event payloads.

    Keeps the first line (the human-meaningful shape: *what* was refused
    and by which guard) but generalizes every digit run to ``#`` — a
    count, limit, or embedded value survives as structure, not as data —
    and truncates to ``max_length``.
    """
    first_line = str(text).splitlines()[0] if str(text) else ""
    scrubbed = _DIGIT_RUN.sub("#", first_line)
    if len(scrubbed) > max_length:
        scrubbed = scrubbed[: max_length - 1] + "…"
    return scrubbed


def _fmt(number):
    """``20`` not ``20.0`` in bucket labels (matches hierarchy labels).

    Rounded to 10 decimals first: ``floor(0.97 / 0.05) * 0.05`` is
    ``0.9500000000000001`` in binary floats, and a bucket label must be
    a stable dictionary key, not a float-noise fingerprint.
    """
    as_float = round(float(number), 10)
    if as_float.is_integer():
        return str(int(as_float))
    return str(as_float)


def _redact_error(message):
    # deferred import: telemetry sits above errors, but keeping the
    # import local keeps this module importable during bootstrap
    from repro.errors import ReproError

    return ReproError(message)
