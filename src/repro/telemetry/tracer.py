"""Zero-dependency tracing for the mediation pipeline.

A :class:`Tracer` hands out :class:`Span` context managers; spans nest via
a thread-local stack, so a source-side span opened while the mediator's
``pose`` span is active automatically becomes its child — no context
object needs to be threaded through the call chain.  Finished root spans
are kept in a bounded buffer for inspection (``Tracer.finished``,
``Tracer.last_root``).

When telemetry is disabled the engine uses :class:`NoopTracer`, whose
``span()`` returns one shared, pre-allocated :class:`NoopSpan` — entering
it, setting attributes on it, and exiting it allocate nothing, keeping the
disabled-path overhead to a single attribute lookup and method call.

Timing uses ``time.perf_counter`` and is reported in milliseconds.
"""

from __future__ import annotations

import threading
import time
from collections import deque


class Span:
    """One timed, attributed region of the pipeline.

    Use as a context manager (``with tracer.span("stage") as span:``);
    attach attributes with :meth:`set`.  ``duration_ms`` is available
    after exit (it reads the running clock while the span is open).

    ``parent`` is the *cross-thread* escape hatch: a span opened on a
    worker thread (where the thread-local stack is empty) with an
    explicit parent becomes that parent's child instead of a new root —
    how the fan-out dispatcher keeps per-source attempts nested under
    ``mediator.pose`` even though they run on pool threads.  When the
    local stack is non-empty the stack parent wins, so nested spans on
    the worker thread behave normally.
    """

    __slots__ = ("name", "attributes", "children", "start", "end",
                 "_tracer", "parent")

    def __init__(self, name, tracer, attributes=None, parent=None):
        self.name = name
        self.attributes = dict(attributes) if attributes else {}
        self.children = []
        self.start = None
        self.end = None
        self._tracer = tracer
        self.parent = parent

    def set(self, **attributes):
        """Attach attributes to the span; returns the span for chaining."""
        self.attributes.update(attributes)
        return self

    @property
    def duration_ms(self):
        """Elapsed milliseconds (live while the span is still open)."""
        if self.start is None:
            return 0.0
        end = self.end if self.end is not None else time.perf_counter()
        return (end - self.start) * 1000.0

    def __enter__(self):
        self.start = time.perf_counter()
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        self.end = time.perf_counter()
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return False

    def to_dict(self):
        """Nested plain-dict form (JSON-serializable)."""
        return {
            "name": self.name,
            "duration_ms": self.duration_ms,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def walk(self):
        """Yield this span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self):
        return f"Span({self.name!r}, {self.duration_ms:.3f}ms)"


class Tracer:
    """Hands out nesting spans; retains finished roots in a ring buffer."""

    def __init__(self, max_roots=256):
        self._local = threading.local()
        self._finished = deque(maxlen=max_roots)
        self._lock = threading.Lock()

    # -- span lifecycle ----------------------------------------------------

    def span(self, name, parent=None, **attributes):
        """Create a span; enter it (``with``) to start the clock.

        ``parent`` explicitly parents the span under an open span from
        *another* thread (see :class:`Span`); it is ignored when this
        thread already has an open span to nest under.
        """
        return Span(name, self, attributes, parent=parent)

    def current(self):
        """The innermost open span on this thread (or None)."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _push(self, span):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        if stack:
            stack[-1].children.append(span)
        elif span.parent is not None:
            # CPython list.append is atomic, so cross-thread children
            # attach safely even while the parent is still open.
            span.parent.children.append(span)
        stack.append(span)

    def _pop(self, span):
        stack = getattr(self._local, "stack", None)
        if not stack or stack[-1] is not span:
            return  # unbalanced exit; drop silently rather than corrupt
        stack.pop()
        if not stack and span.parent is None:
            with self._lock:
                self._finished.append(span)

    # -- inspection --------------------------------------------------------

    @property
    def finished(self):
        """Finished root spans, oldest first."""
        with self._lock:
            return list(self._finished)

    def last_root(self):
        """The most recently finished root span (or None)."""
        with self._lock:
            return self._finished[-1] if self._finished else None

    def reset(self):
        """Drop all finished spans (open spans are unaffected)."""
        with self._lock:
            self._finished.clear()


class NoopSpan:
    """A span that records nothing; one shared instance serves all sites."""

    __slots__ = ()

    def set(self, **attributes):
        return self

    @property
    def duration_ms(self):
        return 0.0

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def to_dict(self):
        return {"name": "<noop>", "duration_ms": 0.0,
                "attributes": {}, "children": []}


NOOP_SPAN = NoopSpan()


class NoopTracer:
    """Tracer used when telemetry is disabled: allocation-free spans."""

    __slots__ = ()

    def span(self, name, parent=None, **attributes):
        return NOOP_SPAN

    def current(self):
        return None

    @property
    def finished(self):
        return []

    def last_root(self):
        return None

    def reset(self):
        pass


NOOP_TRACER = NoopTracer()
