"""Zero-dependency tracing for the mediation pipeline.

A :class:`Tracer` hands out :class:`Span` context managers; spans nest via
a thread-local stack, so a source-side span opened while the mediator's
``pose`` span is active automatically becomes its child — no context
object needs to be threaded through the call chain.  Finished root spans
are kept in a bounded buffer for inspection (``Tracer.finished``,
``Tracer.last_root``).

When telemetry is disabled the engine uses :class:`NoopTracer`, whose
``span()`` returns one shared, pre-allocated :class:`NoopSpan` — entering
it, setting attributes on it, and exiting it allocate nothing, keeping the
disabled-path overhead to a single attribute lookup and method call.

Timing uses ``time.perf_counter`` and is reported in milliseconds.
"""

from __future__ import annotations

import contextlib
import itertools
import os
import threading
import time
from collections import deque

_TRACE_COUNTER = itertools.count(1)


def new_trace_id():
    """A fresh process-unique trace id (``t-<pid>-<counter>``).

    Ids are plain strings so they serialize through WAL records and —
    by design — across a future process-pool boundary.  ``count.__next__``
    is atomic under the GIL, so no lock is needed.
    """
    return f"t-{os.getpid():x}-{next(_TRACE_COUNTER):08x}"


class Span:
    """One timed, attributed region of the pipeline.

    Use as a context manager (``with tracer.span("stage") as span:``);
    attach attributes with :meth:`set`.  ``duration_ms`` is available
    after exit (it reads the running clock while the span is open).

    ``parent`` is the *cross-thread* escape hatch: a span opened on a
    worker thread (where the thread-local stack is empty) with an
    explicit parent becomes that parent's child instead of a new root —
    how the fan-out dispatcher keeps per-source attempts nested under
    ``mediator.pose`` even though they run on pool threads.  When the
    local stack is non-empty the stack parent wins, so nested spans on
    the worker thread behave normally.
    """

    __slots__ = ("name", "attributes", "children", "start", "end",
                 "_tracer", "parent", "trace_id")

    def __init__(self, name, tracer, attributes=None, parent=None,
                 trace_id=None):
        self.name = name
        self.attributes = dict(attributes) if attributes else {}
        self.children = []
        self.start = None
        self.end = None
        self._tracer = tracer
        self.parent = parent
        self.trace_id = trace_id

    def set(self, **attributes):
        """Attach attributes to the span; returns the span for chaining."""
        self.attributes.update(attributes)
        return self

    @property
    def duration_ms(self):
        """Elapsed milliseconds (live while the span is still open)."""
        if self.start is None:
            return 0.0
        end = self.end if self.end is not None else time.perf_counter()
        return (end - self.start) * 1000.0

    def __enter__(self):
        self.start = time.perf_counter()
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        self.end = time.perf_counter()
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return False

    def to_dict(self):
        """Nested plain-dict form (JSON-serializable)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "duration_ms": self.duration_ms,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def walk(self):
        """Yield this span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self):
        return f"Span({self.name!r}, {self.duration_ms:.3f}ms)"


class Tracer:
    """Hands out nesting spans; retains finished roots in a ring buffer."""

    def __init__(self, max_roots=256):
        self._local = threading.local()
        self._finished = deque(maxlen=max_roots)
        self._lock = threading.Lock()
        # thread ident -> that thread's open-span stack (the list object
        # itself; only its owning thread mutates it).  The sampling
        # profiler reads these cross-thread to attribute stack samples to
        # mediation stages — see ``active_stages``.
        self._thread_stacks = {}

    # -- span lifecycle ----------------------------------------------------

    def span(self, name, parent=None, trace_id=None, **attributes):
        """Create a span; enter it (``with``) to start the clock.

        ``parent`` explicitly parents the span under an open span from
        *another* thread (see :class:`Span`); it is ignored when this
        thread already has an open span to nest under.  ``trace_id``
        pins the span to an existing trace; left ``None`` it inherits
        from the enclosing span, the explicit parent, or the ambient
        context installed by :meth:`activate` — and a root span with no
        inheritance source mints a fresh id.
        """
        return Span(name, self, attributes, parent=parent, trace_id=trace_id)

    def current(self):
        """The innermost open span on this thread (or None)."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def current_trace_id(self):
        """The trace id in effect on this thread (or None).

        Resolution order: innermost open span, then the ambient context
        installed by :meth:`activate`.
        """
        stack = getattr(self._local, "stack", None)
        if stack:
            return stack[-1].trace_id
        ambient = getattr(self._local, "ambient", None)
        return ambient[0] if ambient else None

    @contextlib.contextmanager
    def activate(self, trace_id=None, parent=None):
        """Install an ambient trace context on *this* thread.

        Root spans opened while the context is active inherit
        ``trace_id`` (minted fresh when ``None``) and — when ``parent``
        is given — attach under that cross-thread parent span exactly as
        if it had been passed to :meth:`span` explicitly.  Contexts nest;
        the previous ambient context is restored on exit.  This is how a
        captured :class:`~repro.telemetry.obs.context.TraceContext` is
        restored on executor workers and the WAL writer thread.
        """
        if trace_id is None:
            trace_id = new_trace_id()
        previous = getattr(self._local, "ambient", None)
        self._local.ambient = (trace_id, parent)
        try:
            yield trace_id
        finally:
            self._local.ambient = previous

    def _push(self, span):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
            with self._lock:
                self._thread_stacks[threading.get_ident()] = stack
        if stack:
            parent = stack[-1]
            parent.children.append(span)
            if span.trace_id is None:
                span.trace_id = parent.trace_id
        else:
            if span.parent is None:
                ambient = getattr(self._local, "ambient", None)
                if ambient is not None:
                    if span.trace_id is None:
                        span.trace_id = ambient[0]
                    span.parent = ambient[1]
            if span.parent is not None:
                # CPython list.append is atomic, so cross-thread children
                # attach safely even while the parent is still open.
                span.parent.children.append(span)
                if span.trace_id is None:
                    span.trace_id = span.parent.trace_id
            if span.trace_id is None:
                span.trace_id = new_trace_id()
        stack.append(span)

    def _pop(self, span):
        stack = getattr(self._local, "stack", None)
        if not stack or stack[-1] is not span:
            return  # unbalanced exit; drop silently rather than corrupt
        stack.pop()
        if not stack and span.parent is None:
            with self._lock:
                self._finished.append(span)

    def active_stages(self):
        """``{thread_ident: (stage_name, trace_id)}`` for open spans.

        A cross-thread snapshot of the innermost open span per thread,
        used by the sampling profiler to attribute stack samples to
        mediation lifecycle stages.  Reading a list another thread
        appends to is safe under the GIL; a momentarily torn read costs
        one mis-attributed sample, never a crash.
        """
        with self._lock:
            items = list(self._thread_stacks.items())
        stages = {}
        dead = []
        for ident, stack in items:
            if stack:
                top = stack[-1]
                stages[ident] = (top.name, top.trace_id)
            elif not any(t.ident == ident for t in threading.enumerate()):
                dead.append(ident)
        if dead:
            with self._lock:
                for ident in dead:
                    self._thread_stacks.pop(ident, None)
        return stages

    # -- inspection --------------------------------------------------------

    @property
    def finished(self):
        """Finished root spans, oldest first."""
        with self._lock:
            return list(self._finished)

    def last_root(self):
        """The most recently finished root span (or None)."""
        with self._lock:
            return self._finished[-1] if self._finished else None

    def reset(self):
        """Drop all finished spans (open spans are unaffected)."""
        with self._lock:
            self._finished.clear()


class NoopSpan:
    """A span that records nothing; one shared instance serves all sites."""

    __slots__ = ()

    def set(self, **attributes):
        return self

    @property
    def duration_ms(self):
        return 0.0

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def to_dict(self):
        return {"name": "<noop>", "trace_id": None, "duration_ms": 0.0,
                "attributes": {}, "children": []}


NOOP_SPAN = NoopSpan()
NoopSpan.trace_id = None
NoopSpan.parent = None


class NoopTracer:
    """Tracer used when telemetry is disabled: allocation-free spans."""

    __slots__ = ()

    def span(self, name, parent=None, trace_id=None, **attributes):
        return NOOP_SPAN

    def current(self):
        return None

    def current_trace_id(self):
        return None

    def activate(self, trace_id=None, parent=None):
        return contextlib.nullcontext(trace_id)

    def active_stages(self):
        return {}

    @property
    def finished(self):
        return []

    def last_root(self):
        return None

    def reset(self):
        pass


NOOP_TRACER = NoopTracer()
