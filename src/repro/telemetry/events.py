"""The structured event log — the pipeline's durable diagnostic stream.

Spans answer "where did the time go" and metrics answer "how often"; the
event log answers "*what happened*, in order" — refusals, violation
notices, breaker transitions, cache invalidations, snooper-watch alerts —
as structured, timestamped records a human or a downstream collector can
replay.  The paper's disclosure argument (§3.3, Figure 1) needs exactly
this: privacy is violated by *sequences* of individually-safe queries, so
the sequence itself must be observable after the fact.

* :class:`Event` — one named occurrence with a monotonic sequence number,
  a wall-clock timestamp, and a flat attribute dict;
* :class:`EventLog` — a thread-safe bounded ring of recent events, with
  an optional **sink** every emitted event is offered to;
* :class:`JsonlSink` — an asynchronous JSON-Lines file writer with a
  bounded hand-off queue: when the queue is full the event is *dropped*
  (and counted) rather than blocking the query path — backpressure never
  reaches ``pose()``.

When telemetry is disabled every component holds :data:`NOOP_EVENTS`,
whose ``emit`` allocates nothing and returns ``None``, so the disabled
query path stays allocation-free (the overhead-guard test in
``tests/telemetry/test_overhead.py`` pins this).
"""

from __future__ import annotations

import json
import queue
import threading
import time
from collections import deque

from repro.errors import ReproError

#: Sentinel shutting down a sink's writer thread.
_CLOSE = object()


class Event:
    """One structured occurrence in the pipeline."""

    __slots__ = ("seq", "name", "ts", "attributes")

    def __init__(self, seq, name, ts, attributes):
        self.seq = seq
        self.name = name
        self.ts = ts  # wall-clock (time.time) seconds
        self.attributes = attributes

    def to_dict(self):
        """Flat, JSON-serializable form (the JSONL sink's record shape)."""
        return {
            "seq": self.seq,
            "name": self.name,
            "ts": self.ts,
            "attributes": dict(self.attributes),
        }

    def __repr__(self):
        return f"Event(#{self.seq} {self.name} {self.attributes})"


class EventLog:
    """Thread-safe bounded ring of events, with an optional sink.

    ``emit()`` is the single write path: it stamps a sequence number,
    appends to the ring (oldest events fall off), and offers the event to
    the sink if one is attached.  A sink that cannot keep up *drops* the
    event — ``dropped_events`` counts every loss, ring displacement is
    not a loss (the ring is a window by design).
    """

    def __init__(self, max_events=2048, sink=None, clock=time.time):
        if max_events < 1:
            raise ReproError("max_events must be >= 1")
        self._ring = deque(maxlen=max_events)
        self._lock = threading.Lock()
        self._seq = 0
        self._clock = clock
        self.sink = sink
        self._listeners = []

    @property
    def enabled(self):
        return True

    def subscribe(self, listener):
        """Register ``listener(event)``, called synchronously after every
        emit (outside the ring lock).

        Listeners are for in-process reactions — the flight recorder's
        anomaly triggers, the persistence epoch bridge — and must be
        fast and non-raising; a listener exception propagates to the
        emitter.  Returns ``listener`` so callers can keep the handle
        for :meth:`unsubscribe`.
        """
        with self._lock:
            self._listeners = [*self._listeners, listener]
        return listener

    def unsubscribe(self, listener):
        """Remove a previously subscribed listener (missing is a no-op)."""
        with self._lock:
            self._listeners = [
                entry for entry in self._listeners if entry is not listener
            ]

    def emit(self, name, **attributes):
        """Record one event; returns it."""
        with self._lock:
            self._seq += 1
            event = Event(self._seq, name, self._clock(), attributes)
            self._ring.append(event)
        sink = self.sink
        if sink is not None:
            sink.offer(event.to_dict())
        # copy-on-write list: safe to read without the lock, and the
        # common no-listener case costs one truthiness check.
        for listener in self._listeners:
            listener(event)
        return event

    # -- reading -----------------------------------------------------------

    def events(self, name=None, requester=None):
        """Retained events, oldest first, optionally filtered.

        ``name`` matches exactly or as a dotted prefix (``"cache"``
        matches ``cache.invalidation``); ``requester`` matches the
        event's ``requester`` attribute.
        """
        with self._lock:
            snapshot = list(self._ring)
        if name is not None:
            prefix = name + "."
            snapshot = [e for e in snapshot
                        if e.name == name or e.name.startswith(prefix)]
        if requester is not None:
            snapshot = [e for e in snapshot
                        if e.attributes.get("requester") == requester]
        return snapshot

    def tail(self, n=20):
        """The ``n`` newest events, oldest first."""
        with self._lock:
            snapshot = list(self._ring)
        return snapshot[-n:]

    def mark(self):
        """The current sequence number (for :meth:`since` windows)."""
        with self._lock:
            return self._seq

    def since(self, mark):
        """Events emitted after sequence number ``mark``, oldest first."""
        with self._lock:
            return [e for e in self._ring if e.seq > mark]

    @property
    def dropped_events(self):
        """Events lost to sink backpressure (ring displacement excluded)."""
        sink = self.sink
        return sink.dropped if sink is not None else 0

    def __len__(self):
        with self._lock:
            return len(self._ring)

    def clear(self):
        """Drop the ring (sequence numbers keep advancing)."""
        with self._lock:
            self._ring.clear()

    def close(self):
        """Close the attached sink, if any (flushes pending events)."""
        sink = self.sink
        if sink is not None:
            sink.close()

    def __repr__(self):
        return f"EventLog(n={len(self)}, seq={self.mark()})"


class JsonlSink:
    """Asynchronous JSON-Lines writer with drop-on-backpressure.

    Events are handed to a daemon writer thread through a bounded queue;
    ``offer()`` never blocks — a full queue drops the record and counts
    it in ``dropped``.  ``close()`` flushes everything already queued and
    joins the writer.  The output is one JSON object per line, append-mode,
    so several runs can share a file and ``python -m repro.telemetry.report``
    can replay it.
    """

    def __init__(self, path, max_queue=1024, encoding="utf-8"):
        if max_queue < 1:
            raise ReproError("max_queue must be >= 1")
        self.path = str(path)
        self._queue = queue.Queue(maxsize=max_queue)
        self._dropped = 0
        self._dropped_lock = threading.Lock()
        self.written = 0
        self._closed = False
        self._encoding = encoding
        self._thread = threading.Thread(
            target=self._drain, name="repro-jsonl-sink", daemon=True
        )
        self._thread.start()

    @property
    def dropped(self):
        with self._dropped_lock:
            return self._dropped

    def offer(self, record):
        """Enqueue ``record`` (a dict); returns False when dropped."""
        if self._closed:
            return self._drop()
        try:
            self._queue.put_nowait(record)
            return True
        except queue.Full:
            return self._drop()

    def _drop(self):
        with self._dropped_lock:
            self._dropped += 1
        return False

    def _drain(self):
        with open(self.path, "a", encoding=self._encoding) as handle:
            while True:
                record = self._queue.get()
                if record is _CLOSE:
                    handle.flush()
                    return
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                # repro-lint: disable=REP001,REP011 -- only the single
                # writer thread mutates `written`; cross-thread reads
                # are advisory (repr, tests poll after close()).
                self.written += 1
                if self._queue.empty():
                    handle.flush()

    def close(self, timeout=5.0):
        """Stop accepting events, flush the queue, join the writer."""
        if self._closed:
            return
        # repro-lint: disable=REP001,REP011 -- benign single-flag race:
        # a concurrent offer() at worst enqueues before the blocking
        # _CLOSE sentinel below, which still flushes it.
        self._closed = True
        # blocking put: everything offered before close() still lands
        self._queue.put(_CLOSE)
        self._thread.join(timeout=timeout)

    def __repr__(self):
        return (f"JsonlSink({self.path!r}, written={self.written}, "
                f"dropped={self.dropped})")


class NoopEventLog:
    """Event log used when telemetry is disabled: records nothing."""

    __slots__ = ()
    sink = None
    dropped_events = 0

    @property
    def enabled(self):
        return False

    def emit(self, name, **attributes):
        return None

    def subscribe(self, listener):
        return listener

    def unsubscribe(self, listener):
        pass

    def events(self, name=None, requester=None):
        return []

    def tail(self, n=20):
        return []

    def mark(self):
        return 0

    def since(self, mark):
        return []

    def __len__(self):
        return 0

    def clear(self):
        pass

    def close(self):
        pass


NOOP_EVENTS = NoopEventLog()


def resolve_events(events=None, max_events=2048):
    """Normalize an ``events`` constructor argument into an event log.

    ``None``/``True`` → a fresh :class:`EventLog`; ``False`` →
    :data:`NOOP_EVENTS`; a string or path-like → an :class:`EventLog`
    draining into a :class:`JsonlSink` at that path; an existing
    :class:`EventLog`/:class:`NoopEventLog` passes through.
    """
    if events is None or events is True:
        return EventLog(max_events=max_events)
    if events is False:
        return NOOP_EVENTS
    if isinstance(events, (EventLog, NoopEventLog)):
        return events
    if isinstance(events, (str, bytes)) or hasattr(events, "__fspath__"):
        return EventLog(max_events=max_events, sink=JsonlSink(events))
    raise ReproError(
        "events must be None, a bool, a JSONL path, or an EventLog, "
        f"not {type(events).__name__}"
    )
