"""``python -m repro.telemetry.report`` — per-requester disclosure summaries.

Replays a JSON-Lines event stream (written by the
:class:`~repro.telemetry.events.JsonlSink`, or dumped via
:func:`repro.telemetry.http.dump_events`) and, optionally, a disclosure
audit journal (``PrivateIye.audit_journal().to_jsonl()``), and renders
one summary row per requester:

* poses seen, answered vs refused (with the refusal-kind breakdown);
* cumulative disclosure ``1 − Π(1 − loss_i)`` over the requester's
  answered queries (from the journal when given, else from pose events);
* snooper-watch alerts attributed to the requester;
* journal chain verification status when a journal is supplied.

Usage::

    python -m repro.telemetry.report events.jsonl
    python -m repro.telemetry.report events.jsonl --journal journal.jsonl
    python -m repro.telemetry.report events.jsonl --format json
    python -m repro.telemetry.report events.jsonl --requester epi

This module is the sanctioned home for human-facing output (REP008:
every other ``src/repro`` module must route diagnostics through the
event log, not stdout).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ReproError

#: Event names the summary understands (emitted by the mediation engine
#: and the observatory; see docs/observability.md for the full schema).
POSE_ANSWERED = "pose.answered"
POSE_REFUSED = "pose.refused"
ALERT = "snooperwatch.alert"


def load_jsonl(path):
    """Parse one JSON object per non-blank line; returns a list of dicts."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ReproError(
                    f"{path}:{number}: not valid JSON ({error})"
                ) from error
            if not isinstance(record, dict):
                raise ReproError(f"{path}:{number}: expected a JSON object")
            records.append(record)
    return records


def summarize(events, journal_records=None):
    """Fold events (+ optional journal records) into per-requester rows.

    Returns ``{"requesters": {name: row}, "totals": {...}}`` where each
    row carries poses / answered / refused / refusal_kinds / alerts /
    cumulative_disclosure / last_ts.
    """
    rows = {}

    def row(requester):
        return rows.setdefault(requester, {
            "poses": 0, "answered": 0, "refused": 0,
            "refusal_kinds": {}, "alerts": 0,
            "cumulative_disclosure": 0.0, "last_ts": None,
        })

    for event in events:
        name = event.get("name")
        attributes = event.get("attributes", {})
        requester = attributes.get("requester")
        if requester is None:
            continue
        entry = row(requester)
        ts = event.get("ts")
        if ts is not None and (entry["last_ts"] is None
                               or ts > entry["last_ts"]):
            entry["last_ts"] = ts
        if name == POSE_ANSWERED:
            entry["poses"] += 1
            entry["answered"] += 1
            cumulative = attributes.get("cumulative_loss")
            if cumulative is not None:
                entry["cumulative_disclosure"] = max(
                    entry["cumulative_disclosure"], float(cumulative)
                )
        elif name == POSE_REFUSED:
            entry["poses"] += 1
            entry["refused"] += 1
            kind = attributes.get("kind", "ReproError")
            entry["refusal_kinds"][kind] = (
                entry["refusal_kinds"].get(kind, 0) + 1
            )
        elif name == ALERT:
            entry["alerts"] += 1

    # the journal is authoritative for disclosure when supplied
    for record in journal_records or ():
        requester = record.get("requester")
        if requester is None:
            continue
        entry = row(requester)
        cumulative = record.get("cumulative_loss")
        if cumulative is not None:
            entry["cumulative_disclosure"] = max(
                entry["cumulative_disclosure"], float(cumulative)
            )

    totals = {
        "requesters": len(rows),
        "poses": sum(r["poses"] for r in rows.values()),
        "answered": sum(r["answered"] for r in rows.values()),
        "refused": sum(r["refused"] for r in rows.values()),
        "alerts": sum(r["alerts"] for r in rows.values()),
    }
    return {"requesters": rows, "totals": totals}


def render_text(summary, journal_status=None):
    """The summary as an aligned human-readable table."""
    rows = summary["requesters"]
    lines = ["DISCLOSURE OBSERVATORY — per-requester summary", ""]
    header = (f"{'requester':<20} {'poses':>6} {'answered':>9} "
              f"{'refused':>8} {'alerts':>7} {'cum. disclosure':>16}")
    lines.append(header)
    lines.append("-" * len(header))
    for requester in sorted(rows):
        entry = rows[requester]
        lines.append(
            f"{requester:<20} {entry['poses']:>6} {entry['answered']:>9} "
            f"{entry['refused']:>8} {entry['alerts']:>7} "
            f"{entry['cumulative_disclosure']:>16.4f}"
        )
        for kind in sorted(entry["refusal_kinds"]):
            lines.append(
                f"{'':<20}   refused[{kind}] ×{entry['refusal_kinds'][kind]}"
            )
    totals = summary["totals"]
    lines.append("")
    lines.append(
        f"totals: {totals['requesters']} requesters, "
        f"{totals['poses']} poses ({totals['answered']} answered / "
        f"{totals['refused']} refused), {totals['alerts']} alerts"
    )
    if journal_status is not None:
        lines.append(f"journal chain: {journal_status}")
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.report",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("events", help="JSONL event stream to replay")
    parser.add_argument("--journal", help="disclosure audit journal (JSONL)")
    parser.add_argument("--requester", help="restrict to one requester")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    args = parser.parse_args(argv)

    try:
        events = load_jsonl(args.events)
        journal_records = load_jsonl(args.journal) if args.journal else None
    except (OSError, ReproError) as error:
        print(f"report: {error}", file=sys.stderr)
        return 2

    journal_status = None
    if journal_records is not None:
        from repro.observatory.journal import verify_records
        ok, bad_seq = verify_records(journal_records)
        journal_status = (
            "VERIFIED" if ok else f"TAMPERED (first bad record seq={bad_seq})"
        )

    summary = summarize(events, journal_records)
    if args.requester is not None:
        row = summary["requesters"].get(args.requester)
        summary["requesters"] = (
            {args.requester: row} if row is not None else {}
        )

    if args.format == "json":
        payload = dict(summary)
        if journal_status is not None:
            payload["journal_chain"] = journal_status
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_text(summary, journal_status))
    return 0 if journal_status in (None, "VERIFIED") else 1


if __name__ == "__main__":
    sys.exit(main())
