"""Exporters: Chrome trace events, Prometheus text format, events JSONL.

The in-process instruments (spans, metrics, events) become useful at
production scale only when external tools can consume them.  Three
zero-dependency encoders:

* :func:`chrome_trace` — the span tree as a Chrome *trace-event* JSON
  document (``{"traceEvents": [...]}``, ``"ph": "X"`` complete events
  with microsecond timestamps), loadable in Perfetto / ``chrome://tracing``;
* :func:`prometheus_text` — the metrics registry in the Prometheus text
  exposition format (version 0.0.4): counters as ``_total`` samples,
  gauges verbatim, histograms as ``_count`` / ``_sum`` plus quantile
  samples in summary style;
* :func:`events_jsonl` — the event ring as JSON Lines, the same record
  shape the asynchronous :class:`~repro.telemetry.events.JsonlSink`
  writes, so live rings and persisted files replay identically.

The stdlib HTTP endpoint (:mod:`repro.telemetry.http`) serves the first
two at ``/trace`` and ``/metrics``; the report CLI
(:mod:`repro.telemetry.report`) consumes the third.
"""

from __future__ import annotations

import json
import re

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))


# -- Chrome trace-event format -------------------------------------------------

def chrome_trace(roots, pid=1, tid=1):
    """Encode finished root spans as a Chrome trace-event document.

    ``roots`` is an iterable of :class:`~repro.telemetry.tracer.Span`
    (e.g. ``tracer.finished``); a single span is accepted too.  Every
    span becomes a complete event (``"ph": "X"``) whose ``ts``/``dur``
    are microseconds on the span's own ``perf_counter`` clock — absolute
    origin is arbitrary, nesting is what the viewer renders.  Returns a
    JSON-serializable dict.
    """
    if roots is None:
        roots = []
    if hasattr(roots, "walk"):  # a single span
        roots = [roots]
    trace_events = []
    for root in roots:
        for span in root.walk():
            if span.start is None:
                continue
            end = span.end if span.end is not None else span.start
            args = _json_safe(span.attributes)
            if getattr(span, "trace_id", None) is not None:
                # cross-thread correlation key: spans of one pose share
                # it even when they render in different lanes
                args["trace_id"] = span.trace_id
            trace_events.append({
                "name": span.name,
                "ph": "X",
                "cat": "mediation",
                "ts": span.start * 1e6,
                "dur": max(0.0, (end - span.start) * 1e6),
                "pid": pid,
                "tid": tid,
                "args": args,
            })
    trace_events.sort(key=lambda e: e["ts"])
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def _json_safe(attributes):
    """Attributes coerced to JSON-encodable values (repr as last resort)."""
    safe = {}
    for key, value in attributes.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            safe[str(key)] = value
        else:
            safe[str(key)] = repr(value)
    return safe


# -- Prometheus text exposition ------------------------------------------------

def metric_name(name, prefix="repro"):
    """A raw instrument name as a valid Prometheus metric name.

    Dots (the registry's namespacing) become underscores; any other
    illegal character is replaced too.  ``prefix`` is prepended so the
    exported namespace is recognizable (``mediator.pose_ms`` →
    ``repro_mediator_pose_ms``).
    """
    flat = _NAME_SANITIZE.sub("_", name)
    full = f"{prefix}_{flat}" if prefix else flat
    if not _NAME_OK.match(full):
        full = "_" + full
    return full


def prometheus_text(snapshot, prefix="repro"):
    """Render a ``metrics_snapshot()`` dict in Prometheus text format.

    Counters gain the conventional ``_total`` suffix; histograms export
    summary-style quantiles plus ``_count`` and ``_sum``.  The output
    ends with a newline (required by the exposition format).
    """
    lines = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        flat = metric_name(name, prefix) + "_total"
        lines.append(f"# HELP {flat} Counter {name!r} from the repro registry.")
        lines.append(f"# TYPE {flat} counter")
        lines.append(f"{flat} {_format_value(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        flat = metric_name(name, prefix)
        lines.append(f"# HELP {flat} Gauge {name!r} from the repro registry.")
        lines.append(f"# TYPE {flat} gauge")
        lines.append(f"{flat} {_format_value(value)}")
    for name, summary in sorted(snapshot.get("histograms", {}).items()):
        flat = metric_name(name, prefix)
        lines.append(f"# HELP {flat} Histogram {name!r} from the repro "
                     "registry (windowed quantiles).")
        lines.append(f"# TYPE {flat} summary")
        for quantile, key in _QUANTILES:
            lines.append(
                f'{flat}{{quantile="{quantile}"}} '
                f"{_format_value(summary.get(key, 0.0))}"
            )
        count = summary.get("count", 0)
        mean = summary.get("mean", 0.0)
        lines.append(f"{flat}_count {_format_value(count)}")
        # lifetime sum is not in the summary dict; approximate from the
        # window when absent so the pair stays self-consistent
        total = summary.get("sum", mean * count)
        lines.append(f"{flat}_sum {_format_value(total)}")
    return "\n".join(lines) + "\n"


def _format_value(value):
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


# -- events as JSON Lines ------------------------------------------------------

def events_jsonl(events):
    """Encode events (ring objects or dicts) as JSON Lines text."""
    lines = []
    for event in events:
        record = event.to_dict() if hasattr(event, "to_dict") else dict(event)
        lines.append(json.dumps(record, sort_keys=True, default=repr))
    return "\n".join(lines) + ("\n" if lines else "")
