"""A stdlib HTTP endpoint exposing the observatory's instruments.

``TelemetryServer`` wraps :class:`http.server.ThreadingHTTPServer` around
one :class:`~repro.telemetry.Telemetry` instance (pass the system's —
``PrivateIye(telemetry=True).telemetry``) and serves:

* ``GET /metrics`` — Prometheus text exposition of the metrics registry
  (scrape this);
* ``GET /events``  — recent structured events as JSON (``?n=`` bounds the
  tail, default 100);
* ``GET /trace``   — the finished span trees as a Chrome trace-event
  document (save and load into Perfetto);
* ``GET /healthz`` — liveness JSON (always ``{"status": "ok"}`` while the
  server thread runs).

With a :class:`~repro.telemetry.obs.PerfObservatory` attached
(``TelemetryServer(telemetry, obs=observatory)``), three more routes:

* ``GET /profile`` — the sampling profiler's collapsed stacks as plain
  text (``?limit=`` bounds the stack count);
* ``GET /slo``     — the SLO engine's burn-rate status as JSON;
* ``GET /flight``  — the newest flight-recorder bundle as JSON (404
  until one has been dumped; ``POST``-free by design — dumps are
  triggered by anomalies or the CLI, never by a scrape).

The server binds an ephemeral port by default (``port=0``) and runs on a
daemon thread; it holds no state of its own, so scraping is always safe —
every response is rendered from a snapshot taken under the instrument
locks.  Access logging is routed into the event log (``http.request``
events) instead of stderr, which keeps REP008's "all diagnostics flow
through the event log" invariant inside the telemetry package too.

Usage::

    system = PrivateIye(telemetry=True)
    server = TelemetryServer(system.telemetry)
    address = server.start()           # ("127.0.0.1", 43121)
    ...
    server.close()
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.errors import ReproError
from repro.telemetry.export import chrome_trace, events_jsonl, prometheus_text

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    """Routes the four observatory paths; everything else is 404."""

    server_version = "ReproTelemetry/1.0"
    protocol_version = "HTTP/1.1"

    def do_GET(self):  # noqa: N802 — http.server's naming contract
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        telemetry = self.server.telemetry
        if route == "/metrics":
            body = prometheus_text(telemetry.metrics.snapshot())
            self._send(200, PROMETHEUS_CONTENT_TYPE, body)
        elif route == "/events":
            params = parse_qs(parsed.query)
            try:
                n = int(params.get("n", ["100"])[0])
            except ValueError:
                self._send(400, "application/json",
                           json.dumps({"error": "n must be an integer"}))
                return
            events = [e.to_dict() for e in telemetry.events.tail(n)]
            self._send(200, "application/json", json.dumps({
                "events": events,
                "dropped_events": telemetry.events.dropped_events,
            }))
        elif route == "/trace":
            document = chrome_trace(telemetry.tracer.finished)
            self._send(200, "application/json", json.dumps(document))
        elif route == "/healthz":
            self._send(200, "application/json", json.dumps({
                "status": "ok",
                "telemetry_enabled": telemetry.enabled,
                "events_retained": len(telemetry.events),
            }))
        elif route in ("/profile", "/slo", "/flight"):
            self._send_obs(route, parsed)
        else:
            self._send(404, "application/json",
                       json.dumps({"error": f"unknown path {route!r}"}))

    def _send_obs(self, route, parsed):
        """Serve the observatory routes (404 when no obs is attached)."""
        obs = getattr(self.server, "obs", None)
        if obs is None:
            self._send(404, "application/json", json.dumps(
                {"error": "no performance observatory attached"}
            ))
            return
        if route == "/profile":
            params = parse_qs(parsed.query)
            try:
                limit = int(params.get("limit", ["100"])[0])
            except ValueError:
                self._send(400, "application/json", json.dumps(
                    {"error": "limit must be an integer"}
                ))
                return
            self._send(200, "text/plain; charset=utf-8",
                       obs.profiler.collapsed(limit=limit) + "\n")
        elif route == "/slo":
            self._send(200, "application/json",
                       json.dumps(obs.slo.status(), sort_keys=True))
        else:  # /flight
            bundle = obs.recorder.last()
            if bundle is None:
                self._send(404, "application/json", json.dumps(
                    {"error": "no flight bundle recorded yet"}
                ))
            else:
                self._send(200, "application/json",
                           json.dumps(bundle, sort_keys=True))

    def _send(self, status, content_type, body):
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        # diagnostics flow through the event log, never stderr (REP008)
        self.server.telemetry.events.emit(
            "http.request", client=self.client_address[0],
            line=format % args,
        )


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, telemetry, obs=None):
        super().__init__(address, _Handler)
        self.telemetry = telemetry
        self.obs = obs


class TelemetryServer:
    """Lifecycle wrapper: bind, serve on a daemon thread, close.

    ``obs`` optionally attaches a :class:`~repro.telemetry.obs.
    PerfObservatory`, enabling the ``/profile``, ``/slo``, and
    ``/flight`` routes.
    """

    def __init__(self, telemetry, host="127.0.0.1", port=0, obs=None):
        self.telemetry = telemetry
        self.obs = obs
        self._address = (host, port)
        self._server = None
        self._thread = None

    @property
    def address(self):
        """``(host, port)`` once started."""
        if self._server is None:
            raise ReproError("server not started")
        return self._server.server_address[:2]

    @property
    def url(self):
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self):
        """Bind and serve; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise ReproError("server already started")
        self._server = _Server(self._address, self.telemetry, obs=self.obs)
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-telemetry-http", daemon=True,
        )
        self._thread.start()
        return self.address

    def close(self):
        """Stop serving and release the socket (idempotent)."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __repr__(self):
        state = "stopped" if self._server is None else self.url
        return f"TelemetryServer({state})"


def dump_events(telemetry, path):
    """Write the current event ring to ``path`` as JSON Lines.

    A synchronous one-shot counterpart to the asynchronous
    :class:`~repro.telemetry.events.JsonlSink` — handy before feeding
    ``python -m repro.telemetry.report``.
    """
    text = events_jsonl(telemetry.events.events())
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return path
