"""A process-local metrics registry: counters, gauges, histograms.

Metrics are named, created on first use, and live for the lifetime of the
owning :class:`~repro.telemetry.Telemetry`.  The registry is intentionally
minimal — no labels, no exporters — because the reproduction's consumers
are the benchmark harness and ``PrivateIye.metrics_snapshot()``; a
production deployment would map these onto its own metrics fabric.

* :class:`Counter` — monotonically increasing count (queries answered,
  warehouse hits, refusals by kind);
* :class:`Gauge` — last-written value (materialized keys, history length);
* :class:`Histogram` — bounded reservoir of observations with
  ``p50``/``p95``/``p99`` summaries (stage latencies, loss values).

When telemetry is disabled the :class:`NoopMetrics` registry returns one
shared no-op instrument for every name, so instrumented call sites cost a
method call and nothing else.
"""

from __future__ import annotations

import threading
from collections import deque


class Counter:
    """Monotonically increasing counter.

    Thread-safe: fan-out workers hammer the same instrument, and the
    read-modify-write of ``value += amount`` is not atomic under the
    GIL (the interpreter can switch threads between the read and the
    store), so increments are taken under a per-instrument lock.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount=1):
        with self._lock:
            self.value += amount
            return self.value

    def __repr__(self):
        return f"Counter({self.name!r}={self.value})"


class Gauge:
    """Last-value-wins instrument (a single store; atomic under the GIL)."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0.0

    def set(self, value):
        self.value = value
        return self.value

    def __repr__(self):
        return f"Gauge({self.name!r}={self.value})"


class Histogram:
    """Reservoir of observations with percentile summaries.

    Keeps the most recent ``max_observations`` values (a sliding window,
    not a statistical sample): recency matters more than completeness for
    watching a live pipeline, and the bound keeps memory flat under heavy
    traffic.

    Thread-safe: ``count``/``total`` updates and window snapshots run
    under a per-instrument lock (iterating a deque while another thread
    appends raises ``RuntimeError``, and the lifetime accumulators are
    read-modify-write).
    """

    __slots__ = ("name", "_values", "count", "total", "_lock")

    def __init__(self, name, max_observations=2048):
        self.name = name
        self._values = deque(maxlen=max_observations)
        self.count = 0        # lifetime observations, beyond the window
        self.total = 0.0      # lifetime sum
        self._lock = threading.Lock()

    def observe(self, value):
        value = float(value)
        with self._lock:
            self._values.append(value)
            self.count += 1
            self.total += value

    def _snapshot_state(self):
        """Atomic ``(window, count, total)`` copy; O(n) under the lock.

        Sorting happens *outside* the lock so concurrent ``observe``
        calls block only for the list copy — exporters and percentile
        readers never stall the record path on an O(n log n) sort.
        """
        with self._lock:
            return list(self._values), self.count, self.total

    def _window(self):
        values, _, _ = self._snapshot_state()
        values.sort()
        return values

    def window(self):
        """Sorted copy of the current observation window.

        Public for readers that need the raw distribution rather than
        fixed percentiles — the SLO engine's latency objectives count
        the fraction of observations beyond a threshold.
        """
        return self._window()

    def percentile(self, q):
        """The ``q``-th percentile (0..100) of the windowed observations.

        Uses nearest-rank on a sorted copy — exact for the window, O(n log n)
        per call; summaries are read rarely relative to writes.
        """
        return self._rank(self._window(), q)

    @staticmethod
    def _rank(ordered, q):
        if not ordered:
            return 0.0
        if len(ordered) == 1:
            return ordered[0]
        rank = max(0, min(len(ordered) - 1,
                          round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self):
        """``{count, sum, mean, min, max, p50, p95, p99}``.

        ``count`` and ``sum`` are lifetime accumulators (what a
        Prometheus summary exports); the remaining statistics cover the
        sliding window.  All fields come from one atomic state copy, so
        the summary is internally consistent even under concurrent
        writers (p50 <= p95 <= p99 always holds for the copied window).
        """
        ordered, count, total = self._snapshot_state()
        ordered.sort()
        if not ordered:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0,
                    "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": count,
            "sum": total,
            "mean": sum(ordered) / len(ordered),
            "min": ordered[0],
            "max": ordered[-1],
            "p50": self._rank(ordered, 50),
            "p95": self._rank(ordered, 95),
            "p99": self._rank(ordered, 99),
        }

    def __repr__(self):
        return f"Histogram({self.name!r}, n={self.count})"


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    def counter(self, name):
        return self._get(self._counters, name, Counter)

    def gauge(self, name):
        return self._get(self._gauges, name, Gauge)

    def histogram(self, name):
        return self._get(self._histograms, name, Histogram)

    def _get(self, table, name, factory):
        instrument = table.get(name)
        if instrument is None:
            with self._lock:
                instrument = table.setdefault(name, factory(name))
        return instrument

    def snapshot(self):
        """Plain-dict view of every instrument (JSON-serializable).

        Instrument references are copied under the registry lock, then
        read outside it — a snapshot never holds the lock across the
        per-histogram summary work, so exporters cannot stall writers
        registering new instruments.
        """
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        return {
            "counters": {n: c.value for n, c in counters},
            "gauges": {n: g.value for n, g in gauges},
            "histograms": {n: h.summary() for n, h in histograms},
        }

    def reset(self):
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


class _NoopInstrument:
    """Stands in for every counter/gauge/histogram when disabled."""

    __slots__ = ()
    name = "<noop>"
    value = 0
    count = 0
    total = 0.0

    def inc(self, amount=1):
        return 0

    def set(self, value):
        return 0

    def observe(self, value):
        pass

    def percentile(self, q):
        return 0.0

    def window(self):
        return []

    def summary(self):
        return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0,
                "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}


NOOP_INSTRUMENT = _NoopInstrument()


class NoopMetrics:
    """Registry used when telemetry is disabled: shared no-op instruments."""

    __slots__ = ()

    def counter(self, name):
        return NOOP_INSTRUMENT

    def gauge(self, name):
        return NOOP_INSTRUMENT

    def histogram(self, name):
        return NOOP_INSTRUMENT

    def snapshot(self):
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def reset(self):
        pass


NOOP_METRICS = NoopMetrics()
