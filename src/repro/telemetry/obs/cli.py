"""``python -m repro.telemetry.obs`` — the observatory's operator CLI.

Four subcommands, all runnable against a built-in demo deployment (an
8-source mediation system driven through real ``pose()`` calls) so an
operator can see each surface without wiring anything:

* ``profile`` — sample the demo workload and print collapsed stacks
  (``--chrome PATH`` additionally writes a Chrome-trace file);
* ``slo``     — evaluate the stock objectives against the workload and
  print the burn-rate table;
* ``dump``    — force a flight-recorder bundle and print where it went;
* ``report``  — one JSON roll-up of profiler + SLO + recorder state.

Against a live process, prefer the HTTP surface (``/profile``, ``/slo``,
``/flight`` on the PR 7 telemetry server) — this CLI is for local
inspection and smoke-testing the observatory itself.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.telemetry.obs import PerfObservatory


def _build_demo(n_sources=8, seconds=1.0):
    """A telemetry-enabled demo system plus a pose-loop driver.

    Deferred import: ``repro.testing`` sits above the telemetry layer
    (REP004), so the CLI pulls it in only when a demo run is requested.
    """
    from repro.testing import build_flaky_system

    system, _ = build_flaky_system(n_sources, telemetry=True, seed=42)

    def drive(observatory):
        deadline = time.perf_counter() + seconds
        poses = 0
        while time.perf_counter() < deadline:
            system.engine.pose(
                "SELECT //patient/age PURPOSE research MAXLOSS 0.9",
                requester="obs-demo",
            )
            poses += 1
            observatory.slo.tick()
        return poses

    return system, drive


def _run_demo(args):
    """Spin up the observatory over the demo system; returns both."""
    system, drive = _build_demo(seconds=args.seconds)
    observatory = PerfObservatory(
        system.telemetry, hz=args.hz, bundle_dir=args.bundle_dir,
    ).start()
    try:
        poses = drive(observatory)
    finally:
        observatory.stop()
    return system, observatory, poses


def cmd_profile(args):
    """Run the demo under the profiler; print collapsed stacks."""
    _, observatory, poses = _run_demo(args)
    profiler = observatory.profiler
    print(f"# {poses} poses, {profiler.sample_count} samples "
          f"at {profiler.hz:g} hz")
    print("# stage totals:")
    for stage, count in profiler.stage_totals().items():
        print(f"#   {stage:40s} {count}")
    print(profiler.collapsed(limit=args.limit))
    if args.chrome:
        with open(args.chrome, "w", encoding="utf-8") as handle:
            json.dump(profiler.chrome_trace(), handle)
        print(f"# chrome trace written to {args.chrome}")
    return 0


def cmd_slo(args):
    """Run the demo; print the burn-rate table."""
    _, observatory, poses = _run_demo(args)
    print(f"# {poses} poses")
    header = f"{'objective':24s} {'kind':10s} {'burn':>10s}  breached"
    print(header)
    print("-" * len(header))
    for name, entry in observatory.slo.status().items():
        print(f"{name:24s} {entry['kind']:10s} "
              f"{entry['burn_instant']:10.3f}  {entry['breached']}")
    return 0


def cmd_dump(args):
    """Run the demo; force one flight bundle; print its location."""
    _, observatory, _ = _run_demo(args)
    bundle = observatory.recorder.dump(reason="cli", force=True)
    path = None
    if args.bundle_dir:
        path = f"{args.bundle_dir}/flight-{bundle['seq']:04d}.json"
    print(json.dumps({
        "seq": bundle["seq"],
        "reason": bundle["reason"],
        "spans": len(bundle["spans"]),
        "events": len(bundle["events"]),
        "path": path,
    }, indent=2))
    return 0


def cmd_report(args):
    """Run the demo; print the full observatory status as JSON."""
    _, observatory, poses = _run_demo(args)
    status = observatory.status()
    status["poses"] = poses
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def build_parser():
    """The argparse tree (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.obs",
        description="Performance-observatory CLI: profile, SLOs, "
                    "flight-recorder bundles.",
    )
    parser.add_argument("--seconds", type=float, default=1.0,
                        help="demo workload duration (default 1s)")
    parser.add_argument("--hz", type=float, default=50.0,
                        help="profiler sampling rate (default 50)")
    parser.add_argument("--bundle-dir", default=None,
                        help="directory for flight-recorder bundles")
    sub = parser.add_subparsers(dest="command", required=True)

    profile = sub.add_parser("profile", help="collapsed-stack profile")
    profile.add_argument("--limit", type=int, default=30,
                         help="max collapsed stacks to print")
    profile.add_argument("--chrome", default=None,
                         help="also write a Chrome-trace JSON file")
    profile.set_defaults(func=cmd_profile)

    slo = sub.add_parser("slo", help="burn-rate table")
    slo.set_defaults(func=cmd_slo)

    dump = sub.add_parser("dump", help="force a flight bundle")
    dump.set_defaults(func=cmd_dump)

    report = sub.add_parser("report", help="full status JSON")
    report.set_defaults(func=cmd_report)
    return parser


def main(argv=None):
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
