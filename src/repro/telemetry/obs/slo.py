"""Declarative SLOs with multi-window burn-rate evaluation.

An :class:`Objective` binds a service-level target to instruments that
already exist in the metrics registry — no new instrumentation in the
measured path.  Three kinds cover the mediator's guarantees:

* :class:`LatencyObjective` — "``mediator.pose_ms`` p99 < 50ms": the
  fraction of windowed observations under the threshold must stay at or
  above ``objective`` (e.g. 0.99).
* :class:`ErrorRateObjective` — "fan-out unavailability < 0.1%": a
  *bad* counter against a *total* counter, evaluated on per-tick deltas.
* :class:`ExactObjective` — "refusal-correctness = 100%": a counter
  that must never move (guard violations, journal chain breaks).  Any
  increment is an instant burn.

Each :meth:`SloEngine.tick` computes an instantaneous **burn rate** per
objective — error rate divided by error budget (``1 - objective``), the
SRE convention where burn 1.0 consumes the budget exactly at the rate it
refills — and folds it into two sliding windows.  A breach fires only
when *both* the short and the long window exceed ``burn_factor``: the
short window makes alerts fast, the long window makes them ignore
single-tick blips.  Breaches emit ``slo.breach`` events and invoke
registered callbacks (the flight recorder dumps on them); recovery emits
``slo.recovered``.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.errors import ReproError

#: Burn value reported when the budget is consumed by an exact-objective
#: violation (division of any error by a zero budget).
BURN_CEILING = 1e9


class Objective:
    """Base class: name + target + window/burn bookkeeping."""

    kind = "objective"

    def __init__(self, name, objective):
        if not 0.0 <= objective <= 1.0:
            raise ReproError("objective must be within [0, 1]")
        self.name = name
        self.objective = float(objective)

    @property
    def budget(self):
        """The error budget: the tolerated bad fraction."""
        return 1.0 - self.objective

    def instantaneous_burn(self, metrics):
        """Burn rate for this instant; subclasses implement."""
        raise NotImplementedError

    def describe(self):
        """Static JSON-serializable description of the objective."""
        return {"name": self.name, "kind": self.kind,
                "objective": self.objective}

    def _divide(self, bad_fraction):
        """``bad_fraction / budget`` with the zero-budget ceiling."""
        if bad_fraction <= 0.0:
            return 0.0
        if self.budget <= 0.0:
            return BURN_CEILING
        return bad_fraction / self.budget


class LatencyObjective(Objective):
    """``objective`` of windowed observations must beat ``threshold_ms``."""

    kind = "latency"

    def __init__(self, name, histogram, threshold_ms, objective=0.99):
        super().__init__(name, objective)
        self.histogram = histogram
        self.threshold_ms = float(threshold_ms)

    def instantaneous_burn(self, metrics):
        """Bad fraction = share of the current window over threshold."""
        window = metrics.histogram(self.histogram).window()
        if not window:
            return 0.0
        slow = sum(1 for value in window if value > self.threshold_ms)
        return self._divide(slow / len(window))

    def describe(self):
        info = super().describe()
        info.update(histogram=self.histogram,
                    threshold_ms=self.threshold_ms)
        return info


class ErrorRateObjective(Objective):
    """Bad-counter rate against total-counter rate, on tick deltas."""

    kind = "error_rate"

    def __init__(self, name, bad, total, objective=0.999):
        super().__init__(name, objective)
        self.bad = bad
        self.total = total
        self._last = None  # (bad_value, total_value) at previous tick

    def instantaneous_burn(self, metrics):
        """Bad fraction over the delta since the previous tick."""
        bad = metrics.counter(self.bad).value
        total = metrics.counter(self.total).value
        last, self._last = self._last, (bad, total)
        if last is None:
            return 0.0
        bad_delta = bad - last[0]
        total_delta = total - last[1]
        if total_delta <= 0:
            return 0.0
        return self._divide(bad_delta / total_delta)

    def describe(self):
        info = super().describe()
        info.update(bad=self.bad, total=self.total)
        return info


class ExactObjective(Objective):
    """A counter that must stay frozen (100% objectives).

    Models invariants like "every refusal decision is correct" where the
    error budget is zero by definition: any increment of ``counter``
    since the previous tick burns at :data:`BURN_CEILING`.
    """

    kind = "exact"

    def __init__(self, name, counter):
        super().__init__(name, objective=1.0)
        self.counter = counter
        self._last = None

    def instantaneous_burn(self, metrics):
        """Ceiling burn on any counter movement since the last tick."""
        value = metrics.counter(self.counter).value
        last, self._last = self._last, value
        if last is None or value <= last:
            return 0.0
        return BURN_CEILING

    def describe(self):
        info = super().describe()
        info.update(counter=self.counter)
        return info


class SloEngine:
    """Evaluates objectives on a cadence; emits breach/recovery events.

    ``tick()`` is the unit of evaluation — call it manually (tests, CLI)
    or let ``start(interval)`` run it on a daemon thread.  ``clock`` is
    injectable so window arithmetic is deterministic under test.
    """

    def __init__(self, telemetry, objectives=(), short_window=60.0,
                 long_window=600.0, burn_factor=1.0, clock=time.monotonic):
        if short_window <= 0 or long_window < short_window:
            raise ReproError(
                "windows must satisfy 0 < short_window <= long_window"
            )
        self.telemetry = telemetry
        self.objectives = list(objectives)
        self.short_window = float(short_window)
        self.long_window = float(long_window)
        self.burn_factor = float(burn_factor)
        self._clock = clock
        # per-objective deque of (ts, instantaneous burn); bounded by
        # long_window at tick time, hard-capped against clock abuse.
        self._history = {}
        self._breached = {}
        self._callbacks = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = None

    # -- configuration -------------------------------------------------------

    def add(self, objective):
        """Register one objective; returns it for chaining."""
        with self._lock:
            self.objectives.append(objective)
        return objective

    def on_breach(self, callback):
        """Register ``callback(objective_name, status_dict)`` to run on
        each breach transition (the flight recorder's dump hook)."""
        with self._lock:
            self._callbacks.append(callback)
        return callback

    # -- evaluation ----------------------------------------------------------

    def tick(self):
        """Evaluate every objective once; returns the status dict."""
        now = self._clock()
        metrics = self.telemetry.metrics
        status = {}
        transitions = []
        with self._lock:
            for objective in self.objectives:
                burn = objective.instantaneous_burn(metrics)
                history = self._history.setdefault(
                    objective.name, deque(maxlen=4096)
                )
                history.append((now, burn))
                while history and history[0][0] < now - self.long_window:
                    history.popleft()
                short = self._window_burn(history, now, self.short_window)
                long_ = self._window_burn(history, now, self.long_window)
                breached = (short > self.burn_factor
                            and long_ > self.burn_factor)
                entry = {
                    "kind": objective.kind,
                    "objective": objective.objective,
                    "burn_instant": burn,
                    "burn_short": short,
                    "burn_long": long_,
                    "breached": breached,
                }
                status[objective.name] = entry
                was = self._breached.get(objective.name, False)
                if breached and not was:
                    self._breached[objective.name] = True
                    transitions.append((objective.name, entry, "breach"))
                elif was and not breached:
                    self._breached[objective.name] = False
                    transitions.append((objective.name, entry, "recovered"))
            for name, entry in status.items():
                metrics.gauge(f"obs.slo.burn_short.{name}").set(
                    entry["burn_short"]
                )
        # events + callbacks run outside the engine lock: a callback
        # (flight-recorder dump) may read engine status re-entrantly.
        for name, entry, kind in transitions:
            self._announce(name, entry, kind)
        return status

    def _announce(self, name, entry, kind):
        """Emit the slo.* event and fire breach callbacks."""
        self.telemetry.events.emit(
            f"slo.{kind}", slo=name, kind=entry["kind"],
            burn_short=round(entry["burn_short"], 4),
            burn_long=round(entry["burn_long"], 4),
        )
        if kind == "breach":
            for callback in list(self._callbacks):
                callback(name, entry)

    @staticmethod
    def _window_burn(history, now, window):
        """Mean burn over ``(now - window, now]`` (0.0 when empty)."""
        values = [burn for ts, burn in history if ts > now - window]
        if not values:
            return 0.0
        return sum(values) / len(values)

    # -- reading -------------------------------------------------------------

    def status(self):
        """Last-tick burn state per objective (no evaluation)."""
        with self._lock:
            out = {}
            for objective in self.objectives:
                history = self._history.get(objective.name)
                latest = history[-1] if history else None
                out[objective.name] = {
                    **objective.describe(),
                    "burn_instant": latest[1] if latest else 0.0,
                    "breached": self._breached.get(objective.name, False),
                }
            return out

    # -- background ticker ---------------------------------------------------

    @property
    def running(self):
        """True while the ticker thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self, interval=5.0):
        """Run ``tick()`` every ``interval`` s on a daemon thread."""

        def _loop():
            while not self._stop.wait(interval):
                self.tick()

        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return self
            self._stop.clear()
            self._thread = threading.Thread(
                target=_loop, name="repro-obs-slo", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout=2.0):
        """Stop the ticker thread (no-op if not running)."""
        with self._lock:
            thread = self._thread
            self._thread = None
            if thread is None:
                return
            self._stop.set()
        # join outside the lock: tick() takes it every interval
        thread.join(timeout=timeout)

    def __repr__(self):
        return (f"SloEngine({len(self.objectives)} objectives, "
                f"running={self.running})")


def default_objectives():
    """The mediator's stock SLOs, bound to PR 1/2 instrument names.

    * ``pose-latency`` — 99% of poses under 50ms (the paper's static
      refusal at ~0.7ms and warm cache hits keep this honest);
    * ``fanout-availability`` — <5% of answered poses see an
      unavailable source after retries;
    * ``sink-delivery`` — <1% of observatory events dropped by the
      JSONL sink's backpressure;
    * ``refusal-correctness`` — the sequence guard's violation counter
      never moves outside a refusal (exact objective over
      ``obs.invariant.refusal_violations``, wired by the flight
      recorder's invariant checks).
    """
    return [
        LatencyObjective("pose-latency", "mediator.pose_ms",
                         threshold_ms=50.0, objective=0.99),
        ErrorRateObjective("fanout-availability",
                           bad="mediator.fanout.unavailable",
                           total="mediator.queries_answered",
                           objective=0.95),
        ErrorRateObjective("sink-delivery",
                           bad="obs.events.dropped",
                           total="obs.events.emitted",
                           objective=0.99),
        ExactObjective("refusal-correctness",
                       counter="obs.invariant.refusal_violations"),
    ]
