"""``python -m repro.telemetry.obs`` dispatches to the observatory CLI."""

import sys

from repro.telemetry.obs.cli import main

sys.exit(main())
