"""Sampling stack profiler — "where did the last minute of CPU go".

A background daemon thread wakes at a configurable rate, snapshots every
thread's Python stack via ``sys._current_frames()``, and folds each
sample into a bounded aggregation table keyed by *(mediation stage,
collapsed stack)*.  The stage comes from the tracer's cross-thread view
of open spans (:meth:`Tracer.active_stages`), so a sample taken while a
worker runs ``mediator.fanout.attempt`` is attributed to that stage even
though the profiler never instruments the mediator.

Design rules (enforced by lint rule REP013):

* the sampling loop allocates **bounded** state only — the table is
  capped at ``max_stacks`` distinct stacks (overflow folds into one
  bucket) and ``max_depth`` frames per stack;
* the loop never emits spans or events and never offers to a sink — its
  only telemetry writes are metric observations (``obs.profiler.*``),
  which are fixed-size instruments.  Anomalies are *read* out of the
  table by the flight recorder, not pushed per sample.

Exports: collapsed-stack text (``stage;frame;frame count`` — the
flamegraph.pl / speedscope interchange format) and a Chrome-trace dict.
"""

from __future__ import annotations

import sys
import threading
import time

from repro.errors import ReproError

#: Stage label for threads with no open span at sample time.
UNTRACKED = "(untracked)"
#: Pseudo-stack recorded once the aggregation table is full.
OVERFLOW_KEY = ("(overflow)", ())


class StackProfiler:
    """Always-on sampling profiler with per-stage attribution.

    ``telemetry`` supplies the tracer (stage attribution) and metrics
    registry (self-measurement); ``hz`` is the target sampling rate.
    ``start()``/``stop()`` are idempotent; the thread is a daemon, so a
    forgotten profiler never blocks interpreter exit.
    """

    def __init__(self, telemetry, hz=50, max_stacks=512, max_depth=24):
        if hz <= 0:
            raise ReproError("hz must be > 0")
        self.telemetry = telemetry
        self.hz = float(hz)
        self.max_stacks = int(max_stacks)
        self.max_depth = int(max_depth)
        self._samples = {}  # (stage, stack tuple) -> count
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = None
        self.sample_count = 0
        self.overflowed = 0
        # fixed instruments, resolved once: the sampling loop must not
        # touch the registry dict per sample.
        metrics = telemetry.metrics
        self._sample_ms = metrics.histogram("obs.profiler.sample_ms")
        self._samples_total = metrics.counter("obs.profiler.samples")
        self._overflow_total = metrics.counter("obs.profiler.overflow")

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self):
        """True while the sampling thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self):
        """Start the sampling thread (no-op if already running)."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return self
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-obs-profiler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout=2.0):
        """Stop sampling and join the thread (no-op if not running)."""
        with self._lock:
            thread = self._thread
            self._thread = None
            if thread is None:
                return
            self._stop.set()
        # join outside the lock: the sampler takes it per sample
        thread.join(timeout=timeout)

    # -- sampling loop (REP013 hot path) -------------------------------------

    def _run(self):
        period = 1.0 / self.hz
        while not self._stop.wait(period):
            self.sample_once()

    def sample_once(self):
        """Take one sample of every thread; callable directly in tests."""
        started = time.perf_counter()
        tracer = self.telemetry.tracer
        stages = tracer.active_stages()
        own = threading.get_ident()
        # the observatory's own housekeeping threads (SLO ticker, this
        # sampler) would otherwise dominate idle profiles with their
        # wait loops — self-observation is noise, not signal.
        skip = {
            thread.ident for thread in threading.enumerate()
            if thread.name.startswith("repro-obs-")
        }
        # sys._current_frames is a point-in-time dict copy; frames keep
        # running while we walk them, which for a sampling profiler is
        # exactly the accepted imprecision.
        frames = sys._current_frames()
        with self._lock:
            for ident, frame in frames.items():
                if ident == own or ident in skip:
                    continue
                stage_info = stages.get(ident)
                stage = stage_info[0] if stage_info else UNTRACKED
                key = (stage, self._collapse(frame))
                if key not in self._samples and (
                        len(self._samples) >= self.max_stacks):
                    key = OVERFLOW_KEY
                    self.overflowed += 1
                    self._overflow_total.inc()
                self._samples[key] = self._samples.get(key, 0) + 1
            self.sample_count += 1
        self._samples_total.inc()
        self._sample_ms.observe((time.perf_counter() - started) * 1000.0)

    def _collapse(self, frame):
        """Bounded ``(frame_label, ...)`` tuple, outermost first."""
        stack = []
        while frame is not None and len(stack) < self.max_depth:
            code = frame.f_code
            module = code.co_filename.rsplit("/", 1)[-1]
            stack.append(f"{module}:{code.co_name}")
            frame = frame.f_back
        stack.reverse()
        return tuple(stack)

    # -- reading -------------------------------------------------------------

    def snapshot(self, reset=False):
        """Copy of the aggregation table: ``{(stage, stack): count}``."""
        with self._lock:
            samples = dict(self._samples)
            if reset:
                self._samples.clear()
                self.sample_count = 0
        return samples

    def stage_totals(self):
        """Samples per mediation stage, highest first."""
        totals = {}
        for (stage, _), count in self.snapshot().items():
            totals[stage] = totals.get(stage, 0) + count
        return dict(sorted(totals.items(), key=lambda kv: -kv[1]))

    def collapsed(self, limit=None):
        """Collapsed-stack text: ``stage;frame;frame count`` per line.

        The flamegraph interchange format — feed it to flamegraph.pl or
        speedscope.  Heaviest stacks first; ``limit`` truncates.
        """
        rows = sorted(self.snapshot().items(), key=lambda kv: -kv[1])
        if limit is not None:
            rows = rows[:limit]
        return "\n".join(
            ";".join([stage, *stack]) + f" {count}"
            for (stage, stack), count in rows
        )

    def chrome_trace(self):
        """The profile as a Chrome-trace dict (one lane per stage).

        Each aggregated stack becomes a complete ("X") event whose
        duration is ``count / hz`` — a statistical reconstruction laid
        end to end per stage, loadable in ``chrome://tracing`` or
        Perfetto next to the span trace.
        """
        events = []
        period_us = 1_000_000.0 / self.hz
        cursors = {}
        tids = {}
        for (stage, stack), count in sorted(
                self.snapshot().items(), key=lambda kv: -kv[1]):
            tid = tids.setdefault(stage, len(tids) + 1)
            start = cursors.get(stage, 0.0)
            duration = count * period_us
            cursors[stage] = start + duration
            events.append({
                "name": stack[-1] if stack else stage,
                "cat": "profile",
                "ph": "X",
                "ts": start,
                "dur": duration,
                "pid": 1,
                "tid": tid,
                "args": {"stage": stage, "samples": count,
                         "stack": ";".join(stack)},
            })
        return {"traceEvents": events,
                "displayTimeUnit": "ms",
                "metadata": {"hz": self.hz,
                             "samples": self.sample_count,
                             "overflowed": self.overflowed}}

    def __repr__(self):
        return (f"StackProfiler(hz={self.hz}, running={self.running}, "
                f"samples={self.sample_count})")
