"""``repro.telemetry.obs`` — the always-on performance observatory.

One object, four capabilities, layered on the PR 1 telemetry plumbing
without touching the measured path:

* :class:`~repro.telemetry.obs.profiler.StackProfiler` — sampling stack
  profiler with per-stage attribution (collapsed-stack + Chrome-trace
  exports);
* :class:`~repro.telemetry.obs.context.TraceContext` — explicit trace
  capture/restore so one trace id follows a ``pose()`` across executor
  workers, batch pipelines, and the WAL writer thread;
* :class:`~repro.telemetry.obs.slo.SloEngine` — declarative objectives
  with multi-window burn-rate evaluation and ``slo.breach`` events;
* :class:`~repro.telemetry.obs.recorder.FlightRecorder` — bounded
  anomaly bundles on breach / breaker-open / ``SIGUSR2``.

Typical wiring::

    system = PrivateIye(..., telemetry=True)
    obs = PerfObservatory(system.telemetry).start()
    ...
    print(obs.profiler.collapsed(limit=20))
    obs.stop()

"Always-on" is a measured claim, not a slogan: ``benchmarks/bench_obs.py``
runs the 8-source Figure 1 pose workload with the observatory off and on
and gates the overhead at ≤5% (``BENCH_obs.json``, CI ``observability``
job).
"""

from __future__ import annotations

from repro.telemetry.obs.context import EMPTY_CONTEXT, TraceContext
from repro.telemetry.obs.profiler import StackProfiler
from repro.telemetry.obs.recorder import FlightRecorder
from repro.telemetry.obs.slo import (
    ErrorRateObjective,
    ExactObjective,
    LatencyObjective,
    SloEngine,
    default_objectives,
)

__all__ = [
    "EMPTY_CONTEXT",
    "ErrorRateObjective",
    "ExactObjective",
    "FlightRecorder",
    "LatencyObjective",
    "PerfObservatory",
    "SloEngine",
    "StackProfiler",
    "TraceContext",
    "default_objectives",
]


class PerfObservatory:
    """Bundles profiler + SLO engine + flight recorder over one telemetry.

    Construction wires the pieces together (the recorder watches the
    SLO engine's breach hook); :meth:`start` turns the background
    threads on.  Both are cheap and idempotent, so a CLI or a test can
    spin one up around any live :class:`~repro.telemetry.Telemetry`.
    """

    def __init__(self, telemetry, hz=50, objectives=None, bundle_dir=None,
                 slo_interval=5.0, signal_handler=False, **slo_kwargs):
        self.telemetry = telemetry
        self.slo_interval = float(slo_interval)
        self.profiler = StackProfiler(telemetry, hz=hz)
        self.slo = SloEngine(
            telemetry,
            default_objectives() if objectives is None else objectives,
            **slo_kwargs,
        )
        self.recorder = FlightRecorder(
            telemetry, profiler=self.profiler, slo=self.slo,
            bundle_dir=bundle_dir,
        )
        if signal_handler:
            self.recorder.install_signal_handler()

    def start(self):
        """Start sampling, SLO ticking, and anomaly watching."""
        self.profiler.start()
        self.slo.start(self.slo_interval)
        self.recorder.attach()
        return self

    def stop(self):
        """Stop the background threads and detach the recorder."""
        self.recorder.detach()
        self.slo.stop()
        self.profiler.stop()
        return self

    @property
    def running(self):
        """True while the profiler thread is alive."""
        return self.profiler.running

    def status(self):
        """One JSON-serializable roll-up of all three components."""
        return {
            "running": self.running,
            "profiler": {
                "hz": self.profiler.hz,
                "samples": self.profiler.sample_count,
                "overflowed": self.profiler.overflowed,
                "stage_totals": self.profiler.stage_totals(),
            },
            "slo": self.slo.status(),
            "recorder": {
                "dumps": self.recorder.dumps,
                "suppressed": self.recorder.suppressed,
                "retained": len(self.recorder.bundles),
            },
        }

    def __repr__(self):
        return f"PerfObservatory(running={self.running})"
