"""Explicit trace-context capture/restore — spans across thread pools.

The tracer's span stack is thread-local by design (PR 1): a span opened
on the thread that opened its parent nests automatically.  Executor
fan-out breaks that — the dispatcher's worker threads, ``pose_many``'s
batch pipeline, and the persistence WAL writer thread all run work that
*belongs* to a ``mediator.pose`` but starts on a thread with an empty
stack.  :class:`TraceContext` is the hand-off object: capture it where
the trace is ambient, ship it to the other thread (it is a two-field
value object), and ``activate`` it there so every span the worker opens
carries the originating trace id.

The context is **serializable by design**: ``to_dict``/``from_dict``
round-trip through JSON, which is how a trace id rides a WAL record to
the writer thread today and crosses the future process-pool boundary
without carrying live ``Span`` references (those stay in-process via
the optional ``parent`` field).
"""

from __future__ import annotations

import contextlib

from repro.telemetry.tracer import new_trace_id


class TraceContext:
    """A portable snapshot of "which trace is this thread working for".

    ``trace_id`` is the propagated identity; ``parent`` is an optional
    in-process :class:`~repro.telemetry.tracer.Span` reference that lets
    worker-thread spans attach under the originating span (the fan-out
    dispatcher uses it).  ``parent`` is deliberately dropped by
    ``to_dict`` — across a serialization boundary only the id travels,
    and restored spans become new roots sharing the trace id.
    """

    __slots__ = ("trace_id", "parent")

    def __init__(self, trace_id=None, parent=None):
        self.trace_id = trace_id
        self.parent = parent

    @classmethod
    def capture(cls, tracer):
        """Snapshot the calling thread's ambient trace on ``tracer``.

        Returns the shared :data:`EMPTY_CONTEXT` when there is nothing
        to capture (no open span, no ambient context — including the
        no-op tracer), so the disabled-telemetry path allocates nothing.
        """
        trace_id = tracer.current_trace_id()
        parent = tracer.current()
        if trace_id is None and parent is None:
            return EMPTY_CONTEXT
        return cls(trace_id, parent)

    @classmethod
    def ensure(cls, tracer):
        """Like :meth:`capture`, but mints a fresh trace id when the
        calling thread has none — for entry points (``pose_many``) that
        must own a trace id before fanning work out."""
        context = cls.capture(tracer)
        if context.trace_id is None:
            return cls(new_trace_id(), context.parent)
        return context

    def activate(self, tracer):
        """Context manager installing this context on the current thread.

        Inside the ``with`` block, root spans opened on this thread
        inherit :attr:`trace_id` and (when set) attach under
        :attr:`parent`.  An empty context activates as a no-op, so call
        sites need no ``if`` around the disabled-telemetry path.
        """
        if self.trace_id is None and self.parent is None:
            return contextlib.nullcontext(None)
        return tracer.activate(self.trace_id, self.parent)

    # -- serialization ------------------------------------------------------

    def to_dict(self):
        """JSON-serializable form (``parent`` intentionally dropped)."""
        return {"trace_id": self.trace_id}

    @classmethod
    def from_dict(cls, payload):
        """Rebuild from :meth:`to_dict` output (or any record carrying a
        ``trace_id`` key); missing/None ids give the empty context."""
        trace_id = (payload or {}).get("trace_id")
        if trace_id is None:
            return EMPTY_CONTEXT
        return cls(trace_id)

    def __bool__(self):
        return self.trace_id is not None or self.parent is not None

    def __repr__(self):
        return f"TraceContext({self.trace_id!r})"


#: Shared "nothing to propagate" context (telemetry disabled, or no
#: span open at capture time).  Activating it is a no-op.
EMPTY_CONTEXT = TraceContext()
