"""The anomaly flight recorder — context *around* a failure, kept cheap.

Post-hoc debugging of a p99 regression or a tripped breaker needs what
was happening *just before* — and by the time a human looks, the rings
have rotated past it.  The :class:`FlightRecorder` watches the event
stream for anomaly triggers and freezes a diagnostic bundle the moment
one fires:

* **triggers** — an SLO breach (via :meth:`SloEngine.on_breach`), a
  circuit breaker opening (``dispatch.breaker_transition`` → ``open``),
  or ``SIGUSR2`` (operator-initiated, opt-in via
  :meth:`install_signal_handler`);
* **bundle** — recent finished spans (with trace ids), the event-log
  tail, a metrics snapshot, SLO status, and the profiler's heaviest
  collapsed stacks; everything string-valued passes through
  ``repro.telemetry.redact`` so a bundle shipped off-box discloses no
  more than the event stream already may (REP010's sink discipline);
* **bounds** — at most ``max_bundles`` retained in a ring, at most one
  *auto* dump per ``min_interval_s`` (a breaker flapping open cannot
  turn the recorder into the overload).

The recorder's event listener is a REP013 hot path: it runs inline in
every ``emit()``, so it must only *test* the event and return — all
bundle assembly happens in :meth:`dump`, which only triggers fire.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time

from repro.telemetry.redact import scrub_reason

#: Bundle schema version, bumped when the shape changes.
BUNDLE_VERSION = 1

#: Attribute keys whose string values are scrubbed before bundling.
_SCRUB_KEYS = ("reason", "error", "message", "detail")


class FlightRecorder:
    """Bounded ring of diagnostic bundles, frozen on anomaly triggers."""

    def __init__(self, telemetry, profiler=None, slo=None, bundle_dir=None,
                 max_bundles=8, min_interval_s=5.0, events_tail=128,
                 spans_tail=32, stacks_tail=40, clock=time.monotonic):
        self.telemetry = telemetry
        self.profiler = profiler
        self.slo = slo
        self.bundle_dir = str(bundle_dir) if bundle_dir is not None else None
        self.max_bundles = int(max_bundles)
        self.min_interval_s = float(min_interval_s)
        self.events_tail = int(events_tail)
        self.spans_tail = int(spans_tail)
        self.stacks_tail = int(stacks_tail)
        self._clock = clock
        self._bundles = []
        self._lock = threading.Lock()
        self._last_auto = None
        self._listener = None
        self._signal_installed = False
        self.dumps = 0
        self.suppressed = 0

    # -- wiring --------------------------------------------------------------

    def attach(self):
        """Subscribe to the event log and the SLO engine's breach hook."""
        with self._lock:
            if self._listener is None:
                self._listener = self.telemetry.events.subscribe(
                    self._on_event
                )
        if self.slo is not None:
            self.slo.on_breach(self._on_breach)
        return self

    def detach(self):
        """Unsubscribe from the event log (SLO hooks stay registered)."""
        with self._lock:
            listener, self._listener = self._listener, None
        if listener is not None:
            self.telemetry.events.unsubscribe(listener)

    def install_signal_handler(self, signum=signal.SIGUSR2):
        """Dump on ``SIGUSR2`` (main thread only; no-op elsewhere)."""
        try:
            signal.signal(signum, self._on_signal)
        except ValueError:
            return False  # not the main thread; triggers still work
        with self._lock:
            self._signal_installed = True
        return True

    # -- triggers (REP013 hot path: test-and-return only) --------------------

    def _on_event(self, event):
        if (event.name == "dispatch.breaker_transition"
                and event.attributes.get("state") == "open"):
            self.dump(reason=f"breaker-open:{event.attributes.get('source')}")

    def _on_breach(self, name, entry):
        self.dump(reason=f"slo-breach:{name}")

    def _on_signal(self, signum, frame):
        self.dump(reason="signal", force=True)

    # -- dumping -------------------------------------------------------------

    def dump(self, reason="manual", force=False):
        """Freeze one diagnostic bundle; returns it (or None if limited).

        Auto-triggered dumps are rate-limited to one per
        ``min_interval_s``; ``force=True`` (manual/CLI/signal) bypasses
        the limit.  The bundle lands in the in-memory ring and — when
        ``bundle_dir`` is set — as a JSON file named after its sequence
        number.
        """
        now = self._clock()
        with self._lock:
            if not force and self._last_auto is not None and (
                    now - self._last_auto < self.min_interval_s):
                self.suppressed += 1
                return None
            self._last_auto = now
            self.dumps += 1
            seq = self.dumps
        bundle = self._assemble(seq, reason)
        with self._lock:
            self._bundles.append(bundle)
            del self._bundles[:-self.max_bundles]
        path = self._write(bundle)
        # emitted after assembly so the bundle itself never contains the
        # event announcing it (no recursion: the listener only reacts to
        # breaker transitions).
        self.telemetry.events.emit(
            "obs.flight_recorder.dump", seq=seq,
            reason=scrub_reason(reason), path=path,
        )
        return bundle

    def _assemble(self, seq, reason):
        """Build the bundle dict (redaction applied here, once)."""
        telemetry = self.telemetry
        spans = [
            self._redact_span(root.to_dict())
            for root in telemetry.tracer.finished[-self.spans_tail:]
        ]
        events = [
            self._redact_event(event.to_dict())
            for event in telemetry.events.tail(self.events_tail)
        ]
        bundle = {
            "version": BUNDLE_VERSION,
            "seq": seq,
            "reason": scrub_reason(reason),
            "ts": time.time(),
            "spans": spans,
            "events": events,
            "metrics": telemetry.metrics.snapshot(),
            "slo": self.slo.status() if self.slo is not None else None,
            "profile": {
                "collapsed": (self.profiler.collapsed(limit=self.stacks_tail)
                              if self.profiler is not None else ""),
                "stage_totals": (self.profiler.stage_totals()
                                 if self.profiler is not None else {}),
            },
        }
        return bundle

    @classmethod
    def _redact_attributes(cls, attributes):
        """Scrub free-text attribute values (reason/error/detail keys)."""
        redacted = dict(attributes)
        for key in _SCRUB_KEYS:
            value = redacted.get(key)
            if isinstance(value, str):
                redacted[key] = scrub_reason(value)
        return redacted

    @classmethod
    def _redact_event(cls, event_dict):
        event_dict["attributes"] = cls._redact_attributes(
            event_dict["attributes"]
        )
        return event_dict

    @classmethod
    def _redact_span(cls, span_dict):
        span_dict["attributes"] = cls._redact_attributes(
            span_dict["attributes"]
        )
        span_dict["children"] = [
            cls._redact_span(child) for child in span_dict["children"]
        ]
        return span_dict

    def _write(self, bundle):
        """Persist the bundle as JSON when a bundle_dir is configured."""
        if self.bundle_dir is None:
            return None
        os.makedirs(self.bundle_dir, exist_ok=True)
        path = os.path.join(self.bundle_dir,
                            f"flight-{bundle['seq']:04d}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(bundle, handle, sort_keys=True, indent=1)
        return path

    # -- reading -------------------------------------------------------------

    @property
    def bundles(self):
        """Retained bundles, oldest first."""
        with self._lock:
            return list(self._bundles)

    def last(self):
        """The newest bundle (or None)."""
        with self._lock:
            return self._bundles[-1] if self._bundles else None

    def __repr__(self):
        return (f"FlightRecorder(dumps={self.dumps}, "
                f"retained={len(self.bundles)})")
