"""Per-query explain reports — the mediator's *privacy ledger*.

The paper's central claim is that privacy-preserving integration must be
*accountable*: Figure 1's snooping attack works precisely because nobody
tracks what a sequence of innocent-looking aggregates discloses, and §5
makes the mediator re-verify loss after integration.  An
:class:`ExplainReport` records, for one ``MediationEngine.pose()`` call,
every decision along that path:

* how the query was **fragmented** (relevant sources, skipped sources and
  why, mediated attributes touched);
* the **sequence guard**'s verdict (pass, or refused with the auditor's
  reason);
* whether the **warehouse** served a materialized copy or recomputed
  (mode, staleness, source calls);
* each **source outcome** — answered (privacy loss, granted budget, plan
  strategy, dropped/generalized columns) or refused (the refusal *kind*,
  :class:`~repro.errors.PrivacyViolation` vs :class:`~repro.errors.PathError`,
  plus the source's stated reason);
* **integration** counts (merged rows, private-dedup removals);
* the **privacy control** ledger line: per-source losses, the aggregated
  loss ``1 − Π(1 − loss_i)``, the requester's MAXLOSS, and any violation
  notices sent to sources.

Reports are held in a bounded :class:`ExplainLog`;
``PrivateIye.explain_last()`` surfaces the newest one.  When telemetry is
disabled the :class:`NoopExplainLog` returns one shared
:class:`NoopReport` whose mutators do nothing, so the disabled query path
allocates no report state at all.
"""

from __future__ import annotations

from collections import deque

from repro.query.language import to_piql


class ExplainReport:
    """The privacy ledger of one ``pose()`` call."""

    def __init__(self, query, requester, role):
        self.query = to_piql(query) if not isinstance(query, str) else query
        self.requester = requester
        self.role = role
        self.status = "in-flight"      # answered | refused | in-flight
        self.refusal = None            # {"kind", "reason"} when refused
        self.fragmentation = None      # {"sources", "skipped", "attributes"}
        self.sequence_guard = None     # {"verdict", "reason"}
        self.static = None             # static plan-check verdict dict
        self.cache = None              # per-tier hit/miss + fingerprint
        self.warehouse = None          # {"mode", "from_cache", ...}
        self.sources = {}              # source → outcome dict
        self.dispatch = None           # fan-out summary (mode, breakers)
        self.integration = None        # {"rows", "duplicates_removed"}
        self.control = None            # aggregated loss vs MAXLOSS + notices
        self.audit = None              # disclosure journal record (dict)
        self.events = None             # events emitted during this pose
        self.validation = None         # measured residual risk (zoo runs)
        self.duration_ms = None

    # -- recording (called by the engine as the pipeline advances) ---------

    def set_fragmentation(self, plan):
        self.fragmentation = {
            "sources": list(plan.sources),
            "skipped": dict(plan.skipped_sources),
            "attributes": sorted(set(plan.mediated_names.values())),
        }

    def set_guard(self, verdict, reason=None):
        self.sequence_guard = {"verdict": verdict, "reason": reason}

    def set_static(self, verdict):
        """Record the pre-dispatch static plan-check verdict.

        ``verdict`` is a :class:`repro.analysis.plancheck.PlanVerdict`
        (anything with ``to_dict()``); the ledger keeps its dict form so
        reports stay JSON-serializable.
        """
        self.static = verdict.to_dict()

    def set_cache(self, info):
        """Record the mediation-cache section (engine may call repeatedly
        as tiers resolve; the last call wins with the full picture)."""
        self.cache = dict(info)

    def set_warehouse(self, stats):
        self.warehouse = {
            "mode": stats.mode,
            "from_cache": bool(stats.from_cache),
            "origin": stats.origin,
            "source_calls": stats.source_calls,
            "staleness": stats.staleness,
        }

    def set_warehouse_miss(self, mode):
        """Record a miss whose recomputation raised (refused query)."""
        self.warehouse = {
            "mode": mode, "from_cache": False, "origin": "sources",
            "source_calls": None, "staleness": None,
        }

    def source_answered(self, name, response, dispatch=None):
        rewrite = response.rewrite
        outcome = {
            "outcome": "answered",
            "privacy_loss": response.privacy_loss,
            "information_loss": response.information_loss,
            "loss_budget": rewrite.loss_budget,
            "strategy": response.plan.strategy,
            "dropped_columns": list(rewrite.dropped),
            "generalized_columns": list(rewrite.generalized_columns),
        }
        if dispatch:
            outcome.update(dispatch)
        self.sources[name] = outcome

    def source_refused(self, name, refusal, dispatch=None):
        outcome = {
            "outcome": "refused",
            "kind": refusal.kind,
            "reason": refusal.reason,
        }
        if dispatch:
            outcome.update(dispatch)
        self.sources[name] = outcome

    def source_unavailable(self, name, refusal, dispatch=None):
        """A source that could not be *reached* (vs one that refused).

        ``refusal.kind`` carries the fault class — ``DeadlineExceeded``,
        ``TransientSourceError``, or ``CircuitOpen``.
        """
        outcome = {
            "outcome": "unavailable",
            "kind": refusal.kind,
            "reason": refusal.reason,
        }
        if dispatch:
            outcome.update(dispatch)
        self.sources[name] = outcome

    def set_dispatch(self, info):
        """Record the fan-out summary (mode, policy, wall, breakers)."""
        self.dispatch = dict(info)

    def set_integration(self, rows, duplicates_removed):
        self.integration = {
            "rows": rows, "duplicates_removed": duplicates_removed,
        }

    def set_control(self, per_source_loss, aggregated_loss, max_loss,
                    notices):
        self.control = {
            "per_source_loss": dict(per_source_loss),
            "aggregated_loss": aggregated_loss,
            "max_loss": max_loss,
            "within_budget": aggregated_loss <= max_loss + 1e-9,
            "notices": [
                {"source": n.source, "aggregated_loss": n.aggregated_loss,
                 "budget": n.budget, "detail": n.detail}
                for n in notices
            ],
        }

    def set_audit(self, record):
        """Record the disclosure-journal entry written for this pose.

        ``record`` is an :class:`~repro.observatory.journal.JournalRecord`
        (anything with ``to_dict()``); the ledger keeps the dict form —
        including the chain hashes, so a report can be checked against
        the journal later.
        """
        self.audit = record.to_dict()

    def set_events(self, events):
        """Record the structured events emitted while this pose ran."""
        self.events = [e.to_dict() for e in events]

    def set_validation(self, summary):
        """Attach measured residual risk from the validation suite.

        ``summary`` is the ``{family: {metric: value}}`` shape produced
        by :func:`repro.validation.summarize` (any JSON-serializable
        dict is accepted) — adversary-zoo runs stamp the ledger of the
        query they last posed, so the explain report shows not just what
        was *charged* but what an adversary could actually *measure*.
        """
        self.validation = dict(summary)

    def finish(self, status, error=None, duration_ms=None):
        self.status = status
        self.duration_ms = duration_ms
        if error is not None:
            self.refusal = {
                "kind": type(error).__name__, "reason": str(error),
            }

    # -- reading -----------------------------------------------------------

    def to_dict(self):
        """Plain-dict form of the full ledger (JSON-serializable)."""
        return {
            "query": self.query,
            "requester": self.requester,
            "role": self.role,
            "status": self.status,
            "refusal": self.refusal,
            "fragmentation": self.fragmentation,
            "sequence_guard": self.sequence_guard,
            "static": self.static,
            "cache": self.cache,
            "warehouse": self.warehouse,
            "sources": dict(self.sources),
            "dispatch": self.dispatch,
            "integration": self.integration,
            "control": self.control,
            "audit": self.audit,
            "events": self.events,
            "validation": self.validation,
            "duration_ms": self.duration_ms,
        }

    def refusing_sources(self):
        """Names of sources whose outcome was a refusal."""
        return sorted(
            name for name, outcome in self.sources.items()
            if outcome.get("outcome") == "refused"
        )

    def unavailable_sources(self):
        """Names of sources that could not be reached (faults, breaker)."""
        return sorted(
            name for name, outcome in self.sources.items()
            if outcome.get("outcome") == "unavailable"
        )

    def source_wall_ms(self):
        """``{source: wall_ms}`` — where the fan-out spent its time."""
        return {
            name: outcome["wall_ms"]
            for name, outcome in self.sources.items()
            if "wall_ms" in outcome
        }

    def __repr__(self):
        return (
            f"ExplainReport({self.requester!r}, {self.status}, "
            f"sources={sorted(self.sources)})"
        )


class ExplainLog:
    """Bounded buffer of the most recent explain reports."""

    def __init__(self, max_reports=64):
        self._reports = deque(maxlen=max_reports)

    def begin(self, query, requester, role):
        """Open (and retain) a report for a ``pose()`` call."""
        report = ExplainReport(query, requester, role)
        self._reports.append(report)
        return report

    def last(self, requester=None):
        """The newest report, optionally the newest for ``requester``."""
        if requester is None:
            return self._reports[-1] if self._reports else None
        for report in reversed(self._reports):
            if report.requester == requester:
                return report
        return None

    def reports(self):
        """All retained reports, oldest first."""
        return list(self._reports)

    def __len__(self):
        return len(self._reports)


class NoopReport:
    """Absorbs every recording call; one shared instance, no state."""

    __slots__ = ()

    def set_fragmentation(self, plan):
        pass

    def set_guard(self, verdict, reason=None):
        pass

    def set_static(self, verdict):
        pass

    def set_cache(self, info):
        pass

    def set_warehouse(self, stats):
        pass

    def set_warehouse_miss(self, mode):
        pass

    def source_answered(self, name, response, dispatch=None):
        pass

    def source_refused(self, name, refusal, dispatch=None):
        pass

    def source_unavailable(self, name, refusal, dispatch=None):
        pass

    def set_dispatch(self, info):
        pass

    def set_integration(self, rows, duplicates_removed):
        pass

    def set_control(self, per_source_loss, aggregated_loss, max_loss,
                    notices):
        pass

    def set_audit(self, record):
        pass

    def set_events(self, events):
        pass

    def set_validation(self, summary):
        pass

    def finish(self, status, error=None, duration_ms=None):
        pass

    def to_dict(self):
        return {}

    def refusing_sources(self):
        return []

    def unavailable_sources(self):
        return []

    def source_wall_ms(self):
        return {}


NOOP_REPORT = NoopReport()


class NoopExplainLog:
    """Explain log used when telemetry is disabled: retains nothing."""

    __slots__ = ()

    def begin(self, query, requester, role):
        return NOOP_REPORT

    def last(self, requester=None):
        return None

    def reports(self):
        return []

    def __len__(self):
        return 0


NOOP_EXPLAIN = NoopExplainLog()
