"""The PrivateIye system facade.

Owns the authoritative policy store, builds per-source privacy-preserving
query processors around registered data, replicates policies into the
mediation engine (paper §3: policies live at sources *and* mediator), and
exposes querying, schema inspection, and violation notifications.

Observability lives behind the same facade: ``explain_last()`` returns
the newest per-query privacy ledger, ``metrics_snapshot()`` the
deployment-wide counters/gauges/histograms, and ``last_trace()`` the
most recent span tree — all no-ops unless the system was built with
``telemetry=True`` or ``REPRO_TELEMETRY=1`` (see ``docs/observability.md``).
"""

from __future__ import annotations

from repro.errors import IntegrationError, ReproError
from repro.core.session import Session
from repro.mediator.engine import MediationEngine
from repro.mediator.warehouse import Warehouse
from repro.policy.store import PolicyStore
from repro.query.language import parse_piql
from repro.relational.catalog import Catalog
from repro.relational.table import Table
from repro.source.server import RemoteSource


class PrivateIye:
    """A deployable privacy-preserving data integration system."""

    def __init__(self, policy_store=None, linkage_attributes=(),
                 warehouse_mode="hybrid", shared_secret="private-iye",
                 synonyms=None, telemetry=None, dispatch=None,
                 static_check=True, cache=True, events=None,
                 observatory=None, persistence=None,
                 max_distinct_probes=None, seed=None):
        self.policy_store = policy_store or PolicyStore()
        # ``seed``: one deployment-wide noise seed.  Every randomized
        # component (currently the per-source Laplace mechanisms built by
        # ``add_relational_source(noise_epsilon=...)``) draws from an
        # independent child of this SeedSequence, so cross-source call
        # ordering never perturbs any source's stream.  ``None`` keeps
        # OS-entropy noise.
        self.seed = seed
        self._seed_sequence = None
        if seed is not None:
            import numpy as np

            self._seed_sequence = np.random.SeedSequence(seed)
        # ``events``: a JSONL path (async sink), True (ring only), or an
        # EventLog to share.  Asking for an event stream implies enabling
        # telemetry — the stream is one of its instruments.
        if events is not None:
            from repro.telemetry import Telemetry, resolve_events

            if isinstance(telemetry, Telemetry):
                telemetry.events = resolve_events(events)
            else:
                telemetry = Telemetry(enabled=True, events=events)
        engine_kwargs = {}
        if max_distinct_probes is not None:
            engine_kwargs["max_distinct_probes"] = max_distinct_probes
        self.engine = MediationEngine(
            shared_secret=shared_secret,
            linkage_attributes=linkage_attributes,
            synonyms=synonyms,
            warehouse=Warehouse(mode=warehouse_mode),
            telemetry=telemetry,
            dispatch=dispatch,
            static_check=static_check,
            cache=cache,
            observatory=observatory,
            persistence=persistence,
            **engine_kwargs,
        )
        self._sessions = {}

    @property
    def dispatcher(self):
        """The engine's fan-out dispatcher (breakers, dispatch policy).

        Configure at construction: ``PrivateIye(dispatch=DispatchPolicy(
        timeout_s=0.5, partial=("quorum", 2)))``; see
        :mod:`repro.mediator.dispatch`.
        """
        return self.engine.dispatcher

    @property
    def telemetry(self):
        """The deployment-wide :class:`~repro.telemetry.Telemetry`.

        Disabled (no-op) by default; enable with ``PrivateIye(telemetry=
        True)`` or ``REPRO_TELEMETRY=1`` in the environment.
        """
        return self.engine.telemetry

    def spawn_rng(self):
        """An independent noise generator from the system seed.

        Seeded systems hand out successive children of the seed's
        :class:`numpy.random.SeedSequence` — deterministic per spawn
        order, statistically independent of each other.  Unseeded
        systems return ``None`` (components fall back to OS entropy via
        :func:`repro.statdb.laplace.resolve_rng`).
        """
        if self._seed_sequence is None:
            return None
        import numpy as np

        return np.random.default_rng(self._seed_sequence.spawn(1)[0])

    # -- policy management -------------------------------------------------

    def load_policies(self, dsl_text, view_source=None):
        """Load a policy DSL document into the authoritative store."""
        return self.policy_store.load_document(dsl_text, view_source)

    # -- source management ---------------------------------------------------

    def add_relational_source(self, name, table, rbac=None,
                              consent_predicate=None, hierarchies=None,
                              qi_columns=(), output_mechanism=None,
                              knowledge=None, noise_epsilon=None,
                              noise_sensitivity=1.0, noise_budget=None):
        """Wrap ``table`` in a privacy-preserving remote source.

        The source receives a *replica* of the policy store, mirroring the
        paper's two-level enforcement: the source enforces before data
        leaves; the mediator re-verifies after integration.

        ``noise_epsilon`` is a convenience for the common mechanism:
        instead of constructing a ``LaplaceMechanism`` by hand, pass the
        per-query epsilon (plus optional ``noise_sensitivity`` /
        ``noise_budget``) and the source gets one wired to the system
        seed — on a seeded system (``PrivateIye(seed=...)``) each
        source's noise stream is independently derived from that seed
        and fully reproducible.
        """
        if not isinstance(table, Table):
            raise ReproError("add_relational_source needs a Table")
        if noise_epsilon is not None:
            if output_mechanism is not None:
                raise ReproError(
                    "pass either output_mechanism or noise_epsilon, not both"
                )
            from repro.statdb.laplace import LaplaceMechanism

            output_mechanism = LaplaceMechanism(
                noise_epsilon, sensitivity=noise_sensitivity,
                budget=noise_budget, rng=self.spawn_rng(),
            )
        catalog = Catalog(name)
        catalog.add(table)
        remote = RemoteSource(
            name, catalog, table.name, self.policy_store.replicate(),
            rbac=rbac, consent_predicate=consent_predicate,
            hierarchies=hierarchies, qi_columns=qi_columns,
            output_mechanism=output_mechanism, knowledge=knowledge,
            # Shared pseudonym secret: sources emit identical (still
            # irreversible) pseudonyms for identical identities, which is
            # what lets the integrator deduplicate without plaintext.
            pseudonym_secret=self.engine.shared_secret,
        )
        self.engine.register_source(remote)
        return remote

    def add_xml_source(self, name, document, record_path, **kwargs):
        """Wrap a hierarchical (XML) store in a privacy-preserving source.

        ``document`` is an :class:`~repro.xmlkit.node.Element` (or XML
        text); ``record_path`` selects the record nodes (e.g.
        ``//patient``).  Flattening happens once at registration; the §4
        pipeline then treats the source exactly like a relational one.
        """
        from repro.xmlkit.parser import parse_xml

        if isinstance(document, str):
            document = parse_xml(document)
        remote = RemoteSource.from_xml(
            name, document, record_path, self.policy_store.replicate(),
            pseudonym_secret=self.engine.shared_secret, **kwargs,
        )
        self.engine.register_source(remote)
        return remote

    def add_source(self, remote):
        """Register a pre-built :class:`RemoteSource`."""
        if not isinstance(remote, RemoteSource):
            raise ReproError("add_source needs a RemoteSource")
        self.engine.register_source(remote)
        return remote

    def source(self, name):
        """Look up a registered source."""
        if name not in self.engine.sources:
            raise IntegrationError(f"unknown source {name!r}")
        return self.engine.sources[name]

    # -- querying -----------------------------------------------------------

    def session(self, requester, **kwargs):
        """Get or create the requester's :class:`Session`."""
        if requester not in self._sessions:
            self._sessions[requester] = Session(requester, **kwargs)
        return self._sessions[requester]

    def query(self, text, requester="anonymous", role=None, subjects=(),
              emergency=False):
        """Pose a PIQL query and return the integrated result."""
        session = self.session(requester, role=role)
        query = parse_piql(text) if isinstance(text, str) else text
        if query.purpose is None:
            query.purpose = session.default_purpose
        session.queries_posed += 1
        return self.engine.pose(
            query,
            requester=requester,
            role=role or session.role,
            subjects=subjects or session.subjects,
            emergency=emergency,
        )

    def pose_many(self, texts, requester="anonymous", role=None,
                  subjects=(), emergency=False):
        """Pose a whole batch of PIQL queries for one principal, in order.

        Returns one :class:`~repro.mediator.batch.PoseOutcome` per
        query; refusals are captured in their outcome (``outcome.ok``,
        ``outcome.unwrap()``) instead of aborting the batch, and every
        query is guarded, charged, and journaled exactly as ``query()``
        would have — see
        :meth:`~repro.mediator.engine.MediationEngine.pose_many`.
        """
        return list(self.pose_stream(
            texts, requester=requester, role=role, subjects=subjects,
            emergency=emergency,
        ))

    def pose_stream(self, texts, requester="anonymous", role=None,
                    subjects=(), emergency=False):
        """Lazy :meth:`pose_many`: yields outcomes as they settle."""
        session = self.session(requester, role=role)

        def prepared():
            for text in texts:
                query = parse_piql(text) if isinstance(text, str) else text
                if query.purpose is None:
                    query.purpose = session.default_purpose
                session.queries_posed += 1
                yield query

        return self.engine.pose_stream(
            prepared(),
            requester=requester,
            role=role or session.role,
            subjects=subjects or session.subjects,
            emergency=emergency,
        )

    def analyze(self, text, requester="anonymous", role=None, subjects=()):
        """Statically check a query without contacting any source.

        Returns the :class:`~repro.analysis.plancheck.PlanVerdict` —
        ``SAFE`` (no policy can refuse), ``REFUSE`` (guaranteed refusal,
        with the offending source and path), or ``RUNTIME_CHECK`` (the
        remaining data/history-dependent checks are listed).  The same
        analyzer gates every ``query()`` call unless the system was
        built with ``static_check=False``; see ``docs/static_analysis.md``.
        """
        session = self.session(requester, role=role)
        query = parse_piql(text) if isinstance(text, str) else text
        if query.purpose is None:
            query.purpose = session.default_purpose
        return self.engine.analyze(
            query, requester=requester, role=role or session.role,
            subjects=subjects or session.subjects,
        )

    # -- aggregate publication ---------------------------------------------

    def plan_release(self, measure_paths, purpose, requester="_steward",
                     guard=None):
        """Plan the safest informative publication of per-source averages.

        Computes, through the normal privacy-preserving pipeline, the
        average of each ``measure_paths`` entry at every source, then asks
        the :class:`~repro.inference.planner.ReleasePlanner` for the most
        informative release of the measures × sources matrix that no
        participating source can exploit (Figure 1 run defensively).

        Returns ``(chosen ReleasePlan or None, rejected plans)``.
        """
        from repro.errors import PrivacyViolation
        from repro.inference.guard import InferenceGuard
        from repro.inference.planner import ReleasePlanner

        sources = sorted(self.engine.sources)
        measures = [str(path) for path in measure_paths]
        matrix = []
        for path in measure_paths:
            row = {}
            result = self.engine.pose(
                parse_piql(
                    f"SELECT AVG({path}) AS value PURPOSE {purpose}"
                ),
                requester=requester,
                use_warehouse=False,
            )
            for item in result.rows:
                row[item["_source"]] = float(item["value"])
            missing = [s for s in sources if s not in row]
            if missing:
                raise PrivacyViolation(
                    f"sources {missing} refused the measure {path!r}; "
                    "cannot plan a release over all participants"
                )
            matrix.append([row[s] for s in sources])
        planner = ReleasePlanner(
            guard or InferenceGuard(min_interval_width=5.0, starts=2)
        )
        return planner.plan(measures, sources, matrix)

    # -- observability -------------------------------------------------------

    def explain_last(self, requester=None):
        """The privacy ledger of the most recent query (telemetry on).

        Returns an :class:`~repro.telemetry.explain.ExplainReport` covering
        fragmentation, sequence-guard verdict, warehouse hit/miss,
        per-source outcomes (including refusal kinds), and aggregated loss
        vs the requester's MAXLOSS — or ``None`` when telemetry is
        disabled or nothing has been posed yet.
        """
        return self.engine.telemetry.explain_last(requester)

    def metrics_snapshot(self):
        """Plain-dict snapshot of every counter/gauge/histogram.

        Always safe to call; with telemetry disabled the sections are
        simply empty.
        """
        return self.engine.telemetry.metrics_snapshot()

    def last_trace(self):
        """The most recent finished root span (telemetry on), else None."""
        return self.engine.telemetry.tracer.last_root()

    @property
    def observatory(self):
        """The disclosure observatory, or ``None`` when disabled.

        Enable with ``PrivateIye(observatory=True)`` (or pass a shared
        :class:`~repro.observatory.Observatory`); see
        ``docs/observability.md``.
        """
        return self.engine.observatory

    def audit_journal(self):
        """The hash-chained disclosure journal, or ``None`` when disabled.

        Every ``query()`` appends one tamper-evident record (requester,
        plan fingerprint, per-source disclosure, cumulative
        ``1 − Π(1 − loss)``); verify with ``audit_journal().verify_chain()``.
        """
        observatory = self.engine.observatory
        return observatory.journal if observatory is not None else None

    def observatory_report(self):
        """Journal + snooper-watch summary (empty dict when disabled)."""
        observatory = self.engine.observatory
        return observatory.report() if observatory is not None else {}

    # -- durability ----------------------------------------------------------

    @property
    def persistence(self):
        """The write-ahead persistence sink, or ``None`` when disabled.

        Enable with ``PrivateIye(persistence=...)`` — a path (``*.db``
        / ``*.sqlite`` opens the sqlite backend, any other string a
        JSONL WAL directory), a backend, or a shared
        :class:`~repro.persistence.PersistenceSink`.  See
        ``docs/persistence.md`` for the durability model and runbook.
        """
        return self.engine.persistence

    def recover(self):
        """Replay the persistence store into this freshly built system.

        Call after rebuilding the deployment (same sources, same
        policies, same ``persistence=`` target) and *before* serving
        queries: it restores the query history, cumulative disclosure
        accounting, the audit journal (re-verifying its sha256 chain
        across the restart boundary), SnooperWatch ledgers, and cache
        epoch floors.  Returns a
        :class:`~repro.persistence.recovery.RecoveryReport`; raises
        :class:`~repro.errors.PersistenceError` on corruption, a chain
        break, or when persistence is disabled.
        """
        from repro.persistence.recovery import recover

        self.engine._ensure_schema()
        return recover(self.engine)

    def events_tail(self, n=20):
        """The newest structured events (empty with telemetry disabled)."""
        return self.engine.telemetry.events_tail(n)

    def cache_stats(self):
        """Per-tier mediation-cache stats plus the epoch counters.

        Tiers ``plan``/``static``/``rewrite`` come from the engine's
        :class:`~repro.cache.mediation.MediationCache` (empty dict when
        the system was built with ``cache=False``); tier ``answer`` is
        the warehouse's epoch-validated store.  Always safe to call —
        stats are tracked even with telemetry disabled.
        """
        engine = self.engine
        stats = engine.cache.stats() if engine.cache is not None else {}
        stats["answer"] = engine.warehouse.store_stats()
        return stats

    # -- inspection ------------------------------------------------------------

    def mediated_schema(self):
        """The mediated schema (built lazily)."""
        self.engine._ensure_schema()
        return self.engine.schema

    def vocabulary(self):
        """Mediated attribute names available to requesters."""
        return self.engine.mediated_vocabulary()

    def notifications(self):
        """Violation notices the privacy control has sent to sources."""
        return list(self.engine.control.notices_sent)

    def history(self, requester=None):
        """The mediator's query history."""
        return self.engine.history.entries(requester)

    def __repr__(self):
        return f"PrivateIye(sources={sorted(self.engine.sources)})"
