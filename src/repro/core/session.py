"""Requester sessions.

A session binds the requester's identity, role, default purpose, and
default loss tolerance, so applications do not repeat them on every query.
"""

from __future__ import annotations

from repro.errors import ReproError


class Session:
    """One requester's interaction context."""

    def __init__(self, requester, role=None, default_purpose="research",
                 default_max_loss=1.0, subjects=()):
        if not requester:
            raise ReproError("session needs a requester identity")
        if not 0.0 <= default_max_loss <= 1.0:
            raise ReproError("default_max_loss must be in [0, 1]")
        self.requester = requester
        self.role = role
        self.default_purpose = default_purpose
        self.default_max_loss = default_max_loss
        self.subjects = tuple(subjects)
        self.queries_posed = 0

    def __repr__(self):
        return f"Session({self.requester!r}, role={self.role!r})"
