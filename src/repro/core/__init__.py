"""PRIVATE-IYE — the public API.

:class:`~repro.core.system.PrivateIye` glues the policy formulation
framework (§3), the per-source privacy-preserving query processing
framework (§4), and the privacy-preserving mediation engine (§5) into one
deployable system object::

    from repro.core import PrivateIye

    system = PrivateIye()
    system.load_policies(POLICY_DSL_TEXT)
    system.add_relational_source("HMO1", table)
    result = system.query(
        "SELECT AVG(//patient/hba1c) GROUP BY //patient/hmo "
        "PURPOSE outbreak-surveillance MAXLOSS 0.5",
        requester="epidemiologist-1",
    )
"""

from repro.core.system import PrivateIye
from repro.core.session import Session

__all__ = ["PrivateIye", "Session"]
