"""Duplicate removal across integrated sources.

The result integrator receives row sets from several sources that may
describe the same real-world entities.  :func:`link_tables` finds
cross-source matches with blocking + Fellegi–Sunter; :func:`deduplicate`
clusters all matching records (union–find over pairwise matches) and keeps
one representative per cluster, merging fields so no information is lost.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.linkage.blocking import candidate_pairs


def link_tables(records_a, records_b, classifier, blocking_key=None):
    """All cross-source pairs classified as matches.

    With ``blocking_key`` (field name or callable) only pairs sharing a
    block are compared; without it, all |A|·|B| pairs are scored.
    """
    if blocking_key is not None:
        pairs = candidate_pairs(records_a, records_b, blocking_key)
    else:
        pairs = ((a, b) for a in records_a for b in records_b)
    return [
        (a, b, classifier.score(a, b))
        for a, b in pairs
        if classifier.is_match(a, b)
    ]


def deduplicate(records, classifier, blocking_key=None, merge=None):
    """Cluster duplicate records and return one merged record per cluster.

    ``records`` is a list of mappings; ``classifier`` a
    :class:`~repro.linkage.fellegi_sunter.FellegiSunter`.  ``merge`` is an
    optional ``(list_of_records) → record`` reducer; the default keeps the
    first record's values, filling its missing (None/'') fields from the
    other cluster members.

    Returns ``(deduplicated_records, clusters)`` where ``clusters`` lists
    the index groups that were merged.
    """
    records = list(records)
    n = len(records)
    parent = list(range(n))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(x, y):
        root_x, root_y = find(x), find(y)
        if root_x != root_y:
            parent[max(root_x, root_y)] = min(root_x, root_y)

    indexed = [dict(record, _index=i) for i, record in enumerate(records)]
    if blocking_key is not None:
        pair_iter = candidate_pairs(indexed, indexed, blocking_key)
        seen = set()
        pairs = []
        for a, b in pair_iter:
            i, j = a["_index"], b["_index"]
            if i >= j or (i, j) in seen:
                continue
            seen.add((i, j))
            pairs.append((i, j))
    else:
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]

    for i, j in pairs:
        if classifier.is_match(records[i], records[j]):
            union(i, j)

    clusters = {}
    for i in range(n):
        clusters.setdefault(find(i), []).append(i)
    cluster_list = [sorted(members) for _root, members in sorted(clusters.items())]

    merge = merge or _default_merge
    deduplicated = [merge([records[i] for i in members]) for members in cluster_list]
    return deduplicated, cluster_list


def _default_merge(cluster):
    if not cluster:
        raise ReproError("cannot merge an empty cluster")
    merged = dict(cluster[0])
    for record in cluster[1:]:
        for key, value in record.items():
            if merged.get(key) in (None, "") and value not in (None, ""):
                merged[key] = value
    return merged
