"""Record linkage and duplicate detection.

The mediation engine's result integrator must discover "records that
represent the same real world entity from two integrated databases, each of
which is protected" (paper §2 and §5).  This package supplies the
machinery: string similarity (:mod:`repro.linkage.similarity`), blocking
(:mod:`repro.linkage.blocking`), Fellegi–Sunter match classification
(:mod:`repro.linkage.fellegi_sunter`), privacy-preserving comparison via
Bloom encodings or PSI (:mod:`repro.linkage.private`), and multi-source
deduplication (:mod:`repro.linkage.dedup`).
"""

from repro.linkage.similarity import (
    jaro_similarity,
    jaro_winkler,
    levenshtein,
    ngram_dice,
    normalized_levenshtein,
)
from repro.linkage.blocking import block_records
from repro.linkage.fellegi_sunter import FellegiSunter, FieldComparison
from repro.linkage.private import (
    BloomRecordEncoder,
    bloom_link,
    psi_link_exact,
)
from repro.linkage.dedup import deduplicate, link_tables

__all__ = [
    "levenshtein",
    "normalized_levenshtein",
    "jaro_similarity",
    "jaro_winkler",
    "ngram_dice",
    "block_records",
    "FellegiSunter",
    "FieldComparison",
    "BloomRecordEncoder",
    "bloom_link",
    "psi_link_exact",
    "deduplicate",
    "link_tables",
]
