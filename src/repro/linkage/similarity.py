"""String similarity measures (all from scratch).

These are the classic record-linkage comparators: Levenshtein edit distance
(dynamic programming, two-row), Jaro and Jaro–Winkler (transposition-aware,
favoured for person names), and q-gram Dice.
"""

from __future__ import annotations


def levenshtein(a, b):
    """Edit distance between two strings (insert/delete/substitute = 1)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a  # keep the inner row short
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def normalized_levenshtein(a, b):
    """Levenshtein similarity in [0, 1]: 1 - distance / max length."""
    if not a and not b:
        return 1.0
    return 1.0 - levenshtein(a, b) / max(len(a), len(b))


def jaro_similarity(a, b):
    """Jaro similarity in [0, 1]."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    a_flags = [False] * len(a)
    b_flags = [False] * len(b)

    matches = 0
    for i, ch in enumerate(a):
        start = max(0, i - window)
        end = min(i + window + 1, len(b))
        for j in range(start, end):
            if not b_flags[j] and b[j] == ch:
                a_flags[i] = b_flags[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0

    transpositions = 0
    j = 0
    for i, flagged in enumerate(a_flags):
        if not flagged:
            continue
        while not b_flags[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2

    return (
        matches / len(a) + matches / len(b) + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(a, b, prefix_scale=0.1, max_prefix=4):
    """Jaro–Winkler similarity: Jaro boosted by the common prefix length."""
    jaro = jaro_similarity(a, b)
    prefix = 0
    for ch_a, ch_b in zip(a[:max_prefix], b[:max_prefix]):
        if ch_a != ch_b:
            break
        prefix += 1
    return jaro + prefix * prefix_scale * (1.0 - jaro)


def ngram_dice(a, b, n=2):
    """Dice coefficient over padded character n-grams."""
    grams_a = _ngrams(a, n)
    grams_b = _ngrams(b, n)
    if not grams_a and not grams_b:
        return 1.0
    if not grams_a or not grams_b:
        return 0.0
    overlap = len(grams_a & grams_b)
    return 2.0 * overlap / (len(grams_a) + len(grams_b))


def record_qgrams(values, n=2):
    """The set of field-tagged q-grams of a record's identifying values.

    Tagging each gram with its field index keeps 'john smith' and
    'smith john' from encoding identically, which is what the Bloom
    record encodings hash.
    """
    grams = set()
    for index, value in enumerate(values):
        text = str(value).strip().lower()
        for gram in _ngrams(text, n):
            grams.add(f"{index}:{gram}")
    return grams


def _ngrams(text, n):
    padded = f"{'#' * (n - 1)}{text.lower()}{'#' * (n - 1)}"
    if len(padded) < n:
        return set()
    return {padded[i:i + n] for i in range(len(padded) - n + 1)}
