"""Privacy-preserving record linkage.

Two flavours, matching the toolbox the paper's result integrator needs:

* **Bloom linkage** (approximate): each source encodes a record's
  identifying fields into a Bloom filter of field-tagged q-grams under a
  shared secret; the integrator compares filters by Dice similarity.  The
  integrator never sees plaintext identifiers, and tolerates typos.
* **PSI linkage** (exact): the sources run private set intersection over
  keyed record digests, so only records present in both sides are revealed
  — to the sources, not the integrator.
"""

from __future__ import annotations

import random

from repro.errors import ReproError
from repro.crypto.bloom import BloomFilter
from repro.crypto.keyed_hash import keyed_hash
from repro.crypto.psi import private_set_intersection
from repro.linkage.similarity import record_qgrams


class BloomRecordEncoder:
    """Encodes records into comparable Bloom filters.

    All sources that intend to link must construct encoders with identical
    parameters (``fields``, ``size``, ``num_hashes``, ``secret``).
    """

    def __init__(self, fields, size=512, num_hashes=4, secret="private-iye", ngram=2):
        if not fields:
            raise ReproError("encoder needs at least one identifying field")
        self.fields = list(fields)
        self.size = size
        self.num_hashes = num_hashes
        self.secret = secret
        self.ngram = ngram

    def encode(self, record):
        """Bloom-encode the identifying fields of ``record`` (a mapping)."""
        values = [record.get(field, "") or "" for field in self.fields]
        bloom = BloomFilter(self.size, self.num_hashes, self.secret)
        bloom.add_all(record_qgrams(values, self.ngram))
        return bloom

    def encode_all(self, records):
        """Encode every record, returning (record, filter) pairs."""
        return [(record, self.encode(record)) for record in records]


def bloom_link(records_a, records_b, encoder, threshold=0.8):
    """Link two record collections via Bloom similarity.

    Returns a list of ``(record_a, record_b, similarity)`` for every
    cross pair whose Dice similarity reaches ``threshold``.  Complexity is
    O(|A|·|B|) filter comparisons — integer AND/popcount, so cheap; callers
    with large inputs should block first and call per block.
    """
    if not 0.0 < threshold <= 1.0:
        raise ReproError("threshold must be in (0, 1]")
    encoded_a = encoder.encode_all(records_a)
    encoded_b = encoder.encode_all(records_b)
    links = []
    for record_a, bloom_a in encoded_a:
        for record_b, bloom_b in encoded_b:
            similarity = bloom_a.dice_similarity(bloom_b)
            if similarity >= threshold:
                links.append((record_a, record_b, similarity))
    return links


def psi_link_exact(records_a, records_b, fields, secret="private-iye", group=None, rng=None):
    """Exact private linkage: PSI over keyed digests of identifying fields.

    Returns the list of digests in the intersection plus, for each side,
    the records whose digest matched (the linkage outcome each *source*
    learns).  Normalisation (strip + casefold) absorbs formatting noise but
    not typos — that is Bloom linkage's job.
    """
    digests_a = {_record_digest(r, fields, secret): r for r in records_a}
    digests_b = {_record_digest(r, fields, secret): r for r in records_b}
    shared, _transcript = private_set_intersection(
        sorted(digests_a), sorted(digests_b), group=group, rng=rng or random.Random()
    )
    matched_a = [digests_a[d] for d in shared]
    matched_b = [digests_b[d] for d in shared]
    return shared, matched_a, matched_b


def _record_digest(record, fields, secret):
    normalized = "|".join(
        str(record.get(field, "") or "").strip().casefold() for field in fields
    )
    return keyed_hash(secret, normalized).hex()
