"""Fellegi–Sunter probabilistic match classification.

Each field comparison contributes a log-likelihood weight: ``log2(m/u)``
when the field agrees and ``log2((1-m)/(1-u))`` when it disagrees, where
``m`` is the probability of agreement among true matches and ``u`` among
non-matches.  Pair scores above the upper threshold are matches, below the
lower threshold non-matches, and in between "possible" (clerical review in
the classic formulation; the integrator treats possibles as non-matches
unless configured otherwise).
"""

from __future__ import annotations

import math

from repro.errors import ReproError
from repro.linkage.similarity import jaro_winkler


class FieldComparison:
    """How to compare one field, and its m/u probabilities."""

    def __init__(self, field, m=0.95, u=0.05, similarity=None, threshold=0.88):
        if not 0.0 < u < m < 1.0:
            raise ReproError(
                f"field {field!r} needs 0 < u < m < 1 (got m={m}, u={u})"
            )
        self.field = field
        self.m = m
        self.u = u
        self.similarity = similarity or (
            lambda a, b: jaro_winkler(str(a).lower(), str(b).lower())
        )
        self.threshold = threshold

    @property
    def agreement_weight(self):
        """log2(m/u) — contributed when the field agrees."""
        return math.log2(self.m / self.u)

    @property
    def disagreement_weight(self):
        """log2((1-m)/(1-u)) — contributed when the field disagrees."""
        return math.log2((1.0 - self.m) / (1.0 - self.u))

    def agrees(self, value_a, value_b):
        """Whether two field values count as agreeing.

        Missing values (None) are treated as non-informative: neither
        agreement nor disagreement (weight 0).
        """
        if value_a is None or value_b is None:
            return None
        return self.similarity(value_a, value_b) >= self.threshold

    def weight(self, value_a, value_b):
        """The log-likelihood contribution for this field pair."""
        agreement = self.agrees(value_a, value_b)
        if agreement is None:
            return 0.0
        return self.agreement_weight if agreement else self.disagreement_weight


class FellegiSunter:
    """A configured Fellegi–Sunter classifier over several fields."""

    def __init__(self, comparisons, upper=3.0, lower=0.0):
        if not comparisons:
            raise ReproError("need at least one field comparison")
        if lower > upper:
            raise ReproError("lower threshold must not exceed upper")
        self.comparisons = list(comparisons)
        self.upper = upper
        self.lower = lower

    def score(self, record_a, record_b):
        """Total log-likelihood weight of a record pair."""
        return sum(
            c.weight(record_a.get(c.field), record_b.get(c.field))
            for c in self.comparisons
        )

    def classify(self, record_a, record_b):
        """'match', 'possible', or 'non-match' for a record pair."""
        score = self.score(record_a, record_b)
        if score >= self.upper:
            return "match"
        if score <= self.lower:
            return "non-match"
        return "possible"

    def is_match(self, record_a, record_b, accept_possible=False):
        """Boolean decision (possibles count as matches only if asked)."""
        label = self.classify(record_a, record_b)
        return label == "match" or (accept_possible and label == "possible")
