"""Blocking: cheap partitioning of records before pairwise comparison.

Comparing every pair is quadratic; standard practice groups records by a
blocking key (e.g. soundex of the surname, first letter + year) and only
compares within blocks.  The dedup and private-linkage drivers both use
this module.
"""

from __future__ import annotations

from repro.errors import ReproError


def soundex(name):
    """American Soundex code of ``name`` (e.g. 'Robert' → 'R163')."""
    name = "".join(ch for ch in str(name).upper() if ch.isalpha())
    if not name:
        return "0000"
    codes = {
        **dict.fromkeys("BFPV", "1"),
        **dict.fromkeys("CGJKQSXZ", "2"),
        **dict.fromkeys("DT", "3"),
        "L": "4",
        **dict.fromkeys("MN", "5"),
        "R": "6",
    }
    first = name[0]
    digits = []
    previous = codes.get(first, "")
    for ch in name[1:]:
        code = codes.get(ch, "")
        if code and code != previous:
            digits.append(code)
        if ch not in "HW":  # H and W do not reset the previous code
            previous = code
    return (first + "".join(digits) + "000")[:4]


def block_records(records, key):
    """Group ``records`` into blocks.

    ``key`` is either a field name (records are mappings) or a callable
    ``record → blocking key``.  Returns ``{block_key: [records]}``;
    records whose key is ``None`` are dropped (they can never match
    safely) — callers that need them must use a total key function.
    """
    if isinstance(key, str):
        field = key
        key = lambda record: record.get(field)  # noqa: E731 — tiny adapter
    elif not callable(key):
        raise ReproError("blocking key must be a field name or a callable")
    blocks = {}
    for record in records:
        block_key = key(record)
        if block_key is None:
            continue
        blocks.setdefault(block_key, []).append(record)
    return blocks


def candidate_pairs(records_a, records_b, key):
    """Yield cross-source candidate pairs that share a blocking key."""
    blocks_a = block_records(records_a, key)
    blocks_b = block_records(records_b, key)
    for block_key in sorted(set(blocks_a) & set(blocks_b), key=str):
        for record_a in blocks_a[block_key]:
            for record_b in blocks_b[block_key]:
                yield record_a, record_b


def reduction_ratio(n_a, n_b, n_pairs):
    """Fraction of the full cross product avoided by blocking."""
    total = n_a * n_b
    if total == 0:
        return 0.0
    return 1.0 - n_pairs / total
