"""Typed results for the PET validation suite.

Every metric in :mod:`repro.validation.metrics` returns a
:class:`ValidationResult`: the metric name, the defense family it
measures (``anonymity`` / ``statdb`` / ``inference``), one headline
``value``, and a ``detail`` dict with every intermediate the metric
computed.  Results serialize to JSON deterministically
(``sort_keys=True``, no timestamps), so two runs over the same release
produce byte-identical reports — the property the differential test
suite pins.
"""

from __future__ import annotations

import json

from repro.errors import ReproError

#: The three defense families the suite covers (ISSUE 7 / ROADMAP).
FAMILIES = ("anonymity", "statdb", "inference")


class ValidationResult:
    """One metric evaluation over one release."""

    __slots__ = ("metric", "family", "value", "detail", "params",
                 "threshold", "passed")

    def __init__(self, metric, family, value, detail=None, params=None,
                 threshold=None, passed=None):
        if family not in FAMILIES:
            raise ReproError(
                f"unknown validation family {family!r}; "
                f"expected one of {FAMILIES}"
            )
        self.metric = metric
        self.family = family
        self.value = float(value)
        self.detail = dict(detail or {})
        self.params = dict(params or {})
        self.threshold = threshold
        self.passed = passed

    def to_dict(self):
        """Plain-dict form (JSON-serializable, deterministic key order)."""
        return {
            "metric": self.metric,
            "family": self.family,
            "value": self.value,
            "detail": self.detail,
            "params": self.params,
            "threshold": self.threshold,
            "passed": self.passed,
        }

    def to_json(self, indent=2):
        """Deterministic JSON form — byte-stable across runs."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def __repr__(self):
        status = ""
        if self.passed is not None:
            status = ", passed" if self.passed else ", FAILED"
        return (f"ValidationResult({self.metric!r}, {self.family}, "
                f"value={self.value:.4f}{status})")
