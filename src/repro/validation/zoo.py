"""Run the adversary zoo against the defense matrix and score it.

``run_adversary`` builds a fresh zoo deployment, lets one adversary
attack it through the real ``pose()`` path, and scores the resulting
:class:`~repro.validation.adversaries.AdversaryView` with the validation
metrics; ``run_matrix`` repeats that for every adversary × defense
ablation.  Each run's summary is stamped onto the explain ledger of the
adversary's last pose (``set_validation``) and emitted as a
``validation.scored`` event, so the observatory's exporters see not just
what was *charged* but what the adversary could actually *measure*.

The composite headline is ``residual_risk``: the mean of the
re-identification risk and the average per-cell disclosure score, where
a cell scores 1.0 when recovered exactly, decays linearly with point
error or feasible-interval width over ``DISCLOSURE_SCALE``, and scores
0.0 when the release said nothing about it.  Every defense in the zoo
strictly lowers it — that is the matrix test's core assertion.
"""

from __future__ import annotations

from repro.inference.bounds import AggregateConstraints
from repro.telemetry import redact
from repro.validation.adversaries import (
    EXACT_TOLERANCE,
    MEASURES,
    ZooDefenses,
    build_zoo_system,
    default_adversaries,
    zoo_population,
    zoo_publication,
    zoo_truth,
)
from repro.validation.api import summarize, validate
from repro.validation.api import report as render_report

#: Full marks for a cell pinned exactly; zero once the point error (or
#: the feasibility interval width) reaches this many units.
DISCLOSURE_SCALE = 10.0

QUASI_IDENTIFIERS = ("age", "zip")


class ZooOutcome:
    """One scored adversary run."""

    def __init__(self, adversary, defenses, results, view, cell_scores,
                 alerts):
        self.adversary = adversary
        self.defenses = defenses
        self.results = list(results)
        self.view = view
        self.cell_scores = dict(cell_scores)
        self.alerts = list(alerts)
        self.summary = summarize(self.results)
        disclosure = (
            sum(cell_scores.values()) / len(cell_scores)
            if cell_scores else 0.0
        )
        reid = next(
            (r.value for r in self.results
             if r.metric == "reidentification_risk"), 0.0,
        )
        self.cell_disclosure = disclosure
        self.residual_risk = (reid + disclosure) / 2.0

    def to_dict(self):
        return {
            "adversary": self.adversary,
            "defenses": self.defenses.to_dict(),
            "label": self.defenses.label,
            "summary": self.summary,
            "cell_disclosure": self.cell_disclosure,
            "residual_risk": self.residual_risk,
            "view": self.view.to_dict(),
            "alerts": len(self.alerts),
        }

    def report(self, path=None):
        """The full validation report for this run (deterministic JSON)."""
        return render_report(self.results, path=path)

    def __repr__(self):
        return (
            f"ZooOutcome({self.adversary!r}, {self.defenses.label!r}, "
            f"residual_risk={self.residual_risk:.3f})"
        )


def adversary_constraints(view, defenses):
    """The inference problem this adversary can state, as constraints.

    Columns the adversary pinned exactly (a priori knowledge or
    lossless composition) become ``known_columns``; perturbed or biased
    estimates do not — asserting them as exact would contradict the
    publication and void the bound problem.  The constraint span is the
    publication's: a guarded release that never mentions HMO4 yields no
    constraint on HMO4 at all.
    """
    publication = zoo_publication(defenses)
    sources = list(publication["sources"])
    known = {}
    for j, source in enumerate(sources):
        if source in view.known_columns:
            known[j] = [float(v) for v in view.known_columns[source]]
        elif source in view.exact_sources:
            known[j] = [
                float(view.recovered[(measure, source)])
                for measure in MEASURES
            ]
    column_means = {
        j: float(publication["source_means"][source])
        for j, source in enumerate(sources)
        if source in publication["source_means"]
    }
    stds = publication["row_stds"]
    constraints = AggregateConstraints(
        n_rows=len(MEASURES),
        n_cols=len(sources),
        known_columns=known,
        row_means=[float(v) for v in publication["row_means"]],
        row_stds=None if stds is None else [float(v) for v in stds],
        column_means=column_means,
        value_range=view.value_range,
        tolerance=publication["tolerance"],
    )
    return constraints, sources


def cell_disclosure_scores(truth, view, tightness_detail, column_sources):
    """Per-cell disclosure in [0, 1] over the whole confidential matrix.

    Each cell takes the best the adversary achieved: exact recovery
    scores 1.0, a point estimate decays linearly with its error, a
    feasibility interval decays with its width, and a cell the release
    never touched scores 0.0.
    """
    intervals = {}
    if tightness_detail and not tightness_detail.get("infeasible"):
        for key, (low, high) in tightness_detail.get("intervals",
                                                     {}).items():
            i, j = (int(part) for part in key.split(","))
            intervals[(MEASURES[i], column_sources[j])] = (low, high)
    scores = {}
    for cell, actual in truth.items():
        best = 0.0
        if cell in view.recovered:
            error = abs(float(view.recovered[cell]) - float(actual))
            if error <= EXACT_TOLERANCE:
                best = 1.0
            else:
                best = max(0.0, 1.0 - error / DISCLOSURE_SCALE)
        if cell in intervals:
            low, high = intervals[cell]
            best = max(best, max(0.0, 1.0 - (high - low) / DISCLOSURE_SCALE))
        scores[cell] = best
    return scores


def score_view(view, truth, defenses, original_rows, starts=2):
    """Score one adversary view with the validation metrics.

    Returns ``(results, cell_scores)`` — the typed metric results and
    the per-cell disclosure map the composite is built from.
    """
    results = [
        validate(view.record_rows, original_rows, metric,
                 quasi_identifiers=QUASI_IDENTIFIERS)
        for metric in ("reidentification_risk", "uniqueness",
                       "ambiguity", "non_uniform_entropy")
    ]
    results.append(
        validate(view.recovered, truth, "reconstruction_error",
                 tolerance=EXACT_TOLERANCE)
    )
    constraints, column_sources = adversary_constraints(view, defenses)
    tightness = validate(constraints, {
        (i, j): truth[(MEASURES[i], column_sources[j])]
        for i in range(len(MEASURES))
        for j in range(len(column_sources))
    }, "interval_tightness", starts=starts)
    results.append(tightness)
    cell_scores = cell_disclosure_scores(
        truth, view, tightness.detail, column_sources,
    )
    return results, cell_scores


def run_adversary(adversary, defenses=None, seed=0, starts=2,
                  system=None):
    """One adversary against one defense configuration, scored.

    Builds a fresh deployment (unless ``system`` is supplied), runs the
    adversary, scores the take, stamps the summary onto the explain
    ledger of the adversary's last pose, and emits a
    ``validation.scored`` event.
    """
    defenses = defenses or ZooDefenses()
    if system is None:
        system = build_zoo_system(defenses, seed=seed)
    truth = zoo_truth()
    view = adversary.run(system, defenses)
    results, cell_scores = score_view(
        view, truth, defenses, zoo_population(), starts=starts,
    )
    outcome = ZooOutcome(
        adversary.name, defenses, results, view, cell_scores,
        system.observatory.alerts if system.observatory else [],
    )
    ledger = system.explain_last()
    if ledger is not None:
        stamped = dict(outcome.summary)
        stamped["composite"] = {
            "residual_risk": outcome.residual_risk,
            "cell_disclosure": outcome.cell_disclosure,
        }
        ledger.set_validation(stamped)
    # The outcome object keeps exact scores for reports and the matrix;
    # the telemetry *event* generalizes them — a residual-risk score is
    # a statement about the confidential ground truth, and the event log
    # is a side channel the disclosure ledger never accounts for.
    system.telemetry.events.emit(
        "validation.scored",
        adversary=adversary.name,
        defenses=defenses.label,
        residual_risk=redact.bucket(outcome.residual_risk, width=0.05),
        cell_disclosure=redact.bucket(outcome.cell_disclosure, width=0.05),
        refusals=len(view.refusals),
        pooled_budget=view.pooled_budget,
    )
    return outcome


def run_matrix(adversaries=None, defense_names=ZooDefenses.NAMES, seed=0,
               starts=2):
    """The E2E ablation: every adversary × {off, each single defense}.

    Returns ``{adversary: {"none": outcome, defense: outcome, ...}}``.
    The zoo's core claim — measured, not assumed — is that every armed
    defense strictly lowers the adversary's residual risk against its
    own all-off baseline.
    """
    outcomes = {}
    for adversary in (adversaries or default_adversaries()):
        row = {"none": run_adversary(adversary, ZooDefenses(), seed=seed,
                                     starts=starts)}
        for name in defense_names:
            row[name] = run_adversary(
                adversary, ZooDefenses.single(name), seed=seed,
                starts=starts,
            )
        outcomes[adversary.name] = row
    return outcomes


def matrix_table(outcomes):
    """``{adversary: {defense_label: residual_risk}}`` — the docs table."""
    return {
        adversary: {
            label: outcome.residual_risk
            for label, outcome in row.items()
        }
        for adversary, row in outcomes.items()
    }
