"""The adversary zoo — attackers driven through the real pipeline.

Every adversary here poses genuine PIQL queries through
``PrivateIye.query()`` (no shortcuts into source internals), so whatever
it learns already passed the two-level enforcement of paper §3: source
policies, sequence defenses, the mediator's loss re-verification, and —
when armed — the zoo's four ablatable defenses:

* ``kanon``   — sources k-anonymize record-level output over (age, zip);
* ``laplace`` — sources perturb aggregate answers with budgeted,
  memoized Laplace noise (:class:`~repro.statdb.laplace.LaplaceMechanism`);
* ``guard``   — the out-of-band publication is inference-guarded: row
  statistics span only the queryable HMOs, at integer precision, with
  no per-source means (Figure 1 run defensively);
* ``refusal`` — the mediator's sequence guard allows a single distinct
  probe per private measure (``max_distinct_probes=1``).

The scenario is a four-HMO deployment of Figure 1's matrix: each HMO
holds 24 patients whose three private measures average *exactly* to the
paper's consistent matrix — per age slice and overall — so an attacker
who chains the two slice aggregates recovers the confidential cell
exactly, and every recovered digit is attributable to a defense that was
off.  HMO4 publishes no measure at all (its view suppresses them), so
its column is reachable only through inference — the ``guard`` defense's
whole battleground.
"""

from __future__ import annotations

import random

from repro.core.system import PrivateIye
from repro.data import FIGURE1
from repro.errors import AuditRefusal, PrivacyViolation, ReproError
from repro.observatory import Observatory
from repro.relational import Table
from repro.source.knowledge import PreservationKnowledgeBase, default_techniques
from repro.statdb.laplace import LaplaceMechanism

#: Mediated measure names (Figure 1's tests, as PIQL-friendly columns).
MEASURES = ("hba1c", "lipid", "eye")
SOURCES = FIGURE1.sources
#: Patients per age slice at each source; slices are balanced so the
#: population mean of every measure is exactly the slice-mean average.
SLICE_SIZE = 12
#: Slice means sit ``±SLICE_OFFSET`` around the cell value, so *one*
#: slice alone is a biased estimate — composition needs both.
SLICE_OFFSET = 3.0
VALUE_RANGE = (0.0, 100.0)
#: |error| at or below this counts as exact cell recovery.
EXACT_TOLERANCE = 0.05

_SLICES = (("a", "> 40"), ("b", "<= 40"))


class ZooDefenses:
    """Which of the four ablatable defenses are armed for one run."""

    NAMES = ("kanon", "laplace", "guard", "refusal")
    __slots__ = NAMES

    def __init__(self, kanon=False, laplace=False, guard=False,
                 refusal=False):
        self.kanon = bool(kanon)
        self.laplace = bool(laplace)
        self.guard = bool(guard)
        self.refusal = bool(refusal)

    @classmethod
    def single(cls, name):
        """A configuration with exactly one defense armed."""
        if name not in cls.NAMES:
            raise ReproError(
                f"unknown defense {name!r}; expected one of {cls.NAMES}"
            )
        return cls(**{name: True})

    @classmethod
    def all_on(cls):
        return cls(kanon=True, laplace=True, guard=True, refusal=True)

    @property
    def label(self):
        active = [name for name in self.NAMES if getattr(self, name)]
        return "+".join(active) or "none"

    def to_dict(self):
        return {name: getattr(self, name) for name in self.NAMES}

    def __repr__(self):
        return f"ZooDefenses({self.label})"


# -- the scenario -------------------------------------------------------------

def zoo_truth():
    """The confidential ground truth: ``{(measure, source): value}``."""
    return {
        (measure, source): FIGURE1.consistent_matrix[i][j]
        for i, measure in enumerate(MEASURES)
        for j, source in enumerate(SOURCES)
    }


def zoo_table(source_index):
    """One HMO's 24-patient table, engineered around Figure 1's matrix.

    Slice a (``age > 40``) averages to ``cell + SLICE_OFFSET``, slice b
    (``age <= 40``) to ``cell − SLICE_OFFSET``; the slices are balanced,
    so the full-population average is the confidential cell exactly.
    Zips are globally unique — raw record-level output is a singleton
    per patient, the worst case k-anonymization has to fix.
    """
    rows = []
    for i in range(2 * SLICE_SIZE):
        in_a = i < SLICE_SIZE
        idx = i if in_a else i - SLICE_SIZE
        age = 41 + (idx * 3) % 17 if in_a else 22 + (idx * 3) % 18
        row = {"age": age, "zip": 15000 + source_index * 1000 + i}
        offset = SLICE_OFFSET if in_a else -SLICE_OFFSET
        for m, measure in enumerate(MEASURES):
            cell = FIGURE1.consistent_matrix[m][source_index]
            delta = 4.0 + m  # paired ±delta keeps the slice mean exact
            row[measure] = cell + offset + (delta if idx % 2 == 0 else -delta)
        rows.append(row)
    return Table.from_dicts("patients", rows)


def zoo_population():
    """Ground-truth quasi-identifier rows across all four HMOs."""
    rows = []
    for j in range(len(SOURCES)):
        for row in zoo_table(j).rows_as_dicts():
            rows.append({"age": row["age"], "zip": row["zip"]})
    return rows


def zoo_policies():
    """The policy DSL document and its view → source mapping.

    HMO1–HMO3 expose their measures in aggregate form only; HMO4 marks
    them private with *no* permitted form, so they vanish from its
    export entirely and the fragmenter never routes a measure query
    there — HMO4's column exists only as an inference target.
    """
    views, policies = [], []
    for j, source in enumerate(SOURCES):
        view = f"{source.lower()}_private"
        if j < len(SOURCES) - 1:
            private = "".join(
                f"    PRIVATE //patient/{m} FORM aggregate;\n"
                for m in MEASURES
            )
            measure_rules = "".join(
                f"    ALLOW //patient/{m} FOR research FORM aggregate "
                "MAXLOSS 0.9;\n"
                for m in MEASURES
            )
        else:
            private = "".join(
                f"    PRIVATE //patient/{m};\n" for m in MEASURES
            )
            measure_rules = "".join(
                f"    DENY //patient/{m} FOR *;\n" for m in MEASURES
            )
        views.append(f"VIEW {view} {{\n{private}}}\n")
        policies.append(
            f"POLICY {source} DEFAULT deny {{\n{measure_rules}"
            "    ALLOW //patient/age FOR research;\n"
            "    ALLOW //patient/zip FOR research;\n"
            "}\n"
        )
    document = "".join(views) + "\n" + "".join(policies)
    return document, {f"{s.lower()}_private": s for s in SOURCES}


def zoo_knowledge():
    """The zoo sources' KB: the default registry minus output-rounding.

    The stock KB answers every private-measure aggregate rounded to
    base 5, which would blur the very signal the ablation measures —
    here the *measured* defenses are the armed ones, so the always-on
    rounding is removed while audit trails, set-size control and the
    record-level techniques stay.
    """
    techniques = [
        t for t in default_techniques() if t.name != "output-rounding"
    ]
    return PreservationKnowledgeBase(techniques=techniques)


def build_zoo_system(defenses=None, seed=0, check_every=64):
    """A full PrivateIye deployment of the zoo scenario."""
    defenses = defenses or ZooDefenses()
    observatory = Observatory(min_interval_width=5.0,
                              check_every=check_every)
    system = PrivateIye(
        telemetry=True, events=True, observatory=observatory,
        max_distinct_probes=1 if defenses.refusal else 8,
    )
    document, view_source = zoo_policies()
    system.load_policies(document, view_source=view_source)
    for j, source in enumerate(SOURCES):
        mechanism = None
        if defenses.laplace:
            # epsilon 0.2 → Laplace scale b = 5; deterministic per-source
            # streams keep every zoo number reproducible.
            mechanism = LaplaceMechanism(
                0.2, sensitivity=1.0,
                rng=random.Random(seed * 1000 + j + 1),
            )
        system.add_relational_source(
            source, zoo_table(j),
            qi_columns=("age", "zip") if defenses.kanon else (),
            output_mechanism=mechanism,
            knowledge=zoo_knowledge(),
        )
    return system


def zoo_publication(defenses):
    """The out-of-band release the adversary reads (Figure 1's tables).

    Unguarded: the paper's row means/stds at one-decimal precision plus
    every per-source mean — Figure 1 as printed.  Guarded: row means
    only, spanning just the queryable HMOs, at integer precision — the
    release an :class:`~repro.inference.guard.InferenceGuard` would let
    through, leaving HMO4's column unconstrained.
    """
    if defenses.guard:
        queryable = SOURCES[:-1]
        row_means = tuple(
            float(round(
                sum(FIGURE1.consistent_matrix[i][j]
                    for j in range(len(queryable))) / len(queryable)
            ))
            for i in range(len(MEASURES))
        )
        return {
            "sources": queryable,
            "row_means": row_means,
            "row_stds": None,
            "source_means": {},
            "tolerance": 0.5,
        }
    return {
        "sources": SOURCES,
        "row_means": tuple(float(v) for v in FIGURE1.row_means),
        "row_stds": tuple(float(v) for v in FIGURE1.row_stds),
        "source_means": {
            source: float(mean)
            for source, mean in zip(SOURCES, FIGURE1.source_means)
        },
        "tolerance": 0.05,
    }


# -- what an adversary walks away with ---------------------------------------

class AdversaryView:
    """Everything one adversary accumulated in a run."""

    def __init__(self, adversary, requesters):
        self.adversary = adversary
        self.requesters = list(requesters)
        self.recovered = {}       # (measure, source) → point estimate
        self.exact_sources = set()  # columns recovered exactly via probes
        self.known_columns = {}   # source → [values] known a priori
        self.record_rows = []     # rows the record-level probe released
        self.refusals = []        # refused probes: {requester, query, ...}
        self.value_range = VALUE_RANGE
        self.pooled_budget = 0.0  # 1 − Π(1 − cum_loss) over requesters

    def to_dict(self):
        return {
            "adversary": self.adversary,
            "requesters": list(self.requesters),
            "recovered_cells": len(self.recovered),
            "exact_sources": sorted(self.exact_sources),
            "known_columns": sorted(self.known_columns),
            "record_rows": len(self.record_rows),
            "refusals": len(self.refusals),
            "pooled_budget": self.pooled_budget,
        }


def pooled_role_budget(system, requesters):
    """Combined disclosure ``1 − Π(1 − cum_i)`` over colluding requesters."""
    journal = system.audit_journal()
    if journal is None:
        return 0.0
    cumulative = journal.requesters()
    escaped = 1.0
    for requester in requesters:
        escaped *= 1.0 - min(1.0, cumulative.get(requester, 0.0))
    return 1.0 - escaped


def publish_to(system, requester, defenses, own_data=None, check=False):
    """Feed the out-of-band publication into the requester's ledger."""
    publication = zoo_publication(defenses)
    observatory = system.observatory
    if observatory is None:
        return []
    stds = publication["row_stds"]
    row_stats = {
        measure: (publication["row_means"][i],
                  None if stds is None else stds[i])
        for i, measure in enumerate(MEASURES)
    }
    return observatory.note_publication(
        requester, row_stats=row_stats,
        source_means=publication["source_means"], own_data=own_data,
        sources=publication["sources"], measures=MEASURES, check=check,
    )


def run_probe_script(system, requester, refusals, include_record=True):
    """The shared probe script, posed through the real ``pose()`` path.

    Two disjoint age-slice AVGs per measure (composable into the exact
    population cell), the matching COUNTs (age is public, so counting
    escapes the sequence guard), and one record-level (age, zip) probe
    for re-identification scoring.  Refusals are appended to
    ``refusals`` — they are final answers, never retried.
    """
    avgs, counts, rows = {}, {}, []
    for measure in MEASURES:
        for slice_name, comparison in _SLICES:
            text = (
                f"SELECT AVG(//patient/{measure}) AS {measure} "
                f"WHERE //patient/age {comparison} "
                "PURPOSE research MAXLOSS 0.9"
            )
            try:
                result = system.query(text, requester=requester,
                                      role="analyst")
            except (AuditRefusal, PrivacyViolation) as refusal:
                refusals.append({
                    "requester": requester, "query": text,
                    "kind": type(refusal).__name__, "reason": str(refusal),
                })
            else:
                avgs[(measure, slice_name)] = {
                    row["_source"]: float(row[measure])
                    for row in result.rows
                }
    for slice_name, comparison in _SLICES:
        text = (
            f"SELECT COUNT(*) AS n WHERE //patient/age {comparison} "
            "PURPOSE research"
        )
        try:
            result = system.query(text, requester=requester, role="analyst")
        except (AuditRefusal, PrivacyViolation) as refusal:
            refusals.append({
                "requester": requester, "query": text,
                "kind": type(refusal).__name__, "reason": str(refusal),
            })
        else:
            counts[slice_name] = {
                row["_source"]: float(row["n"]) for row in result.rows
            }
    if include_record:
        text = "SELECT //patient/age, //patient/zip PURPOSE research"
        try:
            result = system.query(text, requester=requester, role="analyst")
        except (AuditRefusal, PrivacyViolation) as refusal:
            refusals.append({
                "requester": requester, "query": text,
                "kind": type(refusal).__name__, "reason": str(refusal),
            })
        else:
            rows = [dict(row) for row in result.rows]
    return {"avg": avgs, "count": counts, "rows": rows}


def compose_cells(probe):
    """Chain slice views into full-population cells.

    Count-weighted composition of the two slice averages; a source seen
    in only one slice (the other was refused) degrades to that slice's
    biased mean.  Returns ``(cells, partial)`` where ``partial`` marks
    the biased single-slice estimates.
    """
    cells, partial = {}, set()
    for measure in MEASURES:
        a = probe["avg"].get((measure, "a"), {})
        b = probe["avg"].get((measure, "b"), {})
        na = probe["count"].get("a", {})
        nb = probe["count"].get("b", {})
        for source in SOURCES:
            if source in a and source in b:
                # Noisy counts stay usable as weights but never vanish.
                wa = max(1.0, na.get(source, float(SLICE_SIZE)))
                wb = max(1.0, nb.get(source, float(SLICE_SIZE)))
                cells[(measure, source)] = (
                    (wa * a[source] + wb * b[source]) / (wa + wb)
                )
            elif source in a or source in b:
                cells[(measure, source)] = a.get(source, b.get(source))
                partial.add((measure, source))
    return cells, partial


def _mark_exact(view, defenses, partial):
    """Columns whose every cell was composed losslessly."""
    if defenses.laplace:
        return  # perturbed answers are never exact
    for source in SOURCES:
        complete = all(
            (measure, source) in view.recovered
            and (measure, source) not in partial
            for measure in MEASURES
        )
        if complete:
            view.exact_sources.add(source)


# -- the zoo ------------------------------------------------------------------

class CompositionAttacker:
    """Chains per-slice service views into full-population cells.

    The tracker-style adversary of Example 1, lifted to the integrated
    system: no single probe reveals a confidential cell, but the
    count-weighted combination of two innocent slice aggregates does.
    """

    name = "composition"
    requester = "zoo-composition"

    def run(self, system, defenses):
        view = AdversaryView(self.name, [self.requester])
        publish_to(system, self.requester, defenses)
        probe = run_probe_script(system, self.requester, view.refusals)
        cells, partial = compose_cells(probe)
        view.recovered = cells
        view.record_rows = probe["rows"]
        _mark_exact(view, defenses, partial)
        view.pooled_budget = pooled_role_budget(system, view.requesters)
        return view


class ConstraintAwareAttacker:
    """Exploits known source invariants on top of the probe script.

    Figure 1's malicious *participant*: it owns HMO1's column outright
    and knows the clinical plausibility band every measure must lie in,
    so its inference problem starts tighter than an outsider's.
    """

    name = "constraint_aware"
    requester = "zoo-constraint"
    home_source = SOURCES[0]
    invariant_range = (40.0, 90.0)

    def run(self, system, defenses):
        view = AdversaryView(self.name, [self.requester])
        view.value_range = self.invariant_range
        own_column = {
            measure: FIGURE1.consistent_matrix[i][0]
            for i, measure in enumerate(MEASURES)
        }
        view.known_columns = {
            self.home_source: [own_column[m] for m in MEASURES]
        }
        publish_to(system, self.requester, defenses,
                   own_data={self.home_source: own_column})
        probe = run_probe_script(system, self.requester, view.refusals)
        cells, partial = compose_cells(probe)
        view.recovered = cells
        # A priori knowledge overrides whatever the probes produced.
        for measure, value in own_column.items():
            view.recovered[(measure, self.home_source)] = value
        view.record_rows = probe["rows"]
        _mark_exact(view, defenses, partial)
        view.exact_sources.add(self.home_source)
        view.pooled_budget = pooled_role_budget(system, view.requesters)
        return view


class ColludingRequesters:
    """``n`` requesters pooling role budgets and averaging noisy answers.

    Each colluder runs the full probe script under their own identity —
    so each is individually subject to the sequence guard — then the
    ring averages the per-requester perturbed answers (fresh noise per
    principal) and pools the journal's cumulative role budget
    ``1 − Π(1 − cum_i)``.
    """

    name = "colluders"

    def __init__(self, n=3):
        if n < 2:
            raise ReproError("a collusion needs at least 2 requesters")
        self.n = n
        self.requesters = tuple(f"zoo-colluder-{k + 1}" for k in range(n))

    def run(self, system, defenses):
        view = AdversaryView(self.name, self.requesters)
        publish_to(system, self.requesters[0], defenses)
        estimates = []
        for k, requester in enumerate(self.requesters):
            probe = run_probe_script(system, requester, view.refusals,
                                     include_record=(k == 0))
            cells, partial = compose_cells(probe)
            estimates.append((cells, partial))
            if k == 0:
                view.record_rows = probe["rows"]
        pooled, partial_union = {}, set()
        for cells, partial in estimates:
            partial_union |= partial
        seen = set()
        for cells, _ in estimates:
            seen |= set(cells)
        for key in seen:
            values = [cells[key] for cells, _ in estimates if key in cells]
            pooled[key] = sum(values) / len(values)
        view.recovered = pooled
        _mark_exact(view, defenses, partial_union)
        view.pooled_budget = pooled_role_budget(system, self.requesters)
        return view


def default_adversaries():
    """One of each zoo species, default-configured."""
    return (CompositionAttacker(), ConstraintAwareAttacker(),
            ColludingRequesters())
