"""Measure what we defend — the PET validation suite.

Point :func:`validate` at a release and the confidential original and
get back a typed :class:`ValidationResult` for any of seven metrics
across three families:

* **anonymity** — re-identification risk, uniqueness, ambiguity,
  precision, non-uniform entropy over generalized records;
* **statdb** — reconstruction error of a perturbed-answer adversary;
* **inference** — interval tightness of the bound problem a release
  leaves solvable.

The adversary zoo (:mod:`repro.validation.adversaries`,
:mod:`repro.validation.zoo`) turns those metrics on the system itself:
composition, constraint-aware and colluding attackers are driven
through the real ``PrivateIye.pose()`` path against an ablatable
defense matrix, and every defense must *measurably* lower residual
risk.  See ``docs/validation.md``.
"""

from repro.validation.adversaries import (
    ColludingRequesters,
    CompositionAttacker,
    ConstraintAwareAttacker,
    ZooDefenses,
    build_zoo_system,
    default_adversaries,
    zoo_population,
    zoo_truth,
)
from repro.validation.api import (
    METRICS,
    metric_names,
    report,
    summarize,
    validate,
)
from repro.validation.result import FAMILIES, ValidationResult
from repro.validation.zoo import (
    ZooOutcome,
    matrix_table,
    run_adversary,
    run_matrix,
)

__all__ = [
    "FAMILIES",
    "METRICS",
    "ValidationResult",
    "validate",
    "report",
    "summarize",
    "metric_names",
    "ZooDefenses",
    "ZooOutcome",
    "CompositionAttacker",
    "ConstraintAwareAttacker",
    "ColludingRequesters",
    "build_zoo_system",
    "default_adversaries",
    "zoo_truth",
    "zoo_population",
    "run_adversary",
    "run_matrix",
    "matrix_table",
]
