"""The one-call validation entry point.

    from repro.validation import validate

    result = validate(release, original, metric="reidentification_risk",
                      quasi_identifiers=("age", "zip"))
    result.value          # headline number
    result.to_json()      # byte-stable JSON report

``validate`` dispatches on a normalized metric name (case, ``_``/``-``
and spaces are ignored, so ``"ReidentificationRisk"`` works), applies an
optional pass/fail ``threshold``, and returns the metric's
:class:`~repro.validation.result.ValidationResult`.  :func:`report`
renders a batch of results into one deterministic JSON document grouped
by family — the schema ``docs/validation.md`` documents.
"""

from __future__ import annotations

import json

from repro.errors import ReproError
from repro.validation import metrics as _metrics
from repro.validation.result import FAMILIES, ValidationResult

#: metric name → (callable, direction).  Direction says which side of a
#: threshold is a pass: ``"below"`` for risk metrics (lower is safer),
#: ``"above"`` for utility metrics (higher is better).
METRICS = {
    "reidentification_risk": (_metrics.reidentification_risk, "below"),
    "uniqueness": (_metrics.uniqueness, "below"),
    "ambiguity": (_metrics.ambiguity, "above"),
    "precision": (_metrics.precision, "above"),
    "non_uniform_entropy": (_metrics.non_uniform_entropy, "below"),
    "reconstruction_error": (_metrics.reconstruction_error, "above"),
    "interval_tightness": (_metrics.interval_tightness, "below"),
}


def _normalize(name):
    return "".join(c for c in str(name).lower() if c.isalnum())


_BY_NORMALIZED = {_normalize(name): name for name in METRICS}


def metric_names():
    """The canonical metric names ``validate`` accepts."""
    return tuple(METRICS)


def validate(release, original=None, metric="reidentification_risk",
             threshold=None, **options):
    """Evaluate one validation metric over a release.

    ``release`` is the published artifact (generalized records, a
    reconstruction, or an
    :class:`~repro.inference.bounds.AggregateConstraints` view),
    ``original`` the confidential ground truth where the metric needs
    it.  Extra keyword ``options`` go to the metric (e.g.
    ``quasi_identifiers=...``, ``hierarchies=...``, ``tolerance=...``).
    With ``threshold`` given, the result's ``passed`` flag is filled in
    using the metric's safe direction (risk metrics pass *below* the
    threshold, utility metrics *above*).
    """
    key = _BY_NORMALIZED.get(_normalize(metric))
    if key is None:
        raise ReproError(
            f"unknown validation metric {metric!r}; "
            f"expected one of {sorted(METRICS)}"
        )
    function, direction = METRICS[key]
    result = function(release, original, **options)
    if threshold is not None:
        result.threshold = float(threshold)
        if direction == "below":
            result.passed = result.value <= result.threshold
        else:
            result.passed = result.value >= result.threshold
    return result


def summarize(results):
    """Collapse results to ``{family: {metric: value}}`` (ledger shape)."""
    summary = {}
    for result in results:
        summary.setdefault(result.family, {})[result.metric] = result.value
    return summary


def report(results, path=None, indent=2):
    """A deterministic JSON document for a batch of results.

    Groups by family, preserves per-metric detail, and adds a
    ``summary`` section with just the headline values.  With ``path``
    given the document is also written there.  Byte-stable: same
    results → same bytes.
    """
    results = list(results)
    for result in results:
        if not isinstance(result, ValidationResult):
            raise ReproError(
                "report needs ValidationResults, got "
                f"{type(result).__name__}"
            )
    document = {
        "families": {
            family: {
                result.metric: result.to_dict()
                for result in results if result.family == family
            }
            for family in FAMILIES
            if any(result.family == family for result in results)
        },
        "summary": summarize(results),
        "metrics_evaluated": len(results),
        "all_passed": all(
            result.passed for result in results if result.passed is not None
        ),
    }
    text = json.dumps(document, indent=indent, sort_keys=True)
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return text
