"""The validation metrics — measured residual risk and utility.

Three defense families, seven metrics:

* **anonymity** (k-anonymity releases, :mod:`repro.anonymity`):
  :func:`reidentification_risk` (prosecutor-model class risk),
  :func:`uniqueness` (singleton-class fraction), :func:`ambiguity`
  (how many ground combinations a released record could be),
  :func:`precision` (Sweeney's Prec), and :func:`non_uniform_entropy`
  (frequency-weighted information loss);
* **statdb** (input/output perturbation, :mod:`repro.statdb`):
  :func:`reconstruction_error` (relative RMSE of what an adversary
  recovers against the confidential truth);
* **inference** (the bound solver, :mod:`repro.inference.bounds`):
  :func:`interval_tightness` (how close the feasibility intervals of
  hidden cells come to pinning them).

Every metric is **alignment-free**: k-anonymity releases reorder rows
(:class:`~repro.anonymity.kanonymity.FullDomainGeneralizer` regroups by
equivalence class), so the anonymity metrics compare value distributions
and coverage, never row i against row i.  Each has a brute-force oracle
in ``tests/validation/oracles.py`` and a 100+-case differential suite.
"""

from __future__ import annotations

import math

from repro.anonymity.kanonymity import AnonymizationResult, equivalence_classes
from repro.errors import ReproError
from repro.metrics.information_loss import distortion
from repro.validation.result import ValidationResult

SUPPRESSED = "*"


def _records_of(release):
    """Accept a record list or an :class:`AnonymizationResult`."""
    if isinstance(release, AnonymizationResult):
        return list(release.records)
    return list(release)


def _require(condition, message):
    if not condition:
        raise ReproError(message)


# -- generalized-value cover test ---------------------------------------------

def covers(generalized, value, hierarchy=None):
    """Could ``generalized`` be the released form of ground ``value``?

    Handles the release shapes this repo produces: exact values,
    ``'*'`` suppression, interval labels — half-open ``'[a-b)'`` from
    :func:`repro.anonymity.hierarchy.interval_hierarchy`, closed
    ``'[a-b]'`` from the Mondrian ranges the source pipeline emits —
    and, when a
    :class:`~repro.anonymity.hierarchy.GeneralizationHierarchy` is
    given, any of its levels.
    """
    if generalized is None:
        return value is None
    if value is None:
        return generalized == SUPPRESSED
    if generalized == value or str(generalized) == str(value):
        return True
    if generalized == SUPPRESSED:
        return True
    interval = _parse_interval(generalized)
    if interval is not None:
        low, high, closed = interval
        number = _as_number(value)
        if number is None:
            return False
        return low <= number <= high if closed else low <= number < high
    if hierarchy is not None:
        return any(
            hierarchy.generalize(value, level) == generalized
            for level in range(hierarchy.height + 1)
        )
    return False


def _parse_interval(label):
    """``'[a-b)'`` / ``'[a-b]'`` → ``(a, b, closed)``, else None."""
    if not isinstance(label, str) or not label.startswith("["):
        return None
    if not label.endswith((")", "]")):
        return None
    closed = label.endswith("]")
    body = label[1:-1]
    # split on the *last* viable hyphen so negative lower bounds
    # ('[-10-0)') parse too
    for i in range(len(body) - 1, 0, -1):
        if body[i] != "-":
            continue
        low, high = body[:i], body[i + 1:]
        try:
            return float(low), float(high), closed
        except ValueError:
            continue
    return None


def _as_number(value):
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def _domains(original, quasi_identifiers):
    """Distinct ground values per quasi-identifier, insertion-ordered."""
    domains = {attribute: [] for attribute in quasi_identifiers}
    seen = {attribute: set() for attribute in quasi_identifiers}
    for record in original:
        for attribute in quasi_identifiers:
            value = record.get(attribute)
            if value not in seen[attribute]:
                seen[attribute].add(value)
                domains[attribute].append(value)
    return domains


def _cover_counts(release, domains, quasi_identifiers, hierarchies):
    """``{attribute: {released value: covered domain values}}`` (memo)."""
    counts = {}
    for attribute in quasi_identifiers:
        hierarchy = (hierarchies or {}).get(attribute)
        per_value = {}
        for record in release:
            generalized = record.get(attribute)
            if generalized in per_value:
                continue
            per_value[generalized] = [
                value for value in domains[attribute]
                if covers(generalized, value, hierarchy)
            ]
        counts[attribute] = per_value
    return counts


# -- anonymity family ---------------------------------------------------------

def reidentification_risk(release, original=None, quasi_identifiers=(),
                          hierarchies=None):
    """Prosecutor-model re-identification risk of a release.

    Every record's risk is ``1 / |equivalence class|``; the headline
    value is the **maximum** (the most exposed record), with the average
    and the achieved k in the detail.  With ``original`` given, the
    detail adds journalist-style population matching: for each released
    class, how many *ground* records its generalized quasi-identifier
    tuple could be (fewer matches → higher risk the release's k hides).
    """
    records = _records_of(release)
    _require(quasi_identifiers, "reidentification_risk needs quasi_identifiers")
    params = {"quasi_identifiers": list(quasi_identifiers)}
    if not records:
        return ValidationResult(
            "reidentification_risk", "anonymity", 0.0,
            detail={"records": 0, "classes": 0, "measured_k": 0,
                    "max_risk": 0.0, "avg_risk": 0.0},
            params=params,
        )
    classes = equivalence_classes(records, quasi_identifiers)
    sizes = [len(members) for members in classes.values()]
    risks = [1.0 / size for size in sizes for _ in range(size)]
    detail = {
        "records": len(records),
        "classes": len(classes),
        "measured_k": min(sizes),
        "max_risk": max(1.0 / size for size in sizes),
        "avg_risk": sum(risks) / len(risks),
    }
    if original is not None:
        original = list(original)
        matches = []
        for key in classes:
            matched = sum(
                1 for ground in original
                if all(
                    covers(generalized, ground.get(attribute),
                           (hierarchies or {}).get(attribute))
                    for attribute, generalized in zip(quasi_identifiers, key)
                )
            )
            matches.append(matched)
        detail["population"] = len(original)
        detail["min_population_matches"] = min(matches) if matches else 0
        detail["population_risk"] = (
            max((1.0 / m) for m in matches if m > 0) if any(matches) else 0.0
        )
    return ValidationResult(
        "reidentification_risk", "anonymity", detail["max_risk"],
        detail=detail, params=params,
    )


def uniqueness(release, original=None, quasi_identifiers=()):
    """Fraction of released records in singleton equivalence classes.

    A singleton is re-identified outright under the prosecutor model.
    With ``original`` given, the detail also reports sample uniqueness
    of the ground table — the risk the release started from.
    """
    records = _records_of(release)
    _require(quasi_identifiers, "uniqueness needs quasi_identifiers")
    params = {"quasi_identifiers": list(quasi_identifiers)}

    def singleton_fraction(rows):
        if not rows:
            return 0.0, 0
        classes = equivalence_classes(rows, quasi_identifiers)
        singletons = sum(
            1 for members in classes.values() if len(members) == 1
        )
        return singletons / len(rows), singletons

    fraction, singletons = singleton_fraction(records)
    detail = {"records": len(records), "singletons": singletons}
    if original is not None:
        original_fraction, original_singletons = singleton_fraction(
            list(original)
        )
        detail["original_uniqueness"] = original_fraction
        detail["original_singletons"] = original_singletons
    return ValidationResult(
        "uniqueness", "anonymity", fraction, detail=detail, params=params,
    )


def ambiguity(release, original, quasi_identifiers=(), hierarchies=None):
    """Mean ambiguity of the release (PETWorks' Ambiguity metric).

    For each released record, count the ground quasi-identifier
    combinations (cartesian over per-attribute domains of ``original``)
    its generalized values could stand for; the record's ambiguity is
    ``1 - 1/combinations``.  0 means every record maps to exactly one
    ground combination (no ambiguity gained); → 1 means suppression.
    """
    records = _records_of(release)
    _require(quasi_identifiers, "ambiguity needs quasi_identifiers")
    _require(original is not None, "ambiguity needs the original records")
    original = list(original)
    _require(original, "ambiguity needs a non-empty original")
    params = {"quasi_identifiers": list(quasi_identifiers)}
    if not records:
        return ValidationResult(
            "ambiguity", "anonymity", 0.0,
            detail={"records": 0, "mean_combinations": 0.0}, params=params,
        )
    domains = _domains(original, quasi_identifiers)
    cover = _cover_counts(records, domains, quasi_identifiers, hierarchies)
    per_record, combination_counts = [], []
    for record in records:
        combinations = 1
        for attribute in quasi_identifiers:
            covered = cover[attribute][record.get(attribute)]
            combinations *= max(1, len(covered))
        combination_counts.append(combinations)
        per_record.append(1.0 - 1.0 / combinations)
    detail = {
        "records": len(records),
        "mean_combinations": sum(combination_counts) / len(records),
        "max_combinations": max(combination_counts),
    }
    return ValidationResult(
        "ambiguity", "anonymity", sum(per_record) / len(per_record),
        detail=detail, params=params,
    )


def precision(release, original, quasi_identifiers=(), hierarchies=None):
    """Sweeney's Prec: 1 − mean(level/height) over released cells.

    The level of a released value is the lowest hierarchy level whose
    image (over the original domain) contains it; values no level
    produces count as fully suppressed.  1.0 means raw data, 0.0 means
    every quasi-identifier of every record was suppressed.
    """
    records = _records_of(release)
    _require(quasi_identifiers, "precision needs quasi_identifiers")
    _require(hierarchies, "precision needs per-attribute hierarchies")
    missing = [a for a in quasi_identifiers if a not in hierarchies]
    _require(not missing, f"precision: no hierarchy for {missing}")
    _require(original is not None, "precision needs the original records")
    original = list(original)
    params = {"quasi_identifiers": list(quasi_identifiers)}
    if not records:
        return ValidationResult(
            "precision", "anonymity", 1.0,
            detail={"records": 0, "cells": 0, "mean_level_ratio": 0.0},
            params=params,
        )
    domains = _domains(original, quasi_identifiers)
    level_of = {}
    for attribute in quasi_identifiers:
        hierarchy = hierarchies[attribute]
        images = {}
        for record in records:
            generalized = record.get(attribute)
            if generalized in images:
                continue
            images[generalized] = _value_level(
                generalized, domains[attribute], hierarchy
            )
        level_of[attribute] = images
    ratios = []
    for record in records:
        for attribute in quasi_identifiers:
            hierarchy = hierarchies[attribute]
            level = level_of[attribute][record.get(attribute)]
            ratios.append(
                level / hierarchy.height if hierarchy.height else 0.0
            )
    mean_ratio = sum(ratios) / len(ratios)
    return ValidationResult(
        "precision", "anonymity", 1.0 - mean_ratio,
        detail={"records": len(records), "cells": len(ratios),
                "mean_level_ratio": mean_ratio},
        params=params,
    )


def _value_level(generalized, domain, hierarchy):
    """Lowest hierarchy level producing ``generalized`` over ``domain``."""
    for level in range(hierarchy.height + 1):
        if any(
            hierarchy.generalize(value, level) == generalized
            for value in domain
        ):
            return level
    return hierarchy.height


def non_uniform_entropy(release, original, quasi_identifiers=(),
                        hierarchies=None):
    """Normalized non-uniform entropy loss of the release.

    Each released cell hides a distribution over the ground values it
    covers (weighted by their frequency in ``original``); the cell's
    loss is that distribution's entropy in bits.  The headline value
    normalizes by the entropy of releasing ``'*'`` everywhere, so 0.0
    is a raw release and 1.0 is total suppression.
    """
    records = _records_of(release)
    _require(quasi_identifiers, "non_uniform_entropy needs quasi_identifiers")
    _require(original is not None,
             "non_uniform_entropy needs the original records")
    original = list(original)
    _require(original, "non_uniform_entropy needs a non-empty original")
    params = {"quasi_identifiers": list(quasi_identifiers)}
    if not records:
        return ValidationResult(
            "non_uniform_entropy", "anonymity", 0.0,
            detail={"records": 0, "total_bits": 0.0, "max_bits": 0.0},
            params=params,
        )
    frequencies = {
        attribute: {} for attribute in quasi_identifiers
    }
    for ground in original:
        for attribute in quasi_identifiers:
            value = ground.get(attribute)
            frequencies[attribute][value] = (
                frequencies[attribute].get(value, 0) + 1
            )
    domains = _domains(original, quasi_identifiers)
    cover = _cover_counts(records, domains, quasi_identifiers, hierarchies)
    column_entropy = {
        attribute: _entropy(list(frequencies[attribute].values()))
        for attribute in quasi_identifiers
    }
    total_bits, max_bits = 0.0, 0.0
    cell_bits = {}
    for record in records:
        for attribute in quasi_identifiers:
            generalized = record.get(attribute)
            key = (attribute, generalized)
            if key not in cell_bits:
                counts = [
                    frequencies[attribute][value]
                    for value in cover[attribute][generalized]
                ]
                cell_bits[key] = _entropy(counts) if counts else (
                    column_entropy[attribute]
                )
            total_bits += cell_bits[key]
            max_bits += column_entropy[attribute]
    value = total_bits / max_bits if max_bits > 0 else 0.0
    return ValidationResult(
        "non_uniform_entropy", "anonymity", value,
        detail={"records": len(records), "total_bits": total_bits,
                "max_bits": max_bits},
        params=params,
    )


def _entropy(counts):
    total = sum(counts)
    if total <= 0:
        return 0.0
    bits = 0.0
    for count in counts:
        if count > 0:
            p = count / total
            bits -= p * math.log2(p)
    return bits


# -- statdb family ------------------------------------------------------------

def reconstruction_error(release, original, tolerance=None):
    """How wrong (and how incomplete) an adversary's reconstruction is.

    ``release`` is what the adversary recovered, ``original`` the
    confidential truth — either aligned sequences or ``{key: value}``
    mappings (keys in ``original`` missing from ``release`` count as
    *not recovered*).  The headline value is the relative RMSE over the
    recovered values (:func:`repro.metrics.information_loss.distortion`);
    with ``tolerance`` given, the detail reports the fraction recovered
    within it — the zoo's cell-recovery rate.
    """
    _require(original is not None, "reconstruction_error needs the original")
    if isinstance(original, dict):
        _require(isinstance(release, dict),
                 "reconstruction_error: dict original needs a dict release")
        keys = sorted(original, key=repr)
        pairs = [
            (float(original[key]), float(release[key]))
            for key in keys if key in release
        ]
        missing = len(keys) - len(pairs)
    else:
        truth = [float(v) for v in original]
        recovered = [float(v) for v in release]
        _require(len(truth) == len(recovered),
                 "reconstruction_error: sequences must have equal length")
        pairs = list(zip(truth, recovered))
        missing = 0
    total = len(pairs) + missing
    _require(total > 0, "reconstruction_error: nothing to compare")
    params = {"tolerance": tolerance}
    if not pairs:
        detail = {"compared": 0, "missing": missing, "mae": None,
                  "bias": None, "max_abs_error": None}
        if tolerance is not None:
            detail["within_tolerance"] = 0
            detail["recovery_rate"] = 0.0
        return ValidationResult(
            "reconstruction_error", "statdb", float("inf"),
            detail=detail, params=params,
        )
    truth = [t for t, _ in pairs]
    recovered = [r for _, r in pairs]
    errors = [r - t for t, r in pairs]
    detail = {
        "compared": len(pairs),
        "missing": missing,
        "mae": sum(abs(e) for e in errors) / len(errors),
        "bias": sum(errors) / len(errors),
        "max_abs_error": max(abs(e) for e in errors),
    }
    if tolerance is not None:
        within = sum(1 for e in errors if abs(e) <= tolerance)
        detail["within_tolerance"] = within
        detail["recovery_rate"] = within / total
    return ValidationResult(
        "reconstruction_error", "statdb",
        distortion(truth, recovered, relative=True),
        detail=detail, params=params,
    )


# -- inference family ---------------------------------------------------------

def interval_tightness(release, original=None, threshold=5.0, starts=4,
                       seed=0):
    """How tightly the bound solver pins the hidden cells of a release.

    ``release`` is an
    :class:`~repro.inference.bounds.AggregateConstraints` (what the
    adversary knows); each hidden cell's feasibility interval is solved
    and scored ``1 − width/range`` (1.0 = pinned exactly, 0.0 = the
    release revealed nothing).  The headline value is the **maximum**
    tightness — the single most exposed cell, matching the guard's
    narrowest-interval decision rule.  Cells whose interval is narrower
    than ``threshold`` are *breached* (the
    :class:`~repro.inference.guard.InferenceGuard` criterion).  With the
    true matrix ``original`` (``{(row, col): value}``), the detail
    reports coverage — the fraction of intervals bracketing the truth.
    An infeasible problem (inconsistent published aggregates) scores 0.
    """
    from repro.inference.bounds import AggregateConstraints, cell_bounds

    _require(isinstance(release, AggregateConstraints),
             "interval_tightness needs an AggregateConstraints release")
    _require(threshold > 0, "threshold must be positive")
    lo, hi = release.value_range
    span = float(hi) - float(lo)
    _require(span > 0, "value_range must be non-degenerate")
    params = {"threshold": threshold, "starts": starts, "seed": seed,
              "value_range": [lo, hi]}
    if not release.hidden_cells:
        return ValidationResult(
            "interval_tightness", "inference", 0.0,
            detail={"hidden_cells": 0, "intervals": {},
                    "breached": 0, "breach_fraction": 0.0,
                    "narrowest_width": None, "mean_width": None,
                    "infeasible": False},
            params=params,
        )
    try:
        intervals = cell_bounds(release, starts=starts, seed=seed)
    except ReproError as error:
        return ValidationResult(
            "interval_tightness", "inference", 0.0,
            detail={"hidden_cells": len(release.hidden_cells),
                    "intervals": {}, "breached": 0, "breach_fraction": 0.0,
                    "narrowest_width": None, "mean_width": None,
                    "infeasible": True, "reason": str(error)},
            params=params,
        )
    widths = {cell: high - low for cell, (low, high) in intervals.items()}
    tightness = {
        cell: max(0.0, 1.0 - width / span) for cell, width in widths.items()
    }
    breached = [cell for cell, width in widths.items() if width < threshold]
    detail = {
        "hidden_cells": len(intervals),
        "intervals": {
            f"{cell[0]},{cell[1]}": [low, high]
            for cell, (low, high) in sorted(intervals.items())
        },
        "breached": len(breached),
        "breach_fraction": len(breached) / len(intervals),
        "narrowest_width": min(widths.values()),
        "mean_width": sum(widths.values()) / len(widths),
        "infeasible": False,
    }
    if original is not None:
        covered = sum(
            1 for cell, (low, high) in intervals.items()
            if cell in original
            and low - 1e-6 <= float(original[cell]) <= high + 1e-6
        )
        detail["coverage"] = covered / len(intervals)
    return ValidationResult(
        "interval_tightness", "inference", max(tightness.values()),
        detail=detail, params=params,
    )
