"""Named-table catalogs (one per source database)."""

from __future__ import annotations

from repro.errors import RelationalError
from repro.relational.table import Table


class Catalog:
    """A collection of named tables — one remote source's database."""

    def __init__(self, name="db"):
        self.name = name
        self._tables = {}

    def add(self, table):
        """Register ``table`` under its schema name."""
        if not isinstance(table, Table):
            raise RelationalError("catalog entries must be Table instances")
        if table.name in self._tables:
            raise RelationalError(
                f"catalog {self.name!r} already has a table {table.name!r}"
            )
        self._tables[table.name] = table
        return table

    def table(self, name):
        """Look up a table by name."""
        if name not in self._tables:
            raise RelationalError(
                f"catalog {self.name!r} has no table {name!r} "
                f"(has {sorted(self._tables)})"
            )
        return self._tables[name]

    def has_table(self, name):
        """True when a table named ``name`` is registered."""
        return name in self._tables

    def table_names(self):
        """Sorted names of all registered tables."""
        return sorted(self._tables)

    def drop(self, name):
        """Remove the table named ``name``."""
        if name not in self._tables:
            raise RelationalError(f"cannot drop unknown table {name!r}")
        del self._tables[name]

    def __contains__(self, name):
        return name in self._tables

    def __len__(self):
        return len(self._tables)

    def __repr__(self):
        return f"Catalog({self.name!r}, tables={self.table_names()})"
