"""SQL text generation and parsing for the engine's SELECT subset.

The per-source query transformer (paper §4) turns mediated XML queries into
SQL for relational sources; round-tripping through text keeps that interface
honest.  Supported grammar::

    SELECT [DISTINCT] select_list
    FROM table [JOIN table2 ON left_col = right_col]
    [WHERE predicate] [GROUP BY cols] [ORDER BY col [ASC|DESC], ...]
    [LIMIT n]

with predicates over comparisons, IS [NOT] NULL, IN lists, AND/OR/NOT, and
parentheses.
"""

from __future__ import annotations

from repro.errors import SqlError
from repro.relational.engine import AGGREGATE_FUNCS, Aggregate, Join, SelectQuery
from repro.relational.expr import (
    And,
    Comparison,
    InList,
    IsNull,
    Not,
    Or,
    TRUE,
    sql_literal,
)

_KEYWORDS = {
    "select", "distinct", "from", "join", "on", "where", "group", "by",
    "order", "limit", "and", "or", "not", "is", "null", "in", "as",
    "asc", "desc", "true", "false",
}


def to_sql(query):
    """Render a :class:`SelectQuery` as SQL text."""
    items = []
    items.extend(query.columns)
    for aggregate in query.aggregates:
        items.append(f"{aggregate.func.upper()}({aggregate.column}) AS {aggregate.alias}")
    distinct = "DISTINCT " if query.distinct else ""
    parts = [f"SELECT {distinct}{', '.join(items)}", f"FROM {query.table}"]
    if query.join is not None:
        parts.append(
            f"JOIN {query.join.right_table} ON "
            f"{query.join.left_column} = {query.join.right_column}"
        )
    if query.where is not TRUE:
        parts.append(f"WHERE {query.where.to_sql()}")
    if query.group_by:
        parts.append(f"GROUP BY {', '.join(query.group_by)}")
    if query.order_by:
        rendered = ", ".join(
            f"{col} {'ASC' if asc else 'DESC'}" for col, asc in query.order_by
        )
        parts.append(f"ORDER BY {rendered}")
    if query.limit is not None:
        parts.append(f"LIMIT {query.limit}")
    return " ".join(parts)


def parse_sql(text):
    """Parse SQL text into a :class:`SelectQuery`."""
    tokens = _tokenize(text)
    parser = _SqlParser(tokens, text)
    query = parser.parse_select()
    parser.expect_end()
    return query


# -- tokenizer ----------------------------------------------------------------


class _Token:
    __slots__ = ("kind", "value")

    def __init__(self, kind, value):
        self.kind = kind  # "kw" | "name" | "number" | "string" | "punct"
        self.value = value

    def __repr__(self):
        return f"{self.kind}:{self.value!r}"


def _tokenize(text):
    if not isinstance(text, str) or not text.strip():
        raise SqlError("SQL input must be a non-empty string")
    tokens = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
        elif ch == "'":
            j = i + 1
            buffer = []
            while True:
                if j >= n:
                    raise SqlError(f"unterminated string literal in {text!r}")
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":
                        buffer.append("'")
                        j += 2
                        continue
                    break
                buffer.append(text[j])
                j += 1
            tokens.append(_Token("string", "".join(buffer)))
            i = j + 1
        elif ch.isdigit() or (ch in "+-." and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (text[j].isdigit() or text[j] in ".eE+-"):
                if text[j] in "+-" and text[j - 1] not in "eE":
                    break
                j += 1
            tokens.append(_Token("number", text[i:j]))
            i = j
        elif ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            kind = "kw" if word.lower() in _KEYWORDS else "name"
            tokens.append(_Token(kind, word.lower() if kind == "kw" else word))
            i = j
        elif text.startswith(("<>", "<=", ">=", "!="), i):
            op = text[i:i + 2]
            tokens.append(_Token("punct", "!=" if op == "<>" else op))
            i += 2
        elif ch in "=<>(),*":
            tokens.append(_Token("punct", ch))
            i += 1
        else:
            raise SqlError(f"unexpected character {ch!r} at offset {i} in {text!r}")
    return tokens


# -- parser -------------------------------------------------------------------


class _SqlParser:
    def __init__(self, tokens, text):
        self.tokens = tokens
        self.pos = 0
        self.text = text

    def parse_select(self):
        self._expect_kw("select")
        distinct = self._accept_kw("distinct")
        columns, aggregates = self._parse_select_list()
        self._expect_kw("from")
        table = self._expect_name()
        join = None
        if self._accept_kw("join"):
            right = self._expect_name()
            self._expect_kw("on")
            left_col = self._expect_name()
            self._expect_punct("=")
            right_col = self._expect_name()
            join = Join(right, left_col, right_col)
        where = TRUE
        if self._accept_kw("where"):
            where = self._parse_or()
        group_by = []
        if self._accept_kw("group"):
            self._expect_kw("by")
            group_by = self._parse_name_list()
        order_by = []
        if self._accept_kw("order"):
            self._expect_kw("by")
            while True:
                column = self._expect_name()
                ascending = True
                if self._accept_kw("desc"):
                    ascending = False
                else:
                    self._accept_kw("asc")
                order_by.append((column, ascending))
                if not self._accept_punct(","):
                    break
        limit = None
        if self._accept_kw("limit"):
            token = self._next()
            if token is None or token.kind != "number":
                raise self._error("LIMIT requires a number")
            limit = int(float(token.value))
        return SelectQuery(
            table,
            columns=columns or None,
            aggregates=aggregates or None,
            where=where,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
            join=join,
            distinct=distinct,
        )

    def expect_end(self):
        if self.pos != len(self.tokens):
            raise self._error(f"trailing tokens: {self.tokens[self.pos:]}")

    # select list ------------------------------------------------------------

    def _parse_select_list(self):
        columns, aggregates = [], []
        while True:
            token = self._peek()
            if token is None:
                raise self._error("unexpected end of select list")
            if token.kind == "punct" and token.value == "*":
                self._next()
                columns.append("*")
            elif token.kind == "name" and self._peek_is_punct("(", offset=1):
                aggregates.append(self._parse_aggregate())
            elif token.kind == "name":
                self._next()
                columns.append(token.value)
            else:
                raise self._error(f"unexpected token {token!r} in select list")
            if not self._accept_punct(","):
                break
        return columns, aggregates

    def _parse_aggregate(self):
        func = self._expect_name()
        if func.lower() not in AGGREGATE_FUNCS:
            raise self._error(f"unknown aggregate function {func!r}")
        self._expect_punct("(")
        token = self._next()
        if token is None:
            raise self._error("unterminated aggregate")
        if token.kind == "punct" and token.value == "*":
            column = "*"
        elif token.kind == "name":
            column = token.value
        else:
            raise self._error(f"bad aggregate argument {token!r}")
        self._expect_punct(")")
        alias = None
        if self._accept_kw("as"):
            alias = self._expect_name()
        return Aggregate(func.lower(), column, alias)

    # predicates ---------------------------------------------------------------

    def _parse_or(self):
        parts = [self._parse_and()]
        while self._accept_kw("or"):
            parts.append(self._parse_and())
        return parts[0] if len(parts) == 1 else Or(parts)

    def _parse_and(self):
        parts = [self._parse_unary()]
        while self._accept_kw("and"):
            parts.append(self._parse_unary())
        return parts[0] if len(parts) == 1 else And(parts)

    def _parse_unary(self):
        if self._accept_kw("not"):
            return Not(self._parse_unary())
        if self._accept_punct("("):
            inner = self._parse_or()
            self._expect_punct(")")
            return inner
        return self._parse_atom()

    def _parse_atom(self):
        column = self._expect_name()
        if self._accept_kw("is"):
            negated = bool(self._accept_kw("not"))
            self._expect_kw("null")
            return IsNull(column, negated=negated)
        if self._accept_kw("in"):
            self._expect_punct("(")
            values = [self._parse_literal()]
            while self._accept_punct(","):
                values.append(self._parse_literal())
            self._expect_punct(")")
            return InList(column, values)
        token = self._next()
        if token is None or token.kind != "punct" or token.value not in (
            "=", "!=", "<", "<=", ">", ">=",
        ):
            raise self._error(f"expected comparison operator after {column!r}")
        value = self._parse_literal()
        return Comparison(column, token.value, value)

    def _parse_literal(self):
        token = self._next()
        if token is None:
            raise self._error("expected a literal")
        if token.kind == "string":
            return token.value
        if token.kind == "number":
            number = float(token.value)
            return int(number) if number.is_integer() and "." not in token.value and "e" not in token.value.lower() else number
        if token.kind == "kw" and token.value in ("true", "false"):
            return token.value == "true"
        if token.kind == "kw" and token.value == "null":
            return None
        raise self._error(f"bad literal {token!r}")

    # token helpers --------------------------------------------------------------

    def _parse_name_list(self):
        names = [self._expect_name()]
        while self._accept_punct(","):
            names.append(self._expect_name())
        return names

    def _peek(self, offset=0):
        index = self.pos + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def _peek_is_punct(self, value, offset=0):
        token = self._peek(offset)
        return token is not None and token.kind == "punct" and token.value == value

    def _next(self):
        token = self._peek()
        if token is not None:
            self.pos += 1
        return token

    def _accept_kw(self, word):
        token = self._peek()
        if token is not None and token.kind == "kw" and token.value == word:
            self.pos += 1
            return True
        return False

    def _expect_kw(self, word):
        if not self._accept_kw(word):
            raise self._error(f"expected keyword {word.upper()}")

    def _accept_punct(self, value):
        if self._peek_is_punct(value):
            self.pos += 1
            return True
        return False

    def _expect_punct(self, value):
        if not self._accept_punct(value):
            raise self._error(f"expected {value!r}")

    def _expect_name(self):
        token = self._next()
        if token is None or token.kind != "name":
            raise self._error(f"expected a name, got {token!r}")
        return token.value

    def _error(self, message):
        return SqlError(f"{message} (near token {self.pos} in {self.text!r})")
