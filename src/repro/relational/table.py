"""In-memory tables."""

from __future__ import annotations

from repro.errors import SchemaError
from repro.relational.schema import TableSchema


class Table:
    """An in-memory table: a :class:`TableSchema` plus a list of row tuples.

    Rows are stored as coerced tuples; :meth:`rows_as_dicts` provides the
    mapping view that the expression evaluator and the engine operate on.
    """

    def __init__(self, schema, rows=None):
        if not isinstance(schema, TableSchema):
            raise SchemaError("Table requires a TableSchema")
        self.schema = schema
        self.rows = []
        for row in rows or []:
            self.insert(row)

    @classmethod
    def from_dicts(cls, name, dict_rows, column_order=None, types=None):
        """Build a table by inferring a schema from dict rows.

        Types are inferred per column from the first non-null value
        (``int`` → INT, ``float`` → FLOAT, ``bool`` → BOOL, else TEXT) and
        may be overridden via ``types`` (a name → type mapping).
        """
        from repro.relational.schema import Column
        from repro.relational.types import ColumnType

        dict_rows = list(dict_rows)
        if not dict_rows:
            raise SchemaError("from_dicts needs at least one row to infer a schema")
        names = list(column_order) if column_order else list(dict_rows[0].keys())
        columns = []
        overrides = types or {}
        for name_ in names:
            if name_ in overrides:
                col_type = overrides[name_]
                if isinstance(col_type, str):
                    col_type = ColumnType(col_type.lower())
            else:
                col_type = _infer_type(dict_rows, name_)
            columns.append(Column(name_, col_type))
        table = cls(TableSchema(name, columns))
        for row in dict_rows:
            table.insert(row)
        return table

    @property
    def name(self):
        """Table name (from the schema)."""
        return self.schema.name

    def insert(self, row):
        """Insert one row (sequence or mapping), validating against schema."""
        self.rows.append(self.schema.coerce_row(row))

    def insert_many(self, rows):
        """Insert every row of ``rows``."""
        for row in rows:
            self.insert(row)

    def rows_as_dicts(self):
        """Yield each row as a column-name → value dict."""
        names = self.schema.column_names()
        for row in self.rows:
            yield dict(zip(names, row))

    def column_values(self, name):
        """All values of column ``name``, in row order."""
        index = self.schema.index_of(name)
        return [row[index] for row in self.rows]

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __repr__(self):
        return f"Table({self.schema.name!r}, rows={len(self.rows)})"


def _infer_type(dict_rows, name):
    from repro.relational.types import ColumnType

    for row in dict_rows:
        value = row.get(name)
        if value is None:
            continue
        if isinstance(value, bool):
            return ColumnType.BOOL
        if isinstance(value, int):
            return ColumnType.INT
        if isinstance(value, float):
            return ColumnType.FLOAT
        return ColumnType.TEXT
    return ColumnType.TEXT
