"""Column types and value coercion for the mini relational engine."""

from __future__ import annotations

import enum

from repro.errors import SchemaError


class ColumnType(enum.Enum):
    """The four column types the engine supports."""

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    BOOL = "bool"

    def coerce(self, value):
        """Coerce ``value`` to this type (``None`` passes through as NULL).

        Coercion is strict enough to catch schema mistakes: a TEXT value is
        never silently truncated into an INT, and non-numeric strings fail
        loudly rather than becoming NaN.
        """
        if value is None:
            return None
        try:
            if self is ColumnType.INT:
                return _coerce_int(value)
            if self is ColumnType.FLOAT:
                return _coerce_float(value)
            if self is ColumnType.BOOL:
                return _coerce_bool(value)
            return _coerce_text(value)
        except (TypeError, ValueError) as exc:
            # The failing value is a cell: naming only its type keeps
            # the error out of the side-channel-leak budget (schema
            # errors surface in refusal events and reports verbatim).
            raise SchemaError(
                f"cannot coerce {type(value).__name__} value "
                f"to {self.value}"
            ) from exc

    @property
    def is_numeric(self):
        """True for INT and FLOAT columns."""
        return self in (ColumnType.INT, ColumnType.FLOAT)


def _coerce_int(value):
    if isinstance(value, bool):
        raise ValueError("bool is not an int")  # repro-lint: disable=REP003 -- coercion mirrors int()/float(): callers catch (TypeError, ValueError)
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if not value.is_integer():
            raise ValueError("float has a fractional part")  # repro-lint: disable=REP003 -- coercion mirrors int()/float(): callers catch (TypeError, ValueError)
        return int(value)
    if isinstance(value, str):
        return int(value.strip())
    raise TypeError(f"unsupported source type {type(value).__name__}")  # repro-lint: disable=REP003 -- coercion mirrors int()/float(): callers catch (TypeError, ValueError)


def _coerce_float(value):
    if isinstance(value, bool):
        raise ValueError("bool is not a float")  # repro-lint: disable=REP003 -- coercion mirrors int()/float(): callers catch (TypeError, ValueError)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        return float(value.strip())
    raise TypeError(f"unsupported source type {type(value).__name__}")  # repro-lint: disable=REP003 -- coercion mirrors int()/float(): callers catch (TypeError, ValueError)


def _coerce_bool(value):
    if isinstance(value, bool):
        return value
    if isinstance(value, int) and value in (0, 1):
        return bool(value)
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("true", "t", "1", "yes"):
            return True
        if lowered in ("false", "f", "0", "no"):
            return False
        raise ValueError("not a boolean literal")  # repro-lint: disable=REP003 -- coercion mirrors int()/float(): callers catch (TypeError, ValueError)
    raise TypeError(f"unsupported source type {type(value).__name__}")  # repro-lint: disable=REP003 -- coercion mirrors int()/float(): callers catch (TypeError, ValueError)


def _coerce_text(value):
    if isinstance(value, str):
        return value
    if isinstance(value, (int, float, bool)):
        return str(value)
    raise TypeError(f"unsupported source type {type(value).__name__}")  # repro-lint: disable=REP003 -- coercion mirrors int()/float(): callers catch (TypeError, ValueError)
