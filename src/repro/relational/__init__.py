"""Mini relational engine.

The paper's remote sources include relational databases: the per-source
query transformer emits SQL and the rewriter/optimizer reason over
relational plans.  This package provides the substrate: typed schemas
(:mod:`repro.relational.schema`), in-memory tables
(:mod:`repro.relational.table`), a predicate/expression AST
(:mod:`repro.relational.expr`), a logical-query model plus executor
(:mod:`repro.relational.engine`), SQL generation and a small SQL parser
(:mod:`repro.relational.sql`), and a named-table catalog
(:mod:`repro.relational.catalog`).
"""

from repro.relational.types import ColumnType
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.expr import (
    And,
    Comparison,
    Expr,
    InList,
    IsNull,
    Not,
    Or,
    TRUE,
)
from repro.relational.engine import Aggregate, SelectQuery, execute
from repro.relational.sql import parse_sql, to_sql
from repro.relational.catalog import Catalog

__all__ = [
    "ColumnType",
    "Column",
    "TableSchema",
    "Table",
    "Expr",
    "Comparison",
    "And",
    "Or",
    "Not",
    "IsNull",
    "InList",
    "TRUE",
    "Aggregate",
    "SelectQuery",
    "execute",
    "parse_sql",
    "to_sql",
    "Catalog",
]
