"""Table schemas for the mini relational engine."""

from __future__ import annotations

from repro.errors import SchemaError
from repro.relational.types import ColumnType


class Column:
    """A named, typed column with optional NOT NULL constraint."""

    __slots__ = ("name", "type", "nullable")

    def __init__(self, name, type, nullable=True):
        # The flow analyzer (REP010) taints whole objects: a schema built
        # from confidential rows makes every identifier read through it
        # hot.  These messages embed column/table *names* and type labels
        # — metadata by the paper's model — so each site below carries a
        # justified suppression rather than a redaction.
        if not name or not isinstance(name, str) or not name.isidentifier():
            # repro-lint: disable=REP010 -- column name: identifier
            raise SchemaError(f"invalid column name: {name!r}")
        if isinstance(type, str):
            try:
                type = ColumnType(type.lower())
            except ValueError as exc:
                # repro-lint: disable=REP010 -- type label: metadata
                raise SchemaError(f"unknown column type {type!r}") from exc
        if not isinstance(type, ColumnType):
            # repro-lint: disable=REP010 -- type label: metadata
            raise SchemaError(f"column type must be ColumnType, got {type!r}")
        self.name = name
        self.type = type
        self.nullable = bool(nullable)

    def __repr__(self):
        null = "" if self.nullable else " NOT NULL"
        return f"{self.name} {self.type.value.upper()}{null}"

    def __eq__(self, other):
        return (
            isinstance(other, Column)
            and (self.name, self.type, self.nullable)
            == (other.name, other.type, other.nullable)
        )


class TableSchema:
    """An ordered collection of uniquely-named columns."""

    def __init__(self, name, columns):
        # identifier-only messages; see the Column.__init__ note (REP010
        # taints whole objects, names are metadata)
        if not name or not isinstance(name, str) or not name.isidentifier():
            # repro-lint: disable=REP010 -- table name: identifier
            raise SchemaError(f"invalid table name: {name!r}")
        columns = [c if isinstance(c, Column) else Column(*c) for c in columns]
        if not columns:
            # repro-lint: disable=REP010 -- table name: identifier
            raise SchemaError(f"table {name!r} must have at least one column")
        names = [c.name for c in columns]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            # repro-lint: disable=REP010 -- table/column names: identifiers
            raise SchemaError(f"duplicate columns in {name!r}: {sorted(duplicates)}")
        self.name = name
        self.columns = columns
        self._by_name = {c.name: i for i, c in enumerate(columns)}

    def column_names(self):
        """Column names in declaration order."""
        return [c.name for c in self.columns]

    def column(self, name):
        """Return the :class:`Column` named ``name``."""
        index = self.index_of(name)
        return self.columns[index]

    def index_of(self, name):
        """Return the positional index of column ``name``."""
        if name not in self._by_name:
            # repro-lint: disable=REP010 -- table/column names: identifiers
            raise SchemaError(f"table {self.name!r} has no column {name!r}")
        return self._by_name[name]

    def has_column(self, name):
        """True when a column named ``name`` exists."""
        return name in self._by_name

    def coerce_row(self, values):
        """Validate and coerce one row (sequence or mapping) into a tuple."""
        if isinstance(values, dict):
            unknown = set(values) - set(self._by_name)
            if unknown:
                # repro-lint: disable=REP010 -- row *keys* are column
                # names, not cells
                raise SchemaError(
                    f"unknown columns for {self.name!r}: {sorted(unknown)}"
                )
            values = [values.get(c.name) for c in self.columns]
        values = list(values)
        if len(values) != len(self.columns):
            # repro-lint: disable=REP010 -- counts and identifiers only
            raise SchemaError(
                f"row has {len(values)} values, table {self.name!r} "
                f"has {len(self.columns)} columns"
            )
        row = []
        for column, value in zip(self.columns, values):
            coerced = column.type.coerce(value)
            if coerced is None and not column.nullable:
                # repro-lint: disable=REP010 -- names the violated
                # constraint, never the value (a null, at that)
                raise SchemaError(
                    f"column {column.name!r} of {self.name!r} is NOT NULL"
                )
            row.append(coerced)
        return tuple(row)

    def subset(self, names, new_name=None):
        """A new schema keeping only ``names`` (projection)."""
        columns = [self.column(n) for n in names]
        return TableSchema(new_name or self.name, columns)

    def __repr__(self):
        cols = ", ".join(repr(c) for c in self.columns)
        return f"TableSchema({self.name!r}: {cols})"

    def __eq__(self, other):
        return (
            isinstance(other, TableSchema)
            and self.name == other.name
            and self.columns == other.columns
        )
