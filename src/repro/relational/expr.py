"""Predicate expression AST.

Predicates are built from comparisons over columns and combined with
AND/OR/NOT.  The same AST is shared by the engine's WHERE evaluation, the
SQL generator, the privacy rewriter (which conjoins policy predicates onto
requester queries), and the query-feature extractor (which inspects
predicate structure to cluster queries).

NULL semantics follow SQL: a comparison involving NULL is false (not an
error), and ``IsNull`` is the explicit test.
"""

from __future__ import annotations

from repro.errors import RelationalError

_COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


class Expr:
    """Base class for predicate expressions."""

    def evaluate(self, row):
        """Evaluate against ``row`` (a column → value mapping)."""
        raise NotImplementedError

    def columns_used(self):
        """The set of column names this expression references."""
        raise NotImplementedError

    def to_sql(self):
        """Render as a SQL text fragment."""
        raise NotImplementedError

    # Combinators ----------------------------------------------------------

    def and_(self, other):
        """``self AND other`` (flattens nested ANDs)."""
        if other is TRUE:
            return self
        if self is TRUE:
            return other
        parts = []
        for expr in (self, other):
            parts.extend(expr.parts if isinstance(expr, And) else [expr])
        return And(parts)

    def or_(self, other):
        """``self OR other``."""
        parts = []
        for expr in (self, other):
            parts.extend(expr.parts if isinstance(expr, Or) else [expr])
        return Or(parts)

    def negate(self):
        """``NOT self``."""
        return Not(self)


class _True(Expr):
    """The always-true predicate (an empty WHERE clause)."""

    def evaluate(self, row):
        return True

    def columns_used(self):
        return set()

    def to_sql(self):
        return "TRUE"

    def __repr__(self):
        return "TRUE"

    def __eq__(self, other):
        return isinstance(other, _True)


TRUE = _True()


class Comparison(Expr):
    """``column <op> literal``."""

    __slots__ = ("column", "op", "value")

    def __init__(self, column, op, value):
        if op not in _COMPARISON_OPS:
            raise RelationalError(f"unknown comparison operator {op!r}")
        self.column = column
        self.op = op
        self.value = value

    def evaluate(self, row):
        if self.column not in row:
            raise RelationalError(f"row has no column {self.column!r}")
        left = row[self.column]
        if left is None or self.value is None:
            return False
        return _apply_op(left, self.op, self.value)

    def columns_used(self):
        return {self.column}

    def to_sql(self):
        op = "<>" if self.op == "!=" else self.op
        return f"{self.column} {op} {sql_literal(self.value)}"

    def __repr__(self):
        return f"({self.column} {self.op} {self.value!r})"

    def __eq__(self, other):
        return (
            isinstance(other, Comparison)
            and (self.column, self.op, self.value)
            == (other.column, other.op, other.value)
        )


class IsNull(Expr):
    """``column IS [NOT] NULL``."""

    __slots__ = ("column", "negated")

    def __init__(self, column, negated=False):
        self.column = column
        self.negated = negated

    def evaluate(self, row):
        if self.column not in row:
            raise RelationalError(f"row has no column {self.column!r}")
        result = row[self.column] is None
        return not result if self.negated else result

    def columns_used(self):
        return {self.column}

    def to_sql(self):
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.column} {suffix}"

    def __repr__(self):
        return f"({self.column} {'IS NOT NULL' if self.negated else 'IS NULL'})"

    def __eq__(self, other):
        return (
            isinstance(other, IsNull)
            and (self.column, self.negated) == (other.column, other.negated)
        )


class InList(Expr):
    """``column IN (v1, v2, ...)``."""

    __slots__ = ("column", "values")

    def __init__(self, column, values):
        values = list(values)
        if not values:
            raise RelationalError("IN list must not be empty")
        self.column = column
        self.values = values

    def evaluate(self, row):
        if self.column not in row:
            raise RelationalError(f"row has no column {self.column!r}")
        left = row[self.column]
        if left is None:
            return False
        return left in self.values

    def columns_used(self):
        return {self.column}

    def to_sql(self):
        rendered = ", ".join(sql_literal(v) for v in self.values)
        return f"{self.column} IN ({rendered})"

    def __repr__(self):
        return f"({self.column} IN {self.values!r})"

    def __eq__(self, other):
        return (
            isinstance(other, InList)
            and (self.column, self.values) == (other.column, other.values)
        )


class And(Expr):
    """Conjunction of sub-expressions."""

    __slots__ = ("parts",)

    def __init__(self, parts):
        self.parts = [p for p in parts if p is not TRUE]
        if not self.parts:
            self.parts = [TRUE]

    def evaluate(self, row):
        return all(p.evaluate(row) for p in self.parts)

    def columns_used(self):
        used = set()
        for part in self.parts:
            used |= part.columns_used()
        return used

    def to_sql(self):
        return " AND ".join(_parenthesize(p) for p in self.parts)

    def __repr__(self):
        return "(" + " AND ".join(repr(p) for p in self.parts) + ")"

    def __eq__(self, other):
        return isinstance(other, And) and self.parts == other.parts


class Or(Expr):
    """Disjunction of sub-expressions."""

    __slots__ = ("parts",)

    def __init__(self, parts):
        self.parts = list(parts)
        if not self.parts:
            raise RelationalError("OR requires at least one part")

    def evaluate(self, row):
        return any(p.evaluate(row) for p in self.parts)

    def columns_used(self):
        used = set()
        for part in self.parts:
            used |= part.columns_used()
        return used

    def to_sql(self):
        return " OR ".join(_parenthesize(p) for p in self.parts)

    def __repr__(self):
        return "(" + " OR ".join(repr(p) for p in self.parts) + ")"

    def __eq__(self, other):
        return isinstance(other, Or) and self.parts == other.parts


class Not(Expr):
    """Negation of a sub-expression."""

    __slots__ = ("part",)

    def __init__(self, part):
        self.part = part

    def evaluate(self, row):
        return not self.part.evaluate(row)

    def columns_used(self):
        return self.part.columns_used()

    def to_sql(self):
        return f"NOT ({self.part.to_sql()})"

    def __repr__(self):
        return f"NOT {self.part!r}"

    def __eq__(self, other):
        return isinstance(other, Not) and self.part == other.part


def sql_literal(value):
    """Render a Python value as a SQL literal."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def _parenthesize(expr):
    sql = expr.to_sql()
    if isinstance(expr, (And, Or)):
        return f"({sql})"
    return sql


def _apply_op(left, op, right):
    try:
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        # SQL-style: incomparable types compare false rather than raising,
        # so privacy predicates conjoined by the rewriter never crash a scan.
        return False
    raise RelationalError(f"unknown comparison operator {op!r}")
