"""Logical queries and their executor.

A :class:`SelectQuery` is the engine's logical plan: projection or
aggregation over one table (optionally hash-joined with another), with an
optional WHERE predicate, GROUP BY, ORDER BY, and LIMIT.  :func:`execute`
runs a plan against a :class:`~repro.relational.catalog.Catalog` or a single
:class:`~repro.relational.table.Table` and returns a result
:class:`~repro.relational.table.Table`.

Aggregate functions: COUNT, SUM, AVG, MIN, MAX, STDDEV (population standard
deviation, matching the paper's Figure 1 sigma), and VAR.  ``COUNT(*)`` is
spelled ``Aggregate('count', '*')``.
"""

from __future__ import annotations

import math

from repro.errors import RelationalError
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.types import ColumnType

AGGREGATE_FUNCS = ("count", "sum", "avg", "min", "max", "stddev", "var")


class Aggregate:
    """One aggregate output column: ``func(column) AS alias``."""

    __slots__ = ("func", "column", "alias")

    def __init__(self, func, column, alias=None):
        func = func.lower()
        if func not in AGGREGATE_FUNCS:
            raise RelationalError(f"unknown aggregate function {func!r}")
        if column == "*" and func != "count":
            raise RelationalError(f"{func}(*) is not valid; only count(*)")
        self.func = func
        self.column = column
        self.alias = alias or (f"{func}_{column}" if column != "*" else "count")

    def compute(self, values):
        """Apply the aggregate to a list of (possibly NULL) values.

        SQL semantics: NULLs are skipped; aggregates over an empty set
        yield NULL, except COUNT which yields 0.
        """
        if self.func == "count":
            if self.column == "*":
                return len(values)
            return sum(1 for v in values if v is not None)
        present = [v for v in values if v is not None]
        if not present:
            return None
        if self.func == "sum":
            return sum(present)
        if self.func == "avg":
            return sum(present) / len(present)
        if self.func == "min":
            return min(present)
        if self.func == "max":
            return max(present)
        mean = sum(present) / len(present)
        variance = sum((v - mean) ** 2 for v in present) / len(present)
        if self.func == "var":
            return variance
        return math.sqrt(variance)

    def output_type(self, input_type):
        """The result column type given the input column's type."""
        if self.func == "count":
            return ColumnType.INT
        if input_type is ColumnType.BOOL:
            return ColumnType.FLOAT  # bools aggregate as 0/1
        if self.func in ("min", "max", "sum"):
            return input_type
        return ColumnType.FLOAT

    def __repr__(self):
        return f"{self.func}({self.column}) AS {self.alias}"

    def __eq__(self, other):
        return (
            isinstance(other, Aggregate)
            and (self.func, self.column, self.alias)
            == (other.func, other.column, other.alias)
        )


class Join:
    """An equi-join clause: ``JOIN right_table ON left_col = right_col``."""

    __slots__ = ("right_table", "left_column", "right_column")

    def __init__(self, right_table, left_column, right_column):
        self.right_table = right_table
        self.left_column = left_column
        self.right_column = right_column

    def __repr__(self):
        return (
            f"JOIN {self.right_table} ON "
            f"{self.left_column} = {self.right_column}"
        )

    def __eq__(self, other):
        return (
            isinstance(other, Join)
            and (self.right_table, self.left_column, self.right_column)
            == (other.right_table, other.left_column, other.right_column)
        )


class SelectQuery:
    """A logical SELECT over one table (plus optional equi-join)."""

    def __init__(
        self,
        table,
        columns=None,
        aggregates=None,
        where=None,
        group_by=None,
        order_by=None,
        limit=None,
        join=None,
        distinct=False,
    ):
        from repro.relational.expr import TRUE

        if columns and aggregates and not group_by:
            raise RelationalError(
                "mixing plain columns and aggregates requires GROUP BY"
            )
        if not columns and not aggregates:
            columns = ["*"]
        self.table = table
        self.columns = list(columns or [])
        self.aggregates = list(aggregates or [])
        self.where = where if where is not None else TRUE
        self.group_by = list(group_by or [])
        self.order_by = list(order_by or [])  # list of (column, ascending)
        self.limit = limit
        self.join = join
        self.distinct = distinct
        if self.group_by:
            stray = [c for c in self.columns if c not in self.group_by and c != "*"]
            if stray:
                raise RelationalError(
                    f"non-grouped columns in grouped query: {stray}"
                )

    @property
    def is_aggregate(self):
        """True when the query computes aggregate functions."""
        return bool(self.aggregates)

    def output_columns(self):
        """Names of the result columns, in order."""
        names = [c for c in self.columns if c != "*"]
        names.extend(a.alias for a in self.aggregates)
        return names

    def columns_used(self):
        """Every column the query touches (projection + predicates + keys)."""
        used = {c for c in self.columns if c != "*"}
        used |= {a.column for a in self.aggregates if a.column != "*"}
        used |= self.where.columns_used()
        used |= set(self.group_by)
        used |= {c for c, _asc in self.order_by}
        if self.join is not None:
            used |= {self.join.left_column, self.join.right_column}
        return used

    def replace(self, **changes):
        """A copy of this query with the given fields replaced."""
        fields = {
            "table": self.table,
            "columns": self.columns,
            "aggregates": self.aggregates,
            "where": self.where,
            "group_by": self.group_by,
            "order_by": self.order_by,
            "limit": self.limit,
            "join": self.join,
            "distinct": self.distinct,
        }
        fields.update(changes)
        return SelectQuery(**fields)

    def __repr__(self):
        from repro.relational.sql import to_sql

        return f"SelectQuery({to_sql(self)!r})"


def execute(query, source):
    """Execute ``query`` against ``source`` (a Catalog or a Table)."""
    from repro.relational.catalog import Catalog

    if isinstance(source, Catalog):
        base = source.table(query.table)
        right = source.table(query.join.right_table) if query.join else None
    elif isinstance(source, Table):
        base = source
        if query.join is not None:
            raise RelationalError("joins require a Catalog source")
        right = None
    else:
        raise RelationalError(f"cannot execute against {type(source).__name__}")

    rows, schema = _scan(base, right, query.join)
    rows = [row for row in rows if query.where.evaluate(row)]

    if query.is_aggregate:
        result = _aggregate(query, rows, schema)
        if query.order_by:
            # Grouped output: order-by columns must appear in the result.
            for column, ascending in reversed(query.order_by):
                index = result.schema.index_of(column)
                _sort_nulls_last(result.rows, lambda r, i=index: r[i], ascending)
    else:
        # Sort the source rows before projecting so ORDER BY may use
        # columns that the projection drops (standard SQL behaviour).
        if query.order_by:
            for column, ascending in reversed(query.order_by):
                if not schema.has_column(column):
                    raise RelationalError(f"unknown ORDER BY column {column!r}")
                _sort_nulls_last(rows, lambda r, c=column: r[c], ascending)
        result = _project(query, rows, schema)

    if query.limit is not None:
        result.rows = result.rows[: query.limit]
    return result


def _sort_nulls_last(rows, key, ascending):
    """Stable in-place sort by ``key`` with NULLs last in either direction."""
    present = [r for r in rows if key(r) is not None]
    absent = [r for r in rows if key(r) is None]
    present.sort(key=key, reverse=not ascending)
    rows[:] = present + absent


# -- executor internals -------------------------------------------------------


def _scan(base, right, join):
    """Yield the (possibly joined) row dicts plus the combined schema."""
    if right is None:
        return list(base.rows_as_dicts()), base.schema

    # Hash join: build on the right, probe with the left.
    build = {}
    right_index = right.schema.index_of(join.right_column)
    for row in right.rows:
        build.setdefault(row[right_index], []).append(row)

    right_names = right.schema.column_names()
    joined_columns = list(base.schema.columns)
    seen = set(base.schema.column_names())
    rename = {}
    for column in right.schema.columns:
        name = column.name
        if name in seen:
            name = f"{right.schema.name}_{column.name}"
        rename[column.name] = name
        joined_columns.append(Column(name, column.type, column.nullable))
        seen.add(name)
    schema = TableSchema(base.schema.name, joined_columns)

    rows = []
    for left_row in base.rows_as_dicts():
        key = left_row.get(join.left_column)
        if key is None:
            continue
        for right_row in build.get(key, ()):
            combined = dict(left_row)
            combined.update(
                (rename[n], v) for n, v in zip(right_names, right_row)
            )
            rows.append(combined)
    return rows, schema


def _project(query, rows, schema):
    if query.columns == ["*"]:
        names = schema.column_names()
    else:
        names = query.columns
        for name in names:
            if not schema.has_column(name):
                # repro-lint: disable=REP010 -- echoes the requester's
                # own SELECT list and a table name: identifiers only
                raise RelationalError(
                    f"unknown column {name!r} in table {schema.name!r}"
                )
    columns = [schema.column(n) for n in names]
    result = Table(TableSchema(schema.name, columns))
    emitted = set()
    for row in rows:
        values = tuple(row[n] for n in names)
        if query.distinct:
            if values in emitted:
                continue
            emitted.add(values)
        result.rows.append(values)
    return result


def _aggregate(query, rows, schema):
    for aggregate in query.aggregates:
        if aggregate.column != "*" and not schema.has_column(aggregate.column):
            raise RelationalError(
                f"unknown aggregate column {aggregate.column!r}"
            )
        if aggregate.column != "*" and aggregate.func not in ("count", "min", "max"):
            column_type = schema.column(aggregate.column).type
            # BOOL aggregates as 0/1 — AVG(compliant) is a compliance rate.
            if not column_type.is_numeric and column_type is not ColumnType.BOOL:
                raise RelationalError(
                    f"{aggregate.func}({aggregate.column}) needs a numeric column"
                )
    for name in query.group_by:
        if not schema.has_column(name):
            raise RelationalError(f"unknown GROUP BY column {name!r}")

    out_columns = [schema.column(n) for n in query.group_by]
    for aggregate in query.aggregates:
        input_type = (
            ColumnType.INT
            if aggregate.column == "*"
            else schema.column(aggregate.column).type
        )
        out_columns.append(
            Column(aggregate.alias, aggregate.output_type(input_type))
        )
    result = Table(TableSchema(schema.name, out_columns))

    groups = {}
    for row in rows:
        key = tuple(row[n] for n in query.group_by)
        groups.setdefault(key, []).append(row)
    if not query.group_by and not groups:
        groups[()] = []  # global aggregate over zero rows still emits one row

    for key in sorted(groups, key=_null_safe_key):
        group_rows = groups[key]
        values = list(key)
        for aggregate in query.aggregates:
            if aggregate.column == "*":
                column_values = [1] * len(group_rows)
            else:
                column_values = [
                    float(v) if isinstance(v, bool) else v
                    for v in (r[aggregate.column] for r in group_rows)
                ]
            values.append(aggregate.compute(column_values))
        result.rows.append(tuple(values))
    return result


def _null_safe_key(key):
    return tuple((v is None, str(type(v).__name__), v) for v in key)
