"""PRIVATE-IYE: a privacy preserving data integration framework.

Reproduction of S. S. Bhowmick, L. Gruenwald, M. Iwaihara and
S. Chatvichienchai, "PRIVATE-IYE: A Framework for Privacy Preserving Data
Integration" (ICDE Workshops 2006).

Quick start::

    from repro import PrivateIye

    system = PrivateIye()
    system.load_policies(POLICY_DSL)
    system.add_relational_source("HMO1", table)
    result = system.query(
        "SELECT AVG(//patient/hba1c) PURPOSE outbreak-surveillance",
        requester="epi-1",
    )

Subpackages: :mod:`repro.core` (system facade), :mod:`repro.policy`
(the three policy languages of paper section 3), :mod:`repro.query` (PIQL),
:mod:`repro.source` (the section-4 per-source framework), :mod:`repro.mediator`
(the section-5 mediation engine), plus the substrates :mod:`repro.xmlkit`,
:mod:`repro.relational`, :mod:`repro.crypto`, :mod:`repro.linkage`,
:mod:`repro.statdb`, :mod:`repro.anonymity`, :mod:`repro.mining`,
:mod:`repro.inference`, :mod:`repro.metrics`, and :mod:`repro.data`.
"""

from repro.core import PrivateIye, Session
from repro.errors import (
    AccessDenied,
    AuditRefusal,
    IntegrationError,
    PolicyError,
    PrivacyViolation,
    QueryError,
    ReproError,
    SourceUnavailable,
    TransientSourceError,
)
from repro.query import parse_piql
from repro.telemetry import Telemetry

__version__ = "1.0.0"

__all__ = [
    "PrivateIye",
    "Session",
    "Telemetry",
    "parse_piql",
    "ReproError",
    "PrivacyViolation",
    "AuditRefusal",
    "AccessDenied",
    "PolicyError",
    "QueryError",
    "IntegrationError",
    "SourceUnavailable",
    "TransientSourceError",
    "__version__",
]
