"""Keyed hashing (HMAC-SHA256) helpers.

Keyed hashes appear wherever two sources must agree on opaque tokens
without revealing plaintext to the mediator: hashed schema tokens in the
private schema matcher and the hash functions of Bloom-filter record
encodings.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.errors import CryptoError


def keyed_hash(key, item):
    """HMAC-SHA256 of ``item`` under ``key`` (both str or bytes) → bytes."""
    return hmac.new(_to_bytes(key, "key"), _to_bytes(item, "item"), hashlib.sha256).digest()


def keyed_hash_int(key, item, bits=64):
    """Keyed hash truncated to a non-negative int of ``bits`` bits."""
    if not 1 <= bits <= 256:
        raise CryptoError("bits must be in [1, 256]")
    digest = keyed_hash(key, item)
    return int.from_bytes(digest, "big") >> (256 - bits)


def _to_bytes(value, what):
    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode("utf-8")
    if isinstance(value, int):
        return str(value).encode("ascii")
    raise CryptoError(f"{what} must be str, bytes, or int")
