"""Pohlig–Hellman / SRA commutative encryption.

Encryption is exponentiation in the quadratic-residue subgroup of a safe
prime: ``E_k(x) = x^k mod p``.  Because exponents commute,
``E_a(E_b(x)) = E_b(E_a(x))`` — the property the PSI protocol and the
private schema matcher rely on.  Decryption raises to ``k^-1 mod q``.
"""

from __future__ import annotations

import random

from repro.errors import CryptoError
from repro.crypto.modmath import DhGroup, MODP_1024


class CommutativeKey:
    """One party's commutative-cipher key over a shared group."""

    def __init__(self, group=None, exponent=None, rng=None):
        self.group = group or MODP_1024
        if not isinstance(self.group, DhGroup):
            raise CryptoError("CommutativeKey requires a DhGroup")
        if exponent is None:
            rng = rng or random.Random()
            exponent = self.group.random_exponent(rng)
        if not 1 <= exponent < self.group.q:
            raise CryptoError("exponent out of range [1, q)")
        self.exponent = exponent
        self._inverse = self.group.invert_exponent(exponent)

    def encrypt(self, element):
        """Encrypt a group element (an int already inside the subgroup)."""
        self._check_element(element)
        return pow(element, self.exponent, self.group.p)

    def decrypt(self, element):
        """Invert :meth:`encrypt` (only for this key's layer)."""
        self._check_element(element)
        return pow(element, self._inverse, self.group.p)

    def encrypt_item(self, item):
        """Hash an arbitrary item into the group, then encrypt it."""
        return self.encrypt(self.group.hash_into(item))

    def encrypt_many(self, elements):
        """Encrypt a list of group elements."""
        return [self.encrypt(e) for e in elements]

    def _check_element(self, element):
        if not isinstance(element, int) or not 0 < element < self.group.p:
            raise CryptoError(f"not a group element: {element!r}")

    def __repr__(self):
        return f"CommutativeKey(group={self.group!r})"
