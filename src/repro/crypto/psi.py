"""Diffie–Hellman-style private set intersection (PSI).

Protocol (after Agrawal–Evfimievski–Srikant, "Information Sharing Across
Private Databases", SIGMOD 2003 — reference [8] of the paper):

1. Each party hashes its items into the shared group and sends its set
   encrypted under its own commutative key, shuffled.
2. Each party re-encrypts ("doubles") the peer's received set under its own
   key, **preserving order**, and sends it back.
3. A party now holds (a) its own items double-encrypted — aligned with its
   recorded shuffle — and (b) the peer's double-encrypted set.  Equal double
   encryptions ⇔ equal plaintexts, so set membership yields exactly the
   intersection; nothing else about the peer's set is revealed beyond its
   size.

:class:`PsiParty` exposes the individual protocol messages (so tests can
assert what actually crosses the wire); :func:`private_set_intersection`
drives a complete two-party execution in-process.
"""

from __future__ import annotations

import random

from repro.errors import CryptoError
from repro.crypto.commutative import CommutativeKey
from repro.crypto.modmath import MODP_1024


class PsiParty:
    """One participant in the two-party PSI protocol."""

    def __init__(self, items, group=None, rng=None):
        self.items = list(items)
        if len(set(self.items)) != len(self.items):
            raise CryptoError("PSI input sets must not contain duplicates")
        self.group = group or MODP_1024
        self.rng = rng or random.Random()
        self.key = CommutativeKey(self.group, rng=self.rng)
        self._hashed = [self.group.hash_into(item) for item in self.items]
        self._permutation = None
        self._own_doubled = None

    def send_encrypted_set(self):
        """Round 1: this party's single-encrypted set, shuffled.

        The shuffle permutation is recorded so the doubled values the peer
        returns (order-preserving) can be realigned with our items.
        """
        order = list(range(len(self.items)))
        self.rng.shuffle(order)
        self._permutation = order
        return [self.key.encrypt(self._hashed[i]) for i in order]

    def double_peer_set(self, peer_encrypted):
        """Round 2: encrypt the peer's set under our key, preserving order."""
        return [self.key.encrypt(e) for e in peer_encrypted]

    def receive_own_doubled(self, doubled):
        """Accept the peer's doubling of our round-1 message."""
        if self._permutation is None:
            raise CryptoError("send_encrypted_set must be called first")
        if len(doubled) != len(self.items):
            raise CryptoError(
                f"doubled set has {len(doubled)} values, expected {len(self.items)}"
            )
        self._own_doubled = list(doubled)

    def intersect(self, peer_doubled):
        """Compute the intersection from the two double-encrypted sets.

        ``peer_doubled`` is the peer's set under both keys (our round-2
        output for them, or equivalently theirs for us — the cipher
        commutes, so the values coincide).
        """
        if self._own_doubled is None:
            raise CryptoError("receive_own_doubled must be called before intersect")
        peer_values = set(peer_doubled)
        matches = []
        for position, item_index in enumerate(self._permutation):
            if self._own_doubled[position] in peer_values:
                matches.append(self.items[item_index])
        return matches


def private_set_intersection(items_a, items_b, group=None, rng=None):
    """Run the full two-party PSI protocol in-process.

    Returns ``(intersection_as_seen_by_a, transcript)``; the transcript
    records every message that crossed the wire so callers (and tests) can
    verify no plaintext leaks.
    """
    rng = rng or random.Random()
    group = group or MODP_1024
    alice = PsiParty(items_a, group, random.Random(rng.getrandbits(64)))
    bob = PsiParty(items_b, group, random.Random(rng.getrandbits(64)))

    msg_a1 = alice.send_encrypted_set()
    msg_b1 = bob.send_encrypted_set()
    doubled_a = bob.double_peer_set(msg_a1)  # Alice's set under both keys
    doubled_b = alice.double_peer_set(msg_b1)  # Bob's set under both keys
    alice.receive_own_doubled(doubled_a)
    intersection = alice.intersect(doubled_b)

    transcript = {
        "a_round1": msg_a1,
        "b_round1": msg_b1,
        "a_doubled": doubled_a,
        "b_doubled": doubled_b,
    }
    return intersection, transcript
