"""Modular arithmetic: primality testing, safe-prime groups, hashing into groups.

A *safe prime* is ``p = 2q + 1`` with ``q`` prime.  Working in the order-q
subgroup of quadratic residues mod p makes the Pohlig–Hellman cipher
commutative and keeps every hashed element in a prime-order group, which is
what the PSI protocol requires.
"""

from __future__ import annotations

import hashlib
import random

from repro.errors import CryptoError

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47)


def is_probable_prime(n, rounds=40, rng=None):
    """Miller–Rabin primality test (error < 4^-rounds)."""
    if not isinstance(n, int):
        raise CryptoError("primality test requires an int")
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    rng = rng or random.Random(0xC0FFEE ^ (n & 0xFFFFFFFF))
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_safe_prime(bits, rng):
    """Generate a safe prime ``p = 2q + 1`` with ``p`` of ``bits`` bits.

    Deterministic given ``rng``; intended for tests and experiments — use
    the precomputed groups for anything repeated.
    """
    if bits < 16:
        raise CryptoError("safe primes below 16 bits are not supported")
    while True:
        q = rng.getrandbits(bits - 1) | (1 << (bits - 2)) | 1
        if is_probable_prime(q):
            p = 2 * q + 1
            if is_probable_prime(p):
                return p


class DhGroup:
    """The quadratic-residue subgroup of Z_p* for a safe prime p.

    The subgroup has prime order ``q = (p - 1) // 2``.  Elements are
    produced by :meth:`hash_into` (hash-then-square), exponents are drawn
    from ``[1, q)`` by :meth:`random_exponent`.
    """

    def __init__(self, p, check=True):
        if check and not is_probable_prime(p):
            raise CryptoError("group modulus is not prime")
        q = (p - 1) // 2
        if check and not is_probable_prime(q):
            raise CryptoError("modulus is not a safe prime (p != 2q+1)")
        self.p = p
        self.q = q

    def hash_into(self, item):
        """Map an arbitrary item (str/bytes/int) to a subgroup element.

        Hash to an integer mod p, then square: squares mod a safe prime are
        exactly the order-q subgroup, so every output is a valid element.
        """
        data = _to_bytes(item)
        counter = 0
        while True:
            digest = hashlib.sha256(data + counter.to_bytes(4, "big")).digest()
            needed = (self.p.bit_length() + 7) // 8 + 8
            while len(digest) < needed:
                digest += hashlib.sha256(digest).digest()
            value = int.from_bytes(digest[:needed], "big") % self.p
            if value > 1:
                return pow(value, 2, self.p)
            counter += 1

    def random_exponent(self, rng):
        """A uniformly random exponent in ``[1, q)``."""
        return rng.randrange(1, self.q)

    def invert_exponent(self, e):
        """The multiplicative inverse of ``e`` modulo the group order q."""
        if e % self.q == 0:
            raise CryptoError("exponent has no inverse (multiple of q)")
        return pow(e, -1, self.q)

    def is_element(self, x):
        """True when ``x`` lies in the order-q subgroup."""
        return 0 < x < self.p and pow(x, self.q, self.p) == 1

    def __repr__(self):
        return f"DhGroup(p~2^{self.p.bit_length()})"

    def __eq__(self, other):
        return isinstance(other, DhGroup) and self.p == other.p


def _to_bytes(item):
    if isinstance(item, bytes):
        return item
    if isinstance(item, str):
        return item.encode("utf-8")
    if isinstance(item, int):
        return str(item).encode("ascii")
    raise CryptoError(f"cannot hash {type(item).__name__} into group")


# 1024-bit MODP group from RFC 2409 (Oakley group 2) — a known safe prime.
_MODP_1024_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF",
    16,
)
MODP_1024 = DhGroup(_MODP_1024_P, check=False)

# Precomputed 256-bit safe prime (seeded search, see DESIGN.md) — fast
# enough for unit tests and benchmark sweeps.
_TEST_P = int(
    "87B042F2D0C635094E002220B503ABB2F592D3F11EC7E5580C959D1040F8C3C7", 16
)
TEST_GROUP = DhGroup(_TEST_P, check=False)
