"""Additive-masking secure sum.

The classic ring protocol used by privacy-preserving distributed mining
(Kantarcioglu–Clifton, reference [30] of the paper): the initiating party
adds a uniformly random mask ``R`` (mod m) to its value and passes the
running total around the ring; every party adds its own value mod m; the
initiator finally subtracts ``R``.  No party observes anything but a value
uniformly distributed mod m, yet the final result is the exact sum —
provided the true sum is smaller than the modulus.
"""

from __future__ import annotations

import random

from repro.errors import CryptoError

DEFAULT_MODULUS = 2 ** 64


class SecureSumTranscript:
    """What each party saw during one secure-sum execution."""

    def __init__(self, modulus):
        self.modulus = modulus
        self.observed = []  # observed[i] = running total party i received

    def __repr__(self):
        return f"SecureSumTranscript(parties={len(self.observed)})"


def secure_sum(values, modulus=DEFAULT_MODULUS, rng=None, return_transcript=False):
    """Sum non-negative integer ``values`` via the masked ring protocol.

    ``values[i]`` is party i's private input.  Raises
    :class:`~repro.errors.CryptoError` when any value is negative or the
    true sum would overflow the modulus (which would silently wrap).
    With ``return_transcript=True`` also returns the per-party observations,
    letting tests verify that intermediate values reveal nothing.
    """
    values = list(values)
    if len(values) < 2:
        raise CryptoError("secure sum needs at least two parties")
    if any(not isinstance(v, int) or v < 0 for v in values):
        raise CryptoError("secure sum inputs must be non-negative ints")
    if sum(values) >= modulus:
        raise CryptoError("sum exceeds modulus; increase the modulus")
    rng = rng or random.Random()

    transcript = SecureSumTranscript(modulus)
    mask = rng.randrange(modulus)
    running = (values[0] + mask) % modulus
    transcript.observed.append(mask)  # party 0 "receives" its own mask
    for value in values[1:]:
        transcript.observed.append(running)
        running = (running + value) % modulus
    total = (running - mask) % modulus

    if return_transcript:
        return total, transcript
    return total
