"""Bloom filters.

Used by the private record-linkage encodings (Schnell-style): each party
encodes a record's q-grams into a Bloom filter under shared keyed hash
functions; filters can then be compared by Dice similarity without
exchanging plaintext identifiers.
"""

from __future__ import annotations

import math

from repro.errors import CryptoError
from repro.crypto.keyed_hash import keyed_hash_int


class BloomFilter:
    """A fixed-size Bloom filter with ``num_hashes`` keyed hash functions.

    All parties that intend to compare filters must share ``size``,
    ``num_hashes``, and ``secret`` (the HMAC key) — that shared secret is
    what keeps a curious mediator from mounting a dictionary attack.
    """

    def __init__(self, size=256, num_hashes=4, secret="private-iye"):
        if size < 8:
            raise CryptoError("Bloom filter size must be at least 8 bits")
        if num_hashes < 1:
            raise CryptoError("need at least one hash function")
        self.size = size
        self.num_hashes = num_hashes
        self.secret = secret
        self.bits = 0  # an int used as a bit set

    def _positions(self, item):
        for i in range(self.num_hashes):
            yield keyed_hash_int(f"{self.secret}:{i}", item) % self.size

    def add(self, item):
        """Insert ``item``."""
        for position in self._positions(item):
            self.bits |= 1 << position

    def add_all(self, items):
        """Insert every item of ``items``."""
        for item in items:
            self.add(item)

    def __contains__(self, item):
        return all(self.bits >> p & 1 for p in self._positions(item))

    def count_bits(self):
        """Number of set bits."""
        return self.bits.bit_count()

    def dice_similarity(self, other):
        """Dice coefficient of two filters' bit sets (∈ [0, 1])."""
        self._check_compatible(other)
        a, b = self.count_bits(), other.count_bits()
        if a + b == 0:
            return 1.0
        overlap = (self.bits & other.bits).bit_count()
        return 2.0 * overlap / (a + b)

    def jaccard_similarity(self, other):
        """Jaccard coefficient of two filters' bit sets (∈ [0, 1])."""
        self._check_compatible(other)
        union = (self.bits | other.bits).bit_count()
        if union == 0:
            return 1.0
        return (self.bits & other.bits).bit_count() / union

    def estimated_count(self):
        """Estimate of how many distinct items were inserted."""
        zero_fraction = 1 - self.count_bits() / self.size
        if zero_fraction <= 0:
            return float("inf")
        return -self.size / self.num_hashes * math.log(zero_fraction)

    def false_positive_rate(self, inserted):
        """Theoretical false-positive rate after ``inserted`` items."""
        return (1 - math.exp(-self.num_hashes * inserted / self.size)) ** self.num_hashes

    def _check_compatible(self, other):
        if not isinstance(other, BloomFilter):
            raise CryptoError("can only compare with another BloomFilter")
        if (self.size, self.num_hashes, self.secret) != (
            other.size, other.num_hashes, other.secret,
        ):
            raise CryptoError("Bloom filters have incompatible parameters")

    def __repr__(self):
        return (
            f"BloomFilter(size={self.size}, hashes={self.num_hashes}, "
            f"set={self.count_bits()})"
        )
