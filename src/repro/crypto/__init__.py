"""From-scratch cryptographic primitives for secure computation.

The paper's mediation layer needs secure multi-party building blocks
(Section 2 cites Du–Atallah and Lindell–Pinkas; Section 5 needs private
record matching "without revealing the origins of the sources").  This
package implements them over plain Python big integers:

* :mod:`repro.crypto.modmath` — Miller–Rabin, safe-prime groups,
  hash-into-group.
* :mod:`repro.crypto.commutative` — Pohlig–Hellman/SRA commutative
  exponentiation cipher.
* :mod:`repro.crypto.psi` — Diffie–Hellman-style private set intersection
  built on the commutative cipher.
* :mod:`repro.crypto.secure_sum` — additive-masking ring secure sum.
* :mod:`repro.crypto.bloom` — Bloom filters (private linkage encodings).
* :mod:`repro.crypto.keyed_hash` — HMAC-SHA256 keyed hashing.

These are research-grade reimplementations meant to exercise the same
protocol structure as production libraries, not to be deployed as-is.
"""

from repro.crypto.modmath import (
    DhGroup,
    MODP_1024,
    TEST_GROUP,
    generate_safe_prime,
    is_probable_prime,
)
from repro.crypto.commutative import CommutativeKey
from repro.crypto.psi import PsiParty, private_set_intersection
from repro.crypto.secure_sum import secure_sum
from repro.crypto.bloom import BloomFilter
from repro.crypto.keyed_hash import keyed_hash, keyed_hash_int

__all__ = [
    "DhGroup",
    "MODP_1024",
    "TEST_GROUP",
    "generate_safe_prime",
    "is_probable_prime",
    "CommutativeKey",
    "PsiParty",
    "private_set_intersection",
    "secure_sum",
    "BloomFilter",
    "keyed_hash",
    "keyed_hash_int",
]
