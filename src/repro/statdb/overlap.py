"""Query-set-size restriction and overlap control (Dobkin–Jones–Lipton).

Two classic restrictions:

* **Set-size control**: refuse query sets smaller than ``k`` or larger than
  ``n - k`` (the complement of a small set identifies individuals just as
  well — this is what the tracker attack exploits when only the lower bound
  is enforced).
* **Overlap control**: refuse a query whose set overlaps any previously
  answered set in more than ``r`` records.  Dobkin, Jones and Lipton show a
  snooper then needs at least ``1 + (k - 1) / r`` queries to compromise a
  record.
"""

from __future__ import annotations

from repro.errors import PrivacyViolation, ReproError


class SetSizeControl:
    """Refuse query sets of size < k or > n - k."""

    def __init__(self, k, n_records, restrict_complement=True):
        if k < 1:
            raise ReproError("set-size threshold k must be >= 1")
        if n_records < 2 * k and restrict_complement:
            raise ReproError(
                f"population {n_records} too small for k={k} with "
                "complement restriction"
            )
        self.k = k
        self.n_records = n_records
        self.restrict_complement = restrict_complement

    def check(self, query_set):
        """Raise :class:`PrivacyViolation` when the set size is out of range."""
        size = len(set(query_set))
        if size < self.k:
            raise PrivacyViolation(
                f"query set of size {size} below minimum {self.k}"
            )
        if self.restrict_complement and size > self.n_records - self.k:
            raise PrivacyViolation(
                f"query set of size {size} exceeds maximum "
                f"{self.n_records - self.k} (complement too small)"
            )


class OverlapController:
    """Refuse queries overlapping an answered set in more than ``r`` records."""

    def __init__(self, max_overlap):
        if max_overlap < 0:
            raise ReproError("max_overlap must be >= 0")
        self.max_overlap = max_overlap
        self.answered = []

    def check_and_record(self, query_set):
        """Record if every pairwise overlap is within bounds; else refuse."""
        candidate = frozenset(query_set)
        for previous in self.answered:
            overlap = len(candidate & previous)
            if overlap > self.max_overlap:
                raise PrivacyViolation(
                    f"query overlaps an answered query in {overlap} records "
                    f"(limit {self.max_overlap})"
                )
        self.answered.append(candidate)

    def minimum_queries_to_compromise(self, k):
        """DJL lower bound on snooper effort: ``1 + (k - 1) / r``."""
        if self.max_overlap == 0:
            return float("inf")
        return 1 + (k - 1) / self.max_overlap
