"""Input perturbation: distort the stored data itself.

* :func:`additive_noise` — add zero-mean Gaussian noise to every value
  (Traub et al.'s statistical-security model; also the randomization step
  of Agrawal–Srikant privacy-preserving mining).
* :func:`distribution_distortion` — Liew–Choi–Liew probability-distribution
  distortion: fit a simple distribution to the column and replace every
  value with a fresh sample from the fit.  Aggregates remain approximately
  right while no stored value is real.
"""

from __future__ import annotations

import math
import random

from repro.errors import ReproError


def additive_noise(values, sigma, rng=None):
    """Return ``values`` with i.i.d. N(0, sigma²) noise added."""
    if sigma < 0:
        raise ReproError("noise sigma must be non-negative")
    rng = rng or random.Random()
    return [v + rng.gauss(0.0, sigma) for v in values]


def distribution_distortion(values, rng=None, family="normal", clip=None):
    """Replace ``values`` with samples from a fitted distribution.

    ``family`` is ``'normal'`` (fit mean/std) or ``'uniform'`` (fit
    min/max).  ``clip=(lo, hi)`` truncates samples into a legal range —
    e.g. (0, 100) for compliance percentages.
    """
    values = list(values)
    if not values:
        raise ReproError("cannot distort an empty column")
    rng = rng or random.Random()
    if family == "normal":
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        sigma = math.sqrt(variance)
        sampler = lambda: rng.gauss(mean, sigma)  # noqa: E731
    elif family == "uniform":
        low, high = min(values), max(values)
        sampler = lambda: rng.uniform(low, high)  # noqa: E731
    else:
        raise ReproError(f"unknown distribution family {family!r}")

    out = []
    for _ in values:
        sample = sampler()
        if clip is not None:
            low, high = clip
            sample = min(max(sample, low), high)
        out.append(sample)
    return out
