"""The individual tracker attack (Denning–Denning–Schwartz).

A set-size control alone does not protect a statistical database: to learn
``q(C)`` for a small (even singleton) set ``C``, a snooper picks a *tracker*
predicate ``T`` whose query set is comfortably inside the legal size band
and uses::

    count(C) = count(C OR T) + count(C OR NOT T) - count(ALL)
    sum(C)   = sum(C OR T)   + sum(C OR NOT T)   - sum(ALL)

All three right-hand queries have large query sets and pass size control.
The attack fails against overlap control and audit trails — which is
exactly what benchmark A3 measures.
"""

from __future__ import annotations

from repro.errors import PrivacyViolation
from repro.relational.expr import Not, Or, TRUE
from repro.statdb.protected import StatQuery


class TrackerResult:
    """Outcome of a tracker attack attempt."""

    def __init__(self, succeeded, inferred_value, queries_issued, refusal=None):
        self.succeeded = succeeded
        self.inferred_value = inferred_value
        self.queries_issued = queries_issued
        self.refusal = refusal

    def __repr__(self):
        status = "ok" if self.succeeded else f"refused ({self.refusal})"
        return f"TrackerResult({status}, value={self.inferred_value})"


def individual_tracker_attack(db, target_predicate, tracker_predicate, func="count", column=None):
    """Run the tracker attack against a :class:`ProtectedStatDB`.

    ``target_predicate`` isolates the victim (its query set is too small to
    query directly); ``tracker_predicate`` is the snooper's padding
    predicate.  Returns a :class:`TrackerResult`; ``succeeded=False`` with
    the refusing control's message when any step was blocked.
    """
    queries = [
        StatQuery(func, column, Or([target_predicate, tracker_predicate])),
        StatQuery(func, column, Or([target_predicate, Not(tracker_predicate)])),
        StatQuery(func, column, TRUE),
    ]
    answers = []
    for index, query in enumerate(queries):
        try:
            answers.append(db.answer(query))
        except PrivacyViolation as refusal:
            return TrackerResult(False, None, index, refusal=str(refusal))
    inferred = answers[0] + answers[1] - answers[2]
    return TrackerResult(True, inferred, len(queries))


def true_value(db, target_predicate, func="count", column=None):
    """Ground truth the attack is trying to learn (for evaluation only)."""
    query_set = db.query_set(target_predicate)
    if func == "count":
        return float(len(query_set))
    values = db._column_values(column)
    total = sum(values[i] for i in query_set)
    if func == "sum":
        return total
    return total / len(query_set) if query_set else 0.0
