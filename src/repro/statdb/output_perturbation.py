"""Output perturbation: random-sample queries and rounding.

* **Random-sample queries** (Denning): rather than aggregating the exact
  query set, aggregate a pseudo-random sample of it and scale up.  The
  sample membership of each record is a deterministic keyed hash of
  ``(secret, record id, query-set fingerprint)`` — repeating the same query
  yields the same answer (no averaging attack), while overlapping queries
  sample independently.
* **Rounding**: deterministic rounding to a base, or unbiased random
  rounding (the classic weaker alternative).
"""

from __future__ import annotations

import hashlib
import random

from repro.errors import ReproError
from repro.crypto.keyed_hash import keyed_hash_int

_SCALE = 2 ** 32


class RandomSampleQueries:
    """Denning-style sampled aggregation."""

    def __init__(self, sampling_rate=0.8, secret="rsq-secret"):
        if not 0.0 < sampling_rate <= 1.0:
            raise ReproError("sampling rate must be in (0, 1]")
        self.sampling_rate = sampling_rate
        self.secret = secret

    def sample(self, query_set):
        """The deterministic sample of ``query_set`` (record indices)."""
        fingerprint = self._fingerprint(query_set)
        return [
            index
            for index in sorted(set(query_set))
            if self._included(index, fingerprint)
        ]

    def sampled_sum(self, query_set, values):
        """Estimate ``sum(values[i] for i in query_set)`` from the sample."""
        sample = self.sample(query_set)
        total = sum(values[i] for i in sample)
        return total / self.sampling_rate

    def sampled_count(self, query_set):
        """Estimate the query-set size from the sample."""
        return len(self.sample(query_set)) / self.sampling_rate

    def _fingerprint(self, query_set):
        encoded = ",".join(str(i) for i in sorted(set(query_set)))
        return hashlib.sha256(encoded.encode("ascii")).hexdigest()

    def _included(self, index, fingerprint):
        value = keyed_hash_int(self.secret, f"{fingerprint}:{index}", bits=32)
        return value < self.sampling_rate * _SCALE


class Rounder:
    """Deterministic or unbiased-random rounding to a base."""

    def __init__(self, base=5.0, mode="deterministic", rng=None):
        if base <= 0:
            raise ReproError("rounding base must be positive")
        if mode not in ("deterministic", "random"):
            raise ReproError(f"unknown rounding mode {mode!r}")
        self.base = base
        self.mode = mode
        self.rng = rng or random.Random()

    def round(self, value):
        """Round ``value`` to a multiple of the base."""
        quotient = value / self.base
        if self.mode == "deterministic":
            return round(quotient) * self.base
        floor = int(quotient // 1)
        fraction = quotient - floor
        # Unbiased: round up with probability equal to the fraction.
        if self.rng.random() < fraction:
            floor += 1
        return floor * self.base
