"""A guarded statistical-query facade over one table.

:class:`ProtectedStatDB` is what a remote source's preservation module
wraps around its raw data when a query cluster calls for
statistical-database defenses: it answers COUNT/SUM/AVG over a predicate,
subject to a configurable stack of controls (set size, overlap, audit,
output perturbation).  Controls raise
:class:`~repro.errors.PrivacyViolation` (or the more specific
:class:`~repro.errors.AuditRefusal`) instead of answering.
"""

from __future__ import annotations

from repro.errors import PrivacyViolation, ReproError
from repro.relational.expr import TRUE
from repro.statdb.audit import SumAuditor
from repro.statdb.overlap import OverlapController, SetSizeControl

_FUNCS = ("count", "sum", "avg")


class StatQuery:
    """One statistical query: ``func(column) WHERE predicate``."""

    __slots__ = ("func", "column", "predicate")

    def __init__(self, func, column=None, predicate=None):
        func = func.lower()
        if func not in _FUNCS:
            raise ReproError(f"unknown statistical function {func!r}")
        if func != "count" and column is None:
            raise ReproError(f"{func} requires a column")
        self.func = func
        self.column = column
        self.predicate = predicate if predicate is not None else TRUE

    def __repr__(self):
        target = self.column if self.column else "*"
        return f"StatQuery({self.func}({target}) WHERE {self.predicate!r})"


class ProtectedStatDB:
    """A table guarded by statistical disclosure controls.

    Parameters mirror the classic defense stack; any subset may be active:

    * ``min_set_size`` — query-set-size control ``k`` (with complement
      restriction unless ``restrict_complement=False``);
    * ``max_overlap`` — pairwise overlap limit ``r`` across answered
      queries;
    * ``audit`` — exact SUM/AVG audit trail;
    * ``output_perturbation`` — an object with ``sampled_sum(query_set,
      values)`` and ``sampled_count(query_set)`` (e.g.
      :class:`~repro.statdb.output_perturbation.RandomSampleQueries`), or a
      :class:`~repro.statdb.output_perturbation.Rounder` applied to exact
      answers.
    """

    def __init__(
        self,
        table,
        min_set_size=None,
        restrict_complement=True,
        max_overlap=None,
        audit=False,
        output_perturbation=None,
    ):
        self.table = table
        self._rows = list(table.rows_as_dicts())
        n = len(self._rows)
        self.set_size = (
            SetSizeControl(min_set_size, n, restrict_complement)
            if min_set_size
            else None
        )
        self.overlap = OverlapController(max_overlap) if max_overlap is not None else None
        self.auditor = SumAuditor(n) if audit else None
        self.perturbation = output_perturbation
        self.queries_answered = 0
        self.queries_refused = 0

    @property
    def n_records(self):
        """Number of records in the protected table."""
        return len(self._rows)

    def query_set(self, predicate):
        """Indices of records satisfying ``predicate``."""
        return [i for i, row in enumerate(self._rows) if predicate.evaluate(row)]

    def answer(self, query, requester="anonymous"):
        """Answer ``query`` or raise a privacy error.

        Controls run in escalating cost order: set size, overlap, audit.
        Only queries that pass every control are recorded in the stateful
        controls, so a refused query does not poison the trail.
        ``requester`` matters only for budgeted (Laplace) perturbation.
        """
        query_set = self.query_set(query.predicate)
        if not query_set:
            raise PrivacyViolation("empty query set")
        try:
            if self.set_size is not None:
                self.set_size.check(query_set)
            if self.overlap is not None:
                self.overlap.check_and_record(query_set)
            if self.auditor is not None and query.func in ("sum", "avg"):
                self.auditor.check_and_record(query_set)
            value = self._compute(query, query_set, requester)
        except PrivacyViolation:
            self.queries_refused += 1
            raise
        self.queries_answered += 1
        return value

    def _compute(self, query, query_set, requester="anonymous"):
        if _is_laplace(self.perturbation):
            fingerprint = (
                f"{query.func}:{query.column}:"
                + ",".join(str(i) for i in sorted(query_set))
            )
            exact = self._exact_value(query, query_set)
            return self.perturbation.answer(exact, fingerprint, requester)
        sampler = self.perturbation if _is_sampler(self.perturbation) else None
        rounder = self.perturbation if not _is_sampler(self.perturbation) else None

        if query.func == "count":
            if sampler is not None:
                value = sampler.sampled_count(query_set)
            else:
                value = float(len(query_set))
        else:
            values = self._column_values(query.column)
            if sampler is not None:
                total = sampler.sampled_sum(query_set, values)
                count = sampler.sampled_count(query_set)
            else:
                total = float(sum(values[i] for i in query_set))
                count = float(len(query_set))
            if query.func == "sum":
                value = total
            else:
                if count == 0:
                    raise PrivacyViolation("sampled query set became empty")
                value = total / count
        if rounder is not None:
            value = rounder.round(value)
        return value

    def _exact_value(self, query, query_set):
        if query.func == "count":
            return float(len(query_set))
        values = self._column_values(query.column)
        total = sum(values[i] for i in query_set)
        if query.func == "sum":
            return float(total)
        return total / len(query_set)

    def _column_values(self, column):
        values = []
        for row in self._rows:
            if column not in row:
                raise ReproError(f"table has no column {column!r}")
            value = row[column]
            values.append(0.0 if value is None else float(value))
        return values


def _is_sampler(perturbation):
    return perturbation is not None and hasattr(perturbation, "sampled_sum")


def _is_laplace(perturbation):
    return perturbation is not None and hasattr(perturbation, "noise_scale")
