"""Exact audit trails for SUM queries (Chin–Özsoyoğlu).

Each answered SUM query over a protected numeric column corresponds to a
0/1 vector over the records in its query set.  A new query is *unsafe* when
adding its vector to the span of previously answered vectors makes some
unit vector (an individual record) expressible — at that point the snooper
can solve the linear system for one person's exact value.

The check is exact linear algebra over :class:`fractions.Fraction` (no
floating-point rank tolerance issues): a unit vector ``e_i`` lies in the
row space iff appending it does not increase the matrix rank.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import AuditRefusal, ReproError


class SumAuditor:
    """Audit trail over a fixed population of ``n_records`` records."""

    def __init__(self, n_records):
        if n_records < 1:
            raise ReproError("auditor needs a positive record count")
        self.n_records = n_records
        self._basis = []  # reduced (echelon) basis of answered query vectors
        self.answered = []  # original query sets, for inspection

    def would_compromise(self, query_set):
        """True when answering ``query_set`` lets some record be isolated.

        ``query_set`` is an iterable of record indices in
        ``[0, n_records)``.
        """
        vector = self._to_vector(query_set)
        basis = [row[:] for row in self._basis]
        _insert(basis, vector)
        return self._compromised_indices(basis) != []

    def check_and_record(self, query_set):
        """Record the query if safe; raise :class:`AuditRefusal` otherwise."""
        vector = self._to_vector(query_set)
        candidate = [row[:] for row in self._basis]
        _insert(candidate, vector)
        exposed = self._compromised_indices(candidate)
        if exposed:
            # The refusal names *how many* records would be isolated,
            # never which: refusal text travels into events and reports,
            # and a record index is exactly the identity the audit
            # exists to protect.
            raise AuditRefusal(
                f"answering would expose {len(exposed)} record(s) "
                f"(audit trail of {len(self.answered)} queries)"
            )
        self._basis = candidate
        self.answered.append(frozenset(query_set))

    def compromised_now(self):
        """Records already derivable from the answered queries (should be [])."""
        return self._compromised_indices(self._basis)

    def _to_vector(self, query_set):
        indices = set(query_set)
        if not indices:
            raise ReproError("query set must be non-empty")
        bad = [i for i in indices if not 0 <= i < self.n_records]
        if bad:
            raise ReproError(
                f"{len(bad)} query set index(es) out of range "
                f"[0, {self.n_records})"
            )
        return [Fraction(1 if i in indices else 0) for i in range(self.n_records)]

    def _compromised_indices(self, basis):
        """Unit vectors representable in the span of ``basis``.

        After :func:`_insert` keeps the basis in reduced row echelon form,
        a unit vector is in the span iff some basis row *is* a unit vector.
        """
        exposed = []
        for row in basis:
            support = [i for i, value in enumerate(row) if value != 0]
            if len(support) == 1:
                exposed.append(support[0])
        return exposed


def _insert(basis, vector):
    """Insert ``vector`` into an RREF ``basis`` (in place).

    Maintains reduced row echelon form: each row has a leading 1 whose
    column is zero in every other row.
    """
    row = vector[:]
    for existing in basis:
        pivot = _pivot(existing)
        if row[pivot] != 0:
            factor = row[pivot]
            for i in range(len(row)):
                row[i] -= factor * existing[i]
    pivot = _first_nonzero(row)
    if pivot is None:
        return  # linearly dependent on what we already answered
    lead = row[pivot]
    row = [value / lead for value in row]
    # Back-eliminate the new pivot column from existing rows.
    for existing in basis:
        factor = existing[pivot]
        if factor != 0:
            for i in range(len(existing)):
                existing[i] -= factor * row[i]
    basis.append(row)
    basis.sort(key=_pivot)


def _pivot(row):
    index = _first_nonzero(row)
    if index is None:
        raise ReproError("zero row in audit basis")
    return index


def _first_nonzero(row):
    for i, value in enumerate(row):
        if value != 0:
            return i
    return None
