"""Statistical-database disclosure controls and attacks.

Section 2 of the paper surveys this area as a building block: "data
perturbation and query restriction … audit trails … controlling overlap of
successive aggregate queries".  This package implements both sides:

* defenses — query-set-size restriction and overlap control
  (:mod:`repro.statdb.overlap`), exact audit trails for SUM queries
  (:mod:`repro.statdb.audit`), output perturbation via random-sample
  queries and rounding (:mod:`repro.statdb.output_perturbation`), input
  perturbation via distribution-preserving distortion and additive noise
  (:mod:`repro.statdb.input_perturbation`);
* attacks — the classic individual tracker (:mod:`repro.statdb.tracker`)
  used by the benchmarks to show which defenses actually stop it;
* a guarded facade combining table + defense policy
  (:mod:`repro.statdb.protected`).
"""

from repro.statdb.audit import SumAuditor
from repro.statdb.overlap import OverlapController, SetSizeControl
from repro.statdb.output_perturbation import RandomSampleQueries, Rounder
from repro.statdb.input_perturbation import (
    additive_noise,
    distribution_distortion,
)
from repro.statdb.laplace import LaplaceMechanism, PrivacyBudget
from repro.statdb.protected import ProtectedStatDB, StatQuery
from repro.statdb.tracker import individual_tracker_attack

__all__ = [
    "LaplaceMechanism",
    "PrivacyBudget",
    "SumAuditor",
    "OverlapController",
    "SetSizeControl",
    "RandomSampleQueries",
    "Rounder",
    "additive_noise",
    "distribution_distortion",
    "ProtectedStatDB",
    "StatQuery",
    "individual_tracker_attack",
]
