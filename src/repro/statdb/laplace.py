"""Laplace output perturbation with an epsilon budget.

Paper §2 closes its perturbation survey with: "it is clear that they are
not foolproof in protecting data privacy.  Hence, we need a safer and more
efficient method for data perturbation."  The method the field settled on
is differential privacy; this module provides its basic form as a
forward-looking preservation technique:

* :class:`LaplaceMechanism` — adds Laplace(sensitivity/epsilon) noise to an
  aggregate answer.  Noise is **memoized per query fingerprint**, so
  repeating an identical query returns the identical noisy answer (no
  averaging attack), while distinct queries draw fresh noise and spend
  budget.
* :class:`PrivacyBudget` — per-requester epsilon accounting; once a
  requester exhausts the budget, further *novel* queries are refused.

Noise draws route through one injectable ``numpy.random.Generator``
(pass an ``int`` seed, a ``Generator``, or — for backward compatibility —
a ``random.Random``).  Batched draws (:meth:`LaplaceMechanism.answer_many`)
consume the generator stream exactly as the same number of single draws
would, so batch and sequential answering are stream-equivalent; the
``REPRO_SCALAR_KERNELS=1`` escape hatch swaps in the scalar inverse-CDF
reference the differential tests pin the vectorized math against.
"""

from __future__ import annotations

import math
import random

import numpy as np

from repro.errors import PrivacyViolation, ReproError
from repro.kernels import use_scalar_kernels


def resolve_rng(rng=None):
    """Normalize ``rng`` into a noise source.

    ``None`` → a fresh OS-entropy ``numpy.random.Generator``; an ``int``
    → a seeded generator; a ``Generator`` or ``random.Random`` passes
    through unchanged (the latter keeps pre-existing seeded fixtures
    byte-stable).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    if isinstance(rng, (np.random.Generator, random.Random)):
        return rng
    raise ReproError(
        f"rng must be None, an int seed, a numpy Generator, or a "
        f"random.Random; got {type(rng).__name__}"
    )


class PrivacyBudget:
    """Per-requester epsilon ledger."""

    def __init__(self, total_epsilon):
        if total_epsilon <= 0:
            raise ReproError("total epsilon must be positive")
        self.total_epsilon = total_epsilon
        self._spent = {}

    def spent(self, requester):
        """Epsilon this requester has consumed."""
        return self._spent.get(requester, 0.0)

    def remaining(self, requester):
        """Epsilon this requester has left."""
        return self.total_epsilon - self.spent(requester)

    def charge(self, requester, epsilon):
        """Spend ``epsilon``; raise :class:`PrivacyViolation` if overdrawn."""
        if epsilon <= 0:
            raise ReproError("epsilon per query must be positive")
        if self.spent(requester) + epsilon > self.total_epsilon + 1e-12:
            raise PrivacyViolation(
                f"requester {requester!r} has exhausted the privacy budget "
                f"(spent {self.spent(requester):.2f} of "
                f"{self.total_epsilon:.2f})"
            )
        self._spent[requester] = self.spent(requester) + epsilon


class LaplaceMechanism:
    """Budgeted, memoized Laplace noise for aggregate answers."""

    def __init__(self, epsilon_per_query, sensitivity=1.0, budget=None,
                 rng=None):
        if epsilon_per_query <= 0:
            raise ReproError("epsilon per query must be positive")
        if sensitivity <= 0:
            raise ReproError("sensitivity must be positive")
        self.epsilon_per_query = epsilon_per_query
        self.sensitivity = sensitivity
        self.budget = budget
        self.rng = resolve_rng(rng)
        # Not repro.cache.LRUCache: statdb (layer 20) sits below the cache
        # layer (45), and this memo must NEVER evict — replaying the same
        # noisy answer for a repeated query is the privacy mechanism itself.
        self._memo = {}  # repro-lint: disable=REP007 -- DP replay memo must be unbounded and layer 20 cannot import layer 45

    @property
    def noise_scale(self):
        """The Laplace scale b = sensitivity / epsilon."""
        return self.sensitivity / self.epsilon_per_query

    def answer(self, value, fingerprint, requester="anonymous"):
        """``value`` + Laplace noise, memoized by ``fingerprint``.

        A repeated (requester, fingerprint) pair replays the cached noisy
        answer and costs nothing; a novel pair draws fresh noise and is
        charged against the budget (when one is configured).
        """
        key = (requester, fingerprint)
        if key in self._memo:
            return self._memo[key]
        if self.budget is not None:
            self.budget.charge(requester, self.epsilon_per_query)
        noisy = value + self._laplace()
        self._memo[key] = noisy
        return noisy

    def answer_many(self, values, fingerprints, requester="anonymous"):
        """Batch :meth:`answer`: one vectorized draw for all novel pairs.

        Semantics match calling :meth:`answer` once per (value,
        fingerprint) pair in order — the same memo hits, the same budget
        charges in the same order, and the identical generator stream
        consumption.  If a charge raises mid-batch, every pair charged
        *before* the failure still gets its noise drawn and memoized
        (exactly the state a sequential caller would have left behind)
        and the :class:`PrivacyViolation` propagates.
        """
        values = list(values)
        fingerprints = list(fingerprints)
        if len(values) != len(fingerprints):
            raise ReproError("values and fingerprints must have equal length")
        fast = self._answer_many_fast(values, fingerprints, requester)
        if fast is not None:
            return fast
        results = [None] * len(values)
        fresh = []   # (key, value) per novel pair, in first-occurrence order
        slots = {}   # key -> result indices awaiting that pair's noisy answer
        error = None
        for index, (value, fingerprint) in enumerate(zip(values, fingerprints)):
            key = (requester, fingerprint)
            if key in self._memo:
                results[index] = self._memo[key]
                continue
            if key in slots:  # duplicate within the batch: replays, no charge
                slots[key].append(index)
                continue
            if self.budget is not None:
                try:
                    self.budget.charge(requester, self.epsilon_per_query)
                except PrivacyViolation as exc:
                    error = exc
                    break
            slots[key] = [index]
            fresh.append((key, value))
        noise = self._laplace_batch(len(fresh))
        for (key, value), draw in zip(fresh, noise):
            noisy = value + float(draw)
            self._memo[key] = noisy
            for index in slots[key]:
                results[index] = noisy
        if error is not None:
            raise error
        return results

    def _answer_many_fast(self, values, fingerprints, requester):
        """Fully vectorized :meth:`answer_many` body, or ``None``.

        Applies when there is no budget to charge, no prior memo to
        replay, and numeric values — then the whole batch reduces to
        one dedupe pass, one vectorized draw over the distinct
        fingerprints (identical stream consumption: one draw per novel
        pair, in first-occurrence order), and one memo fill.  Results
        are bitwise-identical to the sequential loop: the same float64
        ``value + draw`` per novel pair, replayed for duplicates.
        """
        if (self.budget is not None or self._memo
                or use_scalar_kernels() or not values):
            return None
        try:
            numeric = np.asarray(values, dtype=np.float64)
        except (TypeError, ValueError):
            return None
        seen = {}
        codes = np.fromiter(
            (seen.setdefault(fp, len(seen)) for fp in fingerprints),
            dtype=np.int64, count=len(fingerprints),
        )
        # Codes are issued in first-occurrence order, so np.unique's
        # sorted codes line up with first-occurrence positions.
        _, first_position = np.unique(codes, return_index=True)
        noisy = numeric[first_position] + self._laplace_batch(len(seen))
        replayed = noisy.tolist()
        self._memo.update(
            ((requester, fp), answer)
            for fp, answer in zip(seen, replayed)
        )
        return noisy[codes].tolist()

    def _laplace(self):
        if use_scalar_kernels():
            # scalar inverse-CDF reference:
            # b * sign(u) * ln(1 - 2|u|), u ~ U(-1/2, 1/2)
            u = self.rng.random() - 0.5
            return -self.noise_scale * math.copysign(1.0, u) * math.log(
                1.0 - 2.0 * abs(u)
            )
        return float(self._laplace_batch(1)[0])

    def _laplace_batch(self, n):
        """``n`` Laplace draws, consuming the stream as ``n`` single draws."""
        if n <= 0:
            return np.empty(0)
        if isinstance(self.rng, np.random.Generator) and not use_scalar_kernels():
            u = self.rng.random(n) - 0.5
        else:
            u = np.array([self.rng.random() for _ in range(n)]) - 0.5
        return -self.noise_scale * np.copysign(1.0, u) * np.log(
            1.0 - 2.0 * np.abs(u)
        )

    def expected_absolute_error(self):
        """E|noise| = b (useful for utility accounting)."""
        return self.noise_scale
