"""Laplace output perturbation with an epsilon budget.

Paper §2 closes its perturbation survey with: "it is clear that they are
not foolproof in protecting data privacy.  Hence, we need a safer and more
efficient method for data perturbation."  The method the field settled on
is differential privacy; this module provides its basic form as a
forward-looking preservation technique:

* :class:`LaplaceMechanism` — adds Laplace(sensitivity/epsilon) noise to an
  aggregate answer.  Noise is **memoized per query fingerprint**, so
  repeating an identical query returns the identical noisy answer (no
  averaging attack), while distinct queries draw fresh noise and spend
  budget.
* :class:`PrivacyBudget` — per-requester epsilon accounting; once a
  requester exhausts the budget, further *novel* queries are refused.
"""

from __future__ import annotations

import math
import random

from repro.errors import PrivacyViolation, ReproError


class PrivacyBudget:
    """Per-requester epsilon ledger."""

    def __init__(self, total_epsilon):
        if total_epsilon <= 0:
            raise ReproError("total epsilon must be positive")
        self.total_epsilon = total_epsilon
        self._spent = {}

    def spent(self, requester):
        """Epsilon this requester has consumed."""
        return self._spent.get(requester, 0.0)

    def remaining(self, requester):
        """Epsilon this requester has left."""
        return self.total_epsilon - self.spent(requester)

    def charge(self, requester, epsilon):
        """Spend ``epsilon``; raise :class:`PrivacyViolation` if overdrawn."""
        if epsilon <= 0:
            raise ReproError("epsilon per query must be positive")
        if self.spent(requester) + epsilon > self.total_epsilon + 1e-12:
            raise PrivacyViolation(
                f"requester {requester!r} has exhausted the privacy budget "
                f"(spent {self.spent(requester):.2f} of "
                f"{self.total_epsilon:.2f})"
            )
        self._spent[requester] = self.spent(requester) + epsilon


class LaplaceMechanism:
    """Budgeted, memoized Laplace noise for aggregate answers."""

    def __init__(self, epsilon_per_query, sensitivity=1.0, budget=None,
                 rng=None):
        if epsilon_per_query <= 0:
            raise ReproError("epsilon per query must be positive")
        if sensitivity <= 0:
            raise ReproError("sensitivity must be positive")
        self.epsilon_per_query = epsilon_per_query
        self.sensitivity = sensitivity
        self.budget = budget
        self.rng = rng or random.Random()
        # Not repro.cache.LRUCache: statdb (layer 20) sits below the cache
        # layer (45), and this memo must NEVER evict — replaying the same
        # noisy answer for a repeated query is the privacy mechanism itself.
        self._memo = {}  # repro-lint: disable=REP007 -- DP replay memo must be unbounded and layer 20 cannot import layer 45

    @property
    def noise_scale(self):
        """The Laplace scale b = sensitivity / epsilon."""
        return self.sensitivity / self.epsilon_per_query

    def answer(self, value, fingerprint, requester="anonymous"):
        """``value`` + Laplace noise, memoized by ``fingerprint``.

        A repeated (requester, fingerprint) pair replays the cached noisy
        answer and costs nothing; a novel pair draws fresh noise and is
        charged against the budget (when one is configured).
        """
        key = (requester, fingerprint)
        if key in self._memo:
            return self._memo[key]
        if self.budget is not None:
            self.budget.charge(requester, self.epsilon_per_query)
        noisy = value + self._laplace()
        self._memo[key] = noisy
        return noisy

    def _laplace(self):
        # inverse-CDF sampling: b * sign(u) * ln(1 - 2|u|), u ~ U(-1/2, 1/2)
        u = self.rng.random() - 0.5
        return -self.noise_scale * math.copysign(1.0, u) * math.log(
            1.0 - 2.0 * abs(u)
        )

    def expected_absolute_error(self):
        """E|noise| = b (useful for utility accounting)."""
        return self.noise_scale
