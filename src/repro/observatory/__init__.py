"""The disclosure observatory — accountable disclosure, live.

The telemetry layer records what the pipeline *did*; the observatory
records what the deployment *disclosed*, tamper-evidently, and watches
for the paper's sequence attack as it develops:

* :class:`~repro.observatory.journal.AuditJournal` — a SHA-256
  hash-chained, append-only journal with one record per ``pose()``
  (answered or refused): requester, plan fingerprint, per-source losses,
  aggregated loss, and the requester's cumulative disclosure
  ``1 − Π(1 − loss_i)``.  ``verify_chain()`` detects any byte of
  tampering.
* :class:`~repro.observatory.snooperwatch.SnooperWatch` — per-requester
  ledgers of released aggregates, replayed through
  :mod:`repro.inference.bounds` on a cadence; when a confidential cell's
  feasibility interval tightens below threshold the watch raises a
  :class:`~repro.observatory.snooperwatch.SnooperAlert` and emits a
  ``snooperwatch.alert`` event.

:class:`Observatory` bundles both behind the interface the mediation
engine drives: ``record_pose()`` after every pose, ``observe_result()``
on answered aggregates.  Enable with ``PrivateIye(observatory=True)``
(the engine holds ``observatory=None`` by default — one ``is None``
check and the query path is untouched).
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.observatory.journal import (
    GENESIS_HASH,
    AuditJournal,
    JournalRecord,
    verify_records,
)
from repro.observatory.snooperwatch import SnooperAlert, SnooperWatch
from repro.query.model import PiqlQuery
from repro.telemetry.events import NOOP_EVENTS

__all__ = [
    "GENESIS_HASH",
    "AuditJournal",
    "JournalRecord",
    "Observatory",
    "SnooperAlert",
    "SnooperWatch",
    "released_cells",
    "resolve_observatory",
    "verify_records",
]


def released_cells(query, result):
    """The exact per-source cells an answered query handed the requester.

    Ungrouped aggregate results release one row per source (tagged
    ``_source`` by the integrator), each an exact cell under the
    aggregate's alias — precisely the knowledge a Figure 1 adversary
    accumulates.  Returns ``[(measure, source, value), ...]``; empty
    for non-aggregates and grouped queries.  Shared by the snooper
    ledger fold below and by the engine's write-ahead pose record
    (:mod:`repro.persistence`), so what is persisted is byte-for-byte
    what the watch learned.
    """
    cells = []
    if (isinstance(query, PiqlQuery) and query.is_aggregate
            and not query.group_by):
        for item in query.aggregates:
            for row in result.rows:
                source = row.get("_source")
                value = row.get(item.alias)
                if source is None or not isinstance(value, (int, float)):
                    continue
                cells.append((item.alias, source, float(value)))
    return cells


class Observatory:
    """Journal + snooper-watch behind one engine-facing interface."""

    def __init__(self, journal=None, watch=None, min_interval_width=5.0,
                 check_every=1):
        self.journal = journal if journal is not None else AuditJournal()
        self.watch = watch if watch is not None else SnooperWatch(
            min_interval_width=min_interval_width, check_every=check_every,
        )
        self._events = NOOP_EVENTS
        #: Write-ahead sink for out-of-band publications; attached by
        #: :meth:`repro.persistence.PersistenceSink.bind` (``None``
        #: keeps publications memory-only, today's default).
        self.persistence = None

    @property
    def events(self):
        """The event log alerts are emitted into (attached by the engine)."""
        return self._events

    @events.setter
    def events(self, events):
        self._events = events
        self.watch.events = events

    # -- engine integration ------------------------------------------------

    def record_pose(self, requester, fingerprint, status,
                    per_source_loss=None, aggregated_loss=0.0, kind=None):
        """Journal one pose; returns the :class:`JournalRecord`."""
        return self.journal.append(
            requester, fingerprint, status,
            per_source_loss=per_source_loss,
            aggregated_loss=aggregated_loss, kind=kind,
        )

    def observe_result(self, requester, query, result):
        """Fold an answered result into the requester's snooper ledger.

        Ungrouped aggregate results release exact per-source cells (the
        integrator returns one row per source, tagged ``_source``), so
        each becomes adversary knowledge under the aggregate's alias as
        the measure label.  Then counts the pose and, on cadence,
        replays the ledger; returns any fresh alerts.
        """
        for measure, source, value in released_cells(query, result):
            self.watch.note_cell(requester, measure, source, value)
        return self.watch.note_pose(requester)

    def note_publication(self, requester, row_stats=None, source_means=None,
                         own_data=None, sources=None, measures=None,
                         check=True):
        """Out-of-band releases the requester saw (Figure 1's tables).

        ``row_stats`` is ``{measure: (mean, std)}`` (std may be None),
        ``source_means`` is ``{source: mean}``, ``own_data`` is
        ``{source: {measure: value}}``.  ``sources``/``measures`` pin
        the span of the published statistics (Figure 1's row stats span
        all four HMOs; its source means span all three tests) — see
        :meth:`SnooperWatch.note_row_stat`.  With ``check=True`` the
        ledger is replayed immediately; returns any fresh alerts.

        Durability: with a persistence sink attached, the publication
        is appended to the write-ahead log *before* it is folded into
        the ledger — a crash can leave a publication recorded but
        unfolded (recovery replays it), never folded but forgotten.
        """
        if self.persistence is not None:
            normalized = {
                measure: (stat if isinstance(stat, tuple) else (stat, None))
                for measure, stat in (row_stats or {}).items()
            }
            self.persistence.record_publication(
                requester, row_stats=normalized,
                source_means=source_means, own_data=own_data,
                sources=sources, measures=measures,
            )
        for measure, stat in (row_stats or {}).items():
            mean, std = stat if isinstance(stat, tuple) else (stat, None)
            self.watch.note_row_stat(requester, measure, mean, std=std,
                                     over=sources)
        for source, mean in (source_means or {}).items():
            self.watch.note_source_mean(requester, source, mean,
                                        over=measures)
        for source, values in (own_data or {}).items():
            self.watch.note_own_data(requester, source, values)
        return self.watch.check(requester) if check else []

    # -- reading -----------------------------------------------------------

    @property
    def alerts(self):
        """Every alert the watch has raised, oldest first."""
        return list(self.watch.alerts)

    def verify(self):
        """Verify the journal chain: ``(ok, first_bad_seq_or_None)``."""
        return self.journal.verify_chain()

    def report(self):
        """A JSON-serializable observatory summary."""
        ok, bad_seq = self.journal.verify_chain()
        return {
            "journal": {
                "records": len(self.journal),
                "chain_valid": ok,
                "first_bad_seq": bad_seq,
                "cumulative_loss": self.journal.requesters(),
            },
            "snooper_watch": {
                "threshold": self.watch.min_interval_width,
                "check_every": self.watch.check_every,
                "alerts": [a.to_dict() for a in self.watch.alerts],
            },
        }

    def __repr__(self):
        return (f"Observatory(journal={len(self.journal)}, "
                f"alerts={len(self.watch.alerts)})")


def resolve_observatory(observatory):
    """Normalize an ``observatory`` constructor argument.

    ``None``/``False`` → ``None`` (disabled — the engine's query path
    stays untouched); ``True`` → a fresh :class:`Observatory`; an
    :class:`Observatory` passes through (share one across engines to
    pool the journal).
    """
    if observatory is None or observatory is False:
        return None
    if observatory is True:
        return Observatory()
    if isinstance(observatory, Observatory):
        return observatory
    raise ReproError(
        "observatory must be None, a bool, or an Observatory, "
        f"not {type(observatory).__name__}"
    )
