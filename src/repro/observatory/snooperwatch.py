"""Live snooper detection — Figure 1 run *against* the requesters.

:mod:`repro.inference.snooper` shows what a malicious source can infer
from published aggregates; :mod:`repro.inference.guard` checks one
release defensively.  The gap both leave open is the paper's central
threat: a requester who accumulates knowledge across *many* individually
safe interactions.  :class:`SnooperWatch` closes it by maintaining, per
requester, a ledger of everything the mediator has let them see — exact
per-source aggregate cells from answered queries, published row
statistics, published per-source means — and periodically replaying that
ledger through :func:`repro.inference.bounds.cell_bounds` exactly as a
Figure 1 adversary would.  When any confidential cell's feasibility
interval tightens below ``min_interval_width``, the requester has
effectively inferred the value, and the watch raises a
:class:`SnooperAlert` (and emits a ``snooperwatch.alert`` event) *before*
the next disclosure widens the breach.

The matrix model mirrors Figure 1: rows are measures (aggregate labels),
columns are sources.  A column is *known* to the requester when they
hold every measure's cell for it (their own data, or a fully-released
source); remaining cells are hidden and get bounded.  Knowledge arrives
incrementally — row sigmas published one query at a time are handled by
:class:`~repro.inference.bounds.AggregateConstraints`'s per-row optional
stds.

The bound replay costs SLSQP solves, so ``check_every`` trades latency
for vigilance (``1`` replays after every pose); alerts deduplicate on
``(requester, measure, source)`` so a breach fires exactly once.

Durability contract (:mod:`repro.persistence`): the knowledge ledgers
and pose counters round-trip through :meth:`SnooperWatch.state_dict` /
:meth:`SnooperWatch.restore_state`, and newer logged releases replay
through the ordinary ``note_*`` calls — so after ``recover()`` the
solver sees the identical matrix it saw before the crash.  Alert dedup
(``_alerted``) is process-local *by design*: a standing breach re-fires
once after every restart (at-least-once alerting for operators).
"""

from __future__ import annotations

import threading
import time

from repro.errors import ReproError
from repro.inference.bounds import AggregateConstraints, cell_bounds
from repro.telemetry import redact
from repro.telemetry.events import NOOP_EVENTS


class SnooperAlert:
    """One inferred-value breach: a cell's interval fell below threshold."""

    __slots__ = ("requester", "measure", "source", "low", "high", "width",
                 "threshold", "ts")

    def __init__(self, requester, measure, source, low, high, threshold, ts):
        self.requester = requester
        self.measure = measure
        self.source = source
        self.low = float(low)
        self.high = float(high)
        self.width = self.high - self.low
        self.threshold = threshold
        self.ts = ts

    def to_dict(self):
        return {
            "requester": self.requester,
            "measure": self.measure,
            "source": self.source,
            "low": self.low,
            "high": self.high,
            "width": self.width,
            "threshold": self.threshold,
            "ts": self.ts,
        }

    def __repr__(self):
        return (f"SnooperAlert({self.requester!r} infers "
                f"{self.measure!r}@{self.source!r} ∈ "
                f"[{self.low:.1f}, {self.high:.1f}])")


class _Knowledge:
    """Everything one requester has been shown, in Figure 1's shape."""

    __slots__ = ("measures", "sources", "cells", "row_means", "row_stds",
                 "source_means")

    def __init__(self):
        self.measures = []      # insertion-ordered row labels
        self.sources = []       # insertion-ordered column labels
        self.cells = {}         # (measure, source) → exact value
        self.row_means = {}     # measure → (mean, sources-spanned or None)
        self.row_stds = {}      # measure → published sample std
        self.source_means = {}  # source → (mean, measures-spanned or None)

    def touch_measure(self, measure):
        if measure not in self.measures:
            self.measures.append(measure)

    def touch_source(self, source):
        if source not in self.sources:
            self.sources.append(source)


class SnooperWatch:
    """Replays each requester's accumulated view through the bound solver.

    Parameters
    ----------
    min_interval_width:
        A hidden cell whose feasibility interval is narrower than this is
        considered *inferred* (the guard's 5.0 default matches
        :class:`repro.inference.guard.InferenceGuard`).
    check_every:
        Replay cadence in poses per requester (1 = after every pose).
    starts, seed, value_range, tolerance:
        Passed through to the bound problem; see
        :mod:`repro.inference.bounds`.
    """

    def __init__(self, min_interval_width=5.0, check_every=1, starts=2,
                 seed=0, value_range=(0.0, 100.0), tolerance=0.05,
                 clock=time.time):
        if min_interval_width <= 0:
            raise ReproError("min_interval_width must be positive")
        if check_every < 1:
            raise ReproError("check_every must be >= 1")
        self.min_interval_width = min_interval_width
        self.check_every = check_every
        self.starts = starts
        self.seed = seed
        self.value_range = value_range
        self.tolerance = tolerance
        self.events = NOOP_EVENTS
        self.alerts = []
        self._clock = clock
        self._lock = threading.Lock()
        self._knowledge = {}    # requester → _Knowledge
        self._poses = {}        # requester → poses since last replay
        self._alerted = set()   # (requester, measure, source) already fired

    # -- feeding knowledge -------------------------------------------------

    def _ledger(self, requester):
        ledger = self._knowledge.get(requester)
        if ledger is None:
            # repro-lint: disable=REP001 -- every caller (note_cell,
            # note_row_stat, note_source_mean) already holds self._lock.
            ledger = self._knowledge.setdefault(requester, _Knowledge())
        return ledger

    def note_cell(self, requester, measure, source, value):
        """The requester learned one exact cell (answered aggregate)."""
        with self._lock:
            ledger = self._ledger(requester)
            ledger.touch_measure(measure)
            ledger.touch_source(source)
            ledger.cells[(measure, source)] = float(value)

    def note_own_data(self, requester, source, values):
        """The requester's own column — ``{measure: value}`` at ``source``."""
        for measure, value in values.items():
            self.note_cell(requester, measure, source, value)

    def note_row_stat(self, requester, measure, mean, std=None, over=None):
        """A published per-measure mean (and optionally sample std).

        ``over`` names the sources the statistic spans (Figure 1(a)'s
        row means cover all four HMOs).  Passing it both widens the
        requester's matrix to those columns and pins the constraint's
        scope — a row mean is only applied when its span matches the
        matrix, otherwise the bound problem would be mis-specified.
        """
        with self._lock:
            ledger = self._ledger(requester)
            ledger.touch_measure(measure)
            for source in over or ():
                ledger.touch_source(source)
            ledger.row_means[measure] = (
                float(mean), frozenset(over) if over is not None else None
            )
            if std is not None:
                ledger.row_stds[measure] = float(std)

    def note_source_mean(self, requester, source, mean, over=None):
        """A published per-source mean; ``over`` names the measures spanned."""
        with self._lock:
            ledger = self._ledger(requester)
            ledger.touch_source(source)
            for measure in over or ():
                ledger.touch_measure(measure)
            ledger.source_means[source] = (
                float(mean), frozenset(over) if over is not None else None
            )

    # -- replaying ---------------------------------------------------------

    def note_pose(self, requester):
        """Count one pose; replay on cadence.  Returns any new alerts."""
        with self._lock:
            count = self._poses.get(requester, 0) + 1
            self._poses[requester] = count
            due = count % self.check_every == 0
        return self.check(requester) if due else []

    def check(self, requester):
        """Replay the requester's ledger now; returns new alerts only."""
        with self._lock:
            ledger = self._knowledge.get(requester)
            if ledger is None:
                return []
            constraints = self._constraints(ledger)
        if constraints is None:
            return []
        try:
            intervals = cell_bounds(constraints, starts=self.starts,
                                    seed=self.seed)
        except ReproError as error:
            # Inconsistent published aggregates: nothing inferable, but
            # worth a trace — the requester's view contradicts itself.
            self.events.emit("snooperwatch.infeasible", requester=requester,
                             reason=str(error))
            return []
        return self._raise_alerts(requester, ledger, constraints, intervals)

    def _constraints(self, ledger):
        """The requester's view as an :class:`AggregateConstraints`.

        Only measures whose published row mean spans the full column set
        constrain anything (a stat over a different span would
        mis-specify the bound problem); needs at least two source
        columns to pose a problem at all.
        """
        sources = list(ledger.sources)
        measures = self._model_rows(ledger, sources)
        if not measures or len(sources) < 2:
            return None
        known_columns = {}
        for j, source in enumerate(sources):
            column = [ledger.cells.get((m, source)) for m in measures]
            if all(v is not None for v in column):
                known_columns[j] = column
        if len(known_columns) == len(sources):
            return None  # nothing hidden — the requester was *told* it all
        row_stds = [ledger.row_stds.get(m) for m in measures]
        if all(s is None for s in row_stds):
            row_stds = None
        column_means = {}
        for j, source in enumerate(sources):
            if j in known_columns or source not in ledger.source_means:
                continue
            mean, span = ledger.source_means[source]
            if span is None or span == frozenset(measures):
                column_means[j] = mean
        return AggregateConstraints(
            n_rows=len(measures),
            n_cols=len(sources),
            known_columns=known_columns,
            row_means=[ledger.row_means[m][0] for m in measures],
            row_stds=row_stds,
            column_means=column_means,
            value_range=self.value_range,
            tolerance=self.tolerance,
        )

    @staticmethod
    def _model_rows(ledger, sources):
        """Measures whose row mean applies to the current column set."""
        rows = []
        for measure in ledger.measures:
            stat = ledger.row_means.get(measure)
            if stat is None:
                continue
            _, span = stat
            if span is None or span == frozenset(sources):
                rows.append(measure)
        return rows

    def _raise_alerts(self, requester, ledger, constraints, intervals):
        measures = self._model_rows(ledger, list(ledger.sources))
        sources = list(ledger.sources)
        fresh = []
        for (i, j), (low, high) in sorted(intervals.items()):
            if high - low >= self.min_interval_width:
                continue
            key = (requester, measures[i], sources[j])
            with self._lock:
                if key in self._alerted:
                    continue
                self._alerted.add(key)
                alert = SnooperAlert(requester, measures[i], sources[j],
                                     low, high, self.min_interval_width,
                                     self._clock())
                self.alerts.append(alert)
            fresh.append(alert)
            # The alert object keeps the exact interval for the ledger;
            # the *event* carries only its generalized position — an
            # operator reading telemetry must not learn the cell the
            # requester just pinned.  The width survives exactly: it is
            # the alerting signal and discloses nothing about position.
            # repro-lint: disable=REP010 -- measure/source are Figure-1
            # matrix labels and width/threshold are config; the interval
            # position is bucketed via redact.bucket_interval above.
            self.events.emit(
                "snooperwatch.alert", requester=requester,
                measure=alert.measure, source=alert.source,
                interval=redact.bucket_interval(alert.low, alert.high),
                width=alert.width, threshold=alert.threshold,
            )
        return fresh

    def alerts_for(self, requester):
        """Alerts raised against one requester, oldest first."""
        with self._lock:
            return [a for a in self.alerts if a.requester == requester]

    # -- persistence (see repro.persistence) -------------------------------

    def requesters(self):
        """Every requester with a knowledge ledger, sorted."""
        with self._lock:
            return sorted(self._knowledge)

    def state_dict(self):
        """Snapshot form: every ledger plus the pose cadence counters.

        Durability contract: this captures exactly what a Figure 1
        adversary retains — cells, row stats, source means, and the
        insertion order of the matrix labels (the bound solver's row/
        column order).  ``_alerted`` dedup state is deliberately *not*
        captured: after recovery a standing breach re-fires, giving
        operators at-least-once alerting across restarts.
        """
        with self._lock:
            knowledge = {
                requester: {
                    "measures": list(ledger.measures),
                    "sources": list(ledger.sources),
                    "cells": [
                        [measure, source, value]
                        for (measure, source), value in ledger.cells.items()
                    ],
                    "row_means": {
                        measure: [mean,
                                  sorted(span) if span is not None else None]
                        for measure, (mean, span) in ledger.row_means.items()
                    },
                    "row_stds": dict(ledger.row_stds),
                    "source_means": {
                        source: [mean,
                                 sorted(span) if span is not None else None]
                        for source, (mean, span)
                        in ledger.source_means.items()
                    },
                }
                for requester, ledger in self._knowledge.items()
            }
            return {"knowledge": knowledge, "poses": dict(self._poses)}

    def restore_state(self, state):
        """Rebuild ledgers from :meth:`state_dict` output (recovery).

        Replaces any same-named requester's ledger wholesale — recovery
        targets a freshly built watch, and the snapshot is the folded
        truth for everything at or before its sequence.  Newer logged
        releases are replayed on top via the ordinary ``note_*`` calls.
        """
        with self._lock:
            for requester, data in (state.get("knowledge") or {}).items():
                ledger = _Knowledge()
                ledger.measures = list(data.get("measures", ()))
                ledger.sources = list(data.get("sources", ()))
                ledger.cells = {
                    (measure, source): float(value)
                    for measure, source, value in data.get("cells", ())
                }
                ledger.row_means = {
                    measure: (float(mean),
                              frozenset(span) if span is not None else None)
                    for measure, (mean, span)
                    in (data.get("row_means") or {}).items()
                }
                ledger.row_stds = {
                    measure: float(std)
                    for measure, std in (data.get("row_stds") or {}).items()
                }
                ledger.source_means = {
                    source: (float(mean),
                             frozenset(span) if span is not None else None)
                    for source, (mean, span)
                    in (data.get("source_means") or {}).items()
                }
                self._knowledge[requester] = ledger
            for requester, count in (state.get("poses") or {}).items():
                self._poses[requester] = int(count)

    def absorb_poses(self, counts):
        """Add pose counts without triggering cadence checks (recovery).

        Replayed poses were already checked by the pre-crash process;
        recovery runs one explicit :meth:`check` pass per requester at
        the end instead, so alerts fire exactly once per replay rather
        than once per replayed pose.
        """
        with self._lock:
            for requester, count in counts.items():
                self._poses[requester] = (
                    self._poses.get(requester, 0) + int(count)
                )

    def __repr__(self):
        return (f"SnooperWatch(threshold={self.min_interval_width}, "
                f"alerts={len(self.alerts)})")
