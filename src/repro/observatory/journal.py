"""The hash-chained disclosure audit journal.

The paper's accountability story (§3.3, §5) needs more than an in-memory
explain log: the *record* of what was disclosed must itself be trustworthy,
because the mediator operator is a party to the protocol — a journal that
can be silently rewritten proves nothing to a source disputing a
violation notice.  :class:`AuditJournal` therefore chains every appended
record to its predecessor with SHA-256: record *n*'s hash covers its own
canonical payload **and** record *n−1*'s hash, so changing any byte of
any historical record (or deleting/reordering one) breaks every hash
after it.  ``verify_chain()`` walks the chain from the genesis hash and
reports the first record that fails to re-verify.

One record is appended per ``MediationEngine.pose()`` — answered *or*
refused — carrying the requester, the plan fingerprint (tier-1 cache
identity: canonical PIQL + principal + policy epoch), the per-source
losses, the aggregated loss, and the requester's cumulative disclosure
``1 − Π(1 − loss_i)`` over every answered pose so far.  The journal is
append-only by design: there is deliberately no ``clear()``.

Records serialize to JSON Lines (``to_jsonl()``) and re-verify offline
(:func:`verify_records`), which is what ``python -m repro.telemetry.report
--journal`` does.

Durability contract (:mod:`repro.persistence`): every record's
``to_dict()`` form — hashes included — is written ahead of answer
release, and snapshots store the folded prefix verbatim, so the chain
spans compaction and restart boundaries unbroken.  :meth:`AuditJournal.
restore` rebuilds a journal from those dicts by *recomputing* every
hash, making post-recovery ``verify_chain()`` a real re-verification,
not a replay of stored claims.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time

from repro.errors import PersistenceError, ReproError

#: The chain's genesis "previous hash" — 64 zero hex digits.
GENESIS_HASH = "0" * 64

#: Journal record statuses.
STATUS_ANSWERED = "answered"
STATUS_REFUSED = "refused"


def _chain_hash(payload, prev_hash):
    """SHA-256 over the canonical payload JSON, chained to ``prev_hash``.

    The payload is serialized with sorted keys and minimal separators so
    the byte material is deterministic; the previous hash is mixed in
    ahead of it, which is what links the records into a chain.
    """
    material = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(
        (prev_hash + "|" + material).encode("utf-8")
    ).hexdigest()


class JournalRecord:
    """One tamper-evident disclosure record (one ``pose()``)."""

    __slots__ = ("seq", "ts", "requester", "fingerprint", "status", "kind",
                 "per_source_loss", "aggregated_loss", "cumulative_loss",
                 "prev_hash", "hash")

    def __init__(self, seq, ts, requester, fingerprint, status, kind,
                 per_source_loss, aggregated_loss, cumulative_loss,
                 prev_hash):
        self.seq = seq
        self.ts = ts
        self.requester = requester
        self.fingerprint = fingerprint
        self.status = status
        self.kind = kind                      # refusal kind, None if answered
        self.per_source_loss = per_source_loss
        self.aggregated_loss = aggregated_loss
        self.cumulative_loss = cumulative_loss
        self.prev_hash = prev_hash
        self.hash = _chain_hash(self.payload(), prev_hash)

    def payload(self):
        """The hashed material — every field except the hashes."""
        return {
            "seq": self.seq,
            "ts": self.ts,
            "requester": self.requester,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "kind": self.kind,
            "per_source_loss": self.per_source_loss,
            "aggregated_loss": self.aggregated_loss,
            "cumulative_loss": self.cumulative_loss,
        }

    def to_dict(self):
        """JSON-serializable form (payload + chain hashes)."""
        record = self.payload()
        record["prev_hash"] = self.prev_hash
        record["hash"] = self.hash
        return record

    def __repr__(self):
        return (f"JournalRecord(#{self.seq} {self.requester!r} "
                f"{self.status} cum={self.cumulative_loss:.4f})")


class AuditJournal:
    """Append-only, hash-chained journal of per-pose disclosures.

    Thread-safe: ``pose()`` may run concurrently across requesters, and
    the chain head plus the cumulative-loss accumulators are
    read-modify-write state.
    """

    def __init__(self, clock=time.time):
        self._records = []
        self._lock = threading.Lock()
        self._clock = clock
        self._cumulative = {}  # requester → 1 − Π(1 − loss_i) so far

    def append(self, requester, fingerprint, status,
               per_source_loss=None, aggregated_loss=0.0, kind=None):
        """Append one record; returns the :class:`JournalRecord`.

        Answered poses compound the requester's cumulative disclosure
        (``cum' = 1 − (1 − cum)(1 − loss)``); refused poses disclose
        nothing and carry the unchanged cumulative value, so the journal
        still shows *when* the requester was stopped.
        """
        if status not in (STATUS_ANSWERED, STATUS_REFUSED):
            raise ReproError(f"unknown journal status {status!r}")
        with self._lock:
            before = self._cumulative.get(requester, 0.0)
            if status == STATUS_ANSWERED:
                cumulative = 1.0 - (1.0 - before) * (1.0 - aggregated_loss)
                self._cumulative[requester] = cumulative
            else:
                cumulative = before
            record = JournalRecord(
                seq=len(self._records) + 1,
                ts=self._clock(),
                requester=requester,
                fingerprint=fingerprint,
                status=status,
                kind=kind,
                per_source_loss=dict(per_source_loss or {}),
                aggregated_loss=float(aggregated_loss),
                cumulative_loss=cumulative,
                prev_hash=(self._records[-1].hash if self._records
                           else GENESIS_HASH),
            )
            self._records.append(record)
            return record

    def restore(self, records):
        """Rebuild the journal from serialized records (recovery path).

        Durability contract: each record is reconstructed from its
        payload and ``prev_hash``, which *recomputes* every sha256 link
        — a single damaged byte anywhere in the stored chain surfaces
        as a :class:`~repro.errors.PersistenceError` here, never as a
        silently divergent journal.  Restoring also rebuilds the
        per-requester cumulative-disclosure accumulators, so
        ``cumulative_loss()`` continues compounding exactly where the
        pre-crash process stopped.  Only valid on an empty journal.
        """
        with self._lock:
            if self._records:
                raise PersistenceError(
                    "cannot restore into a non-empty AuditJournal "
                    f"({len(self._records)} live records)"
                )
            prev = GENESIS_HASH
            for data in records:
                record = JournalRecord(
                    seq=data["seq"], ts=data["ts"],
                    requester=data["requester"],
                    fingerprint=data["fingerprint"],
                    status=data["status"], kind=data["kind"],
                    per_source_loss=dict(data["per_source_loss"]),
                    aggregated_loss=data["aggregated_loss"],
                    cumulative_loss=data["cumulative_loss"],
                    prev_hash=prev,
                )
                if (record.hash != data.get("hash")
                        or data.get("prev_hash") != prev):
                    raise PersistenceError(
                        f"journal restore: record seq {data.get('seq')} "
                        "fails hash-chain verification"
                    )
                self._records.append(record)
                if record.status == STATUS_ANSWERED:
                    self._cumulative[record.requester] = (
                        record.cumulative_loss
                    )
                prev = record.hash
            return list(self._records)

    # -- reading -----------------------------------------------------------

    def records(self, requester=None):
        """All records, oldest first, optionally for one requester."""
        with self._lock:
            snapshot = list(self._records)
        if requester is not None:
            snapshot = [r for r in snapshot if r.requester == requester]
        return snapshot

    def last(self):
        """The newest record, or ``None`` on an empty journal."""
        with self._lock:
            return self._records[-1] if self._records else None

    def cumulative_loss(self, requester):
        """The requester's compounded disclosure ``1 − Π(1 − loss_i)``."""
        with self._lock:
            return self._cumulative.get(requester, 0.0)

    def requesters(self):
        """``{requester: cumulative_loss}`` for everyone journaled."""
        with self._lock:
            return dict(self._cumulative)

    def __len__(self):
        with self._lock:
            return len(self._records)

    # -- verification ------------------------------------------------------

    def verify_chain(self):
        """Re-verify every record against the chain.

        Returns ``(True, None)`` when the chain is intact, else
        ``(False, seq)`` where ``seq`` is the first record whose hash or
        linkage fails to re-verify.
        """
        return verify_records([r.to_dict() for r in self.records()])

    # -- serialization -----------------------------------------------------

    def to_jsonl(self):
        """The journal as JSON Lines (one record per line)."""
        return "".join(
            json.dumps(r.to_dict(), sort_keys=True) + "\n"
            for r in self.records()
        )

    def dump(self, path):
        """Write :meth:`to_jsonl` to ``path``; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())
        return path

    def __repr__(self):
        return f"AuditJournal(n={len(self)})"


def verify_records(records):
    """Verify serialized journal records (dicts) against the hash chain.

    The offline counterpart of :meth:`AuditJournal.verify_chain` — used
    by ``python -m repro.telemetry.report --journal`` on a dumped file.
    Returns ``(True, None)`` or ``(False, first_bad_seq)``; a record
    missing its hash fields counts as tampered.
    """
    prev = GENESIS_HASH
    for position, record in enumerate(records, start=1):
        seq = record.get("seq", position)
        payload = {k: v for k, v in record.items()
                   if k not in ("hash", "prev_hash")}
        if record.get("prev_hash") != prev:
            return False, seq
        if record.get("hash") != _chain_hash(payload, prev):
            return False, seq
        prev = record["hash"]
    return True, None
