"""The declarative policy DSL shared by the three §3 languages.

One document may define any mix of privacy views, source policies, and
user preferences::

    VIEW clinical_private {
        PRIVATE //patient/ssn;
        PRIVATE //patient/dob FORM range;
        PRIVATE //test/result FORM aggregate;
    }

    POLICY HMO1 DEFAULT deny {
        DENY //patient/ssn FOR *;
        ALLOW //patient/dob FOR treatment FORM exact;
        ALLOW //test/result FOR public-health-research
              FORM aggregate MAXLOSS 0.3;
        ALLOW //patient/zip FOR research FORM range ROLES epidemiologist;
    }

    PREFERENCE alice {
        DENY //dob FOR marketing;
        ALLOW //dob FOR research FORM range MAXLOSS 0.5;
    }

Keywords are case-insensitive; paths start with ``/``; ``#`` begins a
comment to end of line; every entry ends with ``;``.
"""

from __future__ import annotations

from repro.errors import PolicyError
from repro.policy.model import ANY_PURPOSE, DisclosureForm, PolicyRule
from repro.policy.preferences import UserPreferences
from repro.policy.source_policy import SourcePolicy
from repro.policy.views import PrivacyView
from repro.xmlkit.path import parse_path

_KEYWORDS = {
    "view", "policy", "preference", "private", "allow", "deny", "for",
    "form", "maxloss", "roles", "default",
}


class PolicyDocument:
    """Everything one DSL document defines."""

    def __init__(self):
        self.views = {}
        self.policies = {}
        self.preferences = {}

    def __repr__(self):
        return (
            f"PolicyDocument(views={sorted(self.views)}, "
            f"policies={sorted(self.policies)}, "
            f"preferences={sorted(self.preferences)})"
        )


def parse_policy_document(text):
    """Parse a DSL document into a :class:`PolicyDocument`."""
    tokens = _tokenize(text)
    parser = _Parser(tokens)
    document = PolicyDocument()
    while not parser.at_end():
        keyword = parser.expect_keyword("view", "policy", "preference")
        name = parser.expect_word()
        if keyword == "view":
            if name in document.views:
                raise PolicyError(f"duplicate view {name!r}")
            document.views[name] = _parse_view(parser, name)
        else:
            default = "deny"
            if parser.accept_keyword("default"):
                default = parser.expect_keyword("allow", "deny")
            container = _parse_rules_block(parser)
            if keyword == "policy":
                if name in document.policies:
                    raise PolicyError(f"duplicate policy {name!r}")
                document.policies[name] = SourcePolicy(name, container, default)
            else:
                if name in document.preferences:
                    raise PolicyError(f"duplicate preference {name!r}")
                document.preferences[name] = UserPreferences(
                    name, container, default
                )
    return document


# -- block parsers ------------------------------------------------------------


def _parse_view(parser, name):
    parser.expect_punct("{")
    view = PrivacyView(name)
    while not parser.accept_punct("}"):
        parser.expect_keyword("private")
        path = parser.expect_path()
        form = DisclosureForm.SUPPRESSED
        if parser.accept_keyword("form"):
            form = DisclosureForm.parse(parser.expect_word())
        parser.expect_punct(";")
        view.add(path, form)
    return view


def _parse_rules_block(parser):
    parser.expect_punct("{")
    rules = []
    while not parser.accept_punct("}"):
        effect = parser.expect_keyword("allow", "deny")
        path = parser.expect_path()
        purpose = ANY_PURPOSE
        form = DisclosureForm.EXACT
        max_loss = 1.0
        roles = None
        while True:
            if parser.accept_keyword("for"):
                purpose = parser.expect_word_or_star()
            elif parser.accept_keyword("form"):
                form = DisclosureForm.parse(parser.expect_word())
            elif parser.accept_keyword("maxloss"):
                max_loss = parser.expect_number()
            elif parser.accept_keyword("roles"):
                roles = [parser.expect_word()]
                while parser.accept_punct(","):
                    roles.append(parser.expect_word())
            else:
                break
        parser.expect_punct(";")
        rules.append(
            PolicyRule(effect, path, purpose, form, max_loss, roles)
        )
    return rules


# -- lexer / token cursor -----------------------------------------------------


def _tokenize(text):
    if not isinstance(text, str):
        raise PolicyError("policy document must be a string")
    tokens = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
        elif ch == "#":
            while i < n and text[i] != "\n":
                i += 1
        elif ch in "{};,":
            tokens.append(("punct", ch))
            i += 1
        elif ch == "/":
            j = i
            while j < n and not text[j].isspace() and text[j] not in "{};,":
                j += 1
            tokens.append(("path", text[i:j]))
            i = j
        elif ch == "*":
            tokens.append(("word", "*"))
            i += 1
        elif ch.isdigit() or ch == ".":
            j = i
            while j < n and (text[j].isdigit() or text[j] == "."):
                j += 1
            tokens.append(("number", text[i:j]))
            i = j
        elif ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] in "_-"):
                j += 1
            word = text[i:j]
            kind = "keyword" if word.lower() in _KEYWORDS else "word"
            tokens.append((kind, word.lower() if kind == "keyword" else word))
            i = j
        else:
            raise PolicyError(f"unexpected character {ch!r} at offset {i}")
    return tokens


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    def at_end(self):
        return self.pos >= len(self.tokens)

    def _peek(self):
        return self.tokens[self.pos] if not self.at_end() else (None, None)

    def _next(self):
        token = self._peek()
        self.pos += 1
        return token

    def expect_keyword(self, *choices):
        kind, value = self._next()
        if kind != "keyword" or value not in choices:
            raise PolicyError(
                f"expected {'/'.join(c.upper() for c in choices)}, "
                f"got {value!r}"
            )
        return value

    def accept_keyword(self, word):
        kind, value = self._peek()
        if kind == "keyword" and value == word:
            self.pos += 1
            return True
        return False

    def expect_word(self):
        kind, value = self._next()
        if kind not in ("word", "keyword") or value == "*":
            raise PolicyError(f"expected a name, got {value!r}")
        return value

    def expect_word_or_star(self):
        kind, value = self._next()
        if kind not in ("word", "keyword"):
            raise PolicyError(f"expected a purpose, got {value!r}")
        return value

    def expect_number(self):
        kind, value = self._next()
        if kind != "number":
            raise PolicyError(f"expected a number, got {value!r}")
        return float(value)

    def expect_path(self):
        kind, value = self._next()
        if kind != "path":
            raise PolicyError(f"expected a path, got {value!r}")
        return parse_path(value)

    def expect_punct(self, char):
        kind, value = self._next()
        if kind != "punct" or value != char:
            raise PolicyError(f"expected {char!r}, got {value!r}")

    def accept_punct(self, char):
        kind, value = self._peek()
        if kind == "punct" and value == char:
            self.pos += 1
            return True
        return False
