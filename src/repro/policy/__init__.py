"""The privacy policy formulation framework (paper §3).

Three declarative languages, exactly as the paper prescribes, sharing one
DSL parser (:mod:`repro.policy.language`):

1. **user preferences** — how a person's data items may be shared, under
   which purpose and in which form (exact / range / aggregate / suppressed);
2. **privacy views** — what data in a source is private, and the most
   revealing form it may ever take;
3. **source policies** — purpose- and role-conditioned disclosure rules a
   requester's purpose statement is matched against.

:mod:`repro.policy.matching` performs the APPEL/P3P-style evaluation that
combines all three into one effective disclosure decision, and
:mod:`repro.policy.store` is the policy store kept both at sources and at
the mediation engine (paper §3 requires both copies).
"""

from repro.policy.model import (
    Decision,
    DisclosureForm,
    PolicyRule,
    PurposeTree,
    paths_overlap,
)
from repro.policy.views import PrivacyView
from repro.policy.source_policy import SourcePolicy
from repro.policy.preferences import UserPreferences
from repro.policy.language import parse_policy_document
from repro.policy.matching import combine, evaluate_request
from repro.policy.store import PolicyStore

__all__ = [
    "DisclosureForm",
    "PurposeTree",
    "PolicyRule",
    "Decision",
    "paths_overlap",
    "PrivacyView",
    "SourcePolicy",
    "UserPreferences",
    "parse_policy_document",
    "combine",
    "evaluate_request",
    "PolicyStore",
]
