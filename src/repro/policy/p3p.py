"""Server-centric P3P: policies shredded into tables, APPEL as SQL.

Reference [7] of the paper (Agrawal, Kiernan, Srikant, Xu — ICDE 2005)
implements W3C's Platform for Privacy Preferences by **shredding P3P
policies into a relational database** and **translating APPEL preferences
into SQL** executed against it.  This module reproduces that design on top
of our own relational engine:

* :class:`P3pPolicy` — a site's policy: statements of (data group,
  purposes, recipients, retention);
* :func:`shred_policies` — normalizes policies into a ``statements``
  table, one row per (policy, data group, purpose, recipient);
* :class:`AppelRule` / :class:`AppelPreferences` — a user's ordered
  accept/reject rules; evaluation compiles each rule to a
  :class:`~repro.relational.engine.SelectQuery` (inspectable via
  :meth:`AppelRule.to_query`) and runs it against the shredded store —
  matching the cited paper's architecture, not merely its outcome.

The mediation engine uses this when a *requester-side* service (not a data
subject) must check a source's published practices before sending data.
"""

from __future__ import annotations

from repro.errors import PolicyError
from repro.relational.catalog import Catalog
from repro.relational.engine import Aggregate, SelectQuery, execute
from repro.relational.expr import And, Comparison, InList, Not, TRUE
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table

PURPOSES = (
    "current", "admin", "develop", "tailoring", "pseudo-analysis",
    "pseudo-decision", "individual-analysis", "individual-decision",
    "contact", "historical", "telemarketing",
)
RECIPIENTS = ("ours", "delivery", "same", "other-recipient", "unrelated", "public")
RETENTIONS = (
    "no-retention", "stated-purpose", "legal-requirement",
    "business-practices", "indefinitely",
)

STATEMENTS_TABLE = "statements"


class P3pStatement:
    """One P3P statement: a data group with its use practices."""

    def __init__(self, data_group, purposes, recipients=("ours",),
                 retention="stated-purpose"):
        if not data_group:
            raise PolicyError("statement needs a data group")
        purposes = tuple(purposes)
        recipients = tuple(recipients)
        for purpose in purposes:
            if purpose not in PURPOSES:
                raise PolicyError(f"unknown P3P purpose {purpose!r}")
        for recipient in recipients:
            if recipient not in RECIPIENTS:
                raise PolicyError(f"unknown P3P recipient {recipient!r}")
        if retention not in RETENTIONS:
            raise PolicyError(f"unknown P3P retention {retention!r}")
        if not purposes or not recipients:
            raise PolicyError("statement needs ≥1 purpose and recipient")
        self.data_group = data_group
        self.purposes = purposes
        self.recipients = recipients
        self.retention = retention

    def __repr__(self):
        return (
            f"P3pStatement({self.data_group!r}, purposes={self.purposes}, "
            f"recipients={self.recipients}, retention={self.retention!r})"
        )


class P3pPolicy:
    """A site's P3P policy: a named bundle of statements."""

    def __init__(self, name, statements=()):
        if not name:
            raise PolicyError("policy needs a name")
        self.name = name
        self.statements = list(statements)

    def add(self, statement):
        """Append a :class:`P3pStatement`."""
        if not isinstance(statement, P3pStatement):
            raise PolicyError("expected a P3pStatement")
        self.statements.append(statement)
        return statement

    def __repr__(self):
        return f"P3pPolicy({self.name!r}, statements={len(self.statements)})"


def shred_policies(policies, catalog=None):
    """Shred policies into a normalized ``statements`` table.

    One row per (policy, data group, purpose, recipient) — the
    server-centric representation of the cited implementation.  Returns
    the catalog holding the table.
    """
    catalog = catalog or Catalog("p3p")
    schema = TableSchema(
        STATEMENTS_TABLE,
        [
            Column("policy", "text", nullable=False),
            Column("data_group", "text", nullable=False),
            Column("purpose", "text", nullable=False),
            Column("recipient", "text", nullable=False),
            Column("retention", "text", nullable=False),
        ],
    )
    table = Table(schema)
    for policy in policies:
        for statement in policy.statements:
            for purpose in statement.purposes:
                for recipient in statement.recipients:
                    table.insert({
                        "policy": policy.name,
                        "data_group": statement.data_group,
                        "purpose": purpose,
                        "recipient": recipient,
                        "retention": statement.retention,
                    })
    catalog.add(table)
    return catalog


class AppelRule:
    """One APPEL rule: reject (or accept) policies with bad practices.

    A *reject* rule fires when the policy contains **any** statement row
    about ``data_group`` (or any group, when None) whose purpose,
    recipient, or retention falls outside the allowed sets.  An *accept*
    rule fires when **no** such row exists.
    """

    def __init__(self, behavior, data_group=None, allowed_purposes=None,
                 allowed_recipients=None, allowed_retentions=None):
        if behavior not in ("accept", "reject"):
            raise PolicyError("rule behavior must be accept or reject")
        self.behavior = behavior
        self.data_group = data_group
        self.allowed_purposes = (
            tuple(allowed_purposes) if allowed_purposes is not None else None
        )
        self.allowed_recipients = (
            tuple(allowed_recipients) if allowed_recipients is not None else None
        )
        self.allowed_retentions = (
            tuple(allowed_retentions) if allowed_retentions is not None else None
        )
        if (
            self.allowed_purposes is None
            and self.allowed_recipients is None
            and self.allowed_retentions is None
        ):
            raise PolicyError("rule must constrain something")

    def to_query(self, policy_name):
        """The SQL (SelectQuery) counting this rule's violating rows.

        This is the "APPEL → SQL" translation of the cited paper: the
        rule matches iff the count is positive (reject) / zero (accept).
        """
        conditions = [Comparison("policy", "=", policy_name)]
        if self.data_group is not None:
            conditions.append(Comparison("data_group", "=", self.data_group))
        violation_parts = []
        if self.allowed_purposes is not None:
            violation_parts.append(Not(InList("purpose", self.allowed_purposes)))
        if self.allowed_recipients is not None:
            violation_parts.append(
                Not(InList("recipient", self.allowed_recipients))
            )
        if self.allowed_retentions is not None:
            violation_parts.append(
                Not(InList("retention", self.allowed_retentions))
            )
        from repro.relational.expr import Or

        violates = violation_parts[0] if len(violation_parts) == 1 else Or(
            violation_parts
        )
        where = And(conditions + [violates]) if conditions else violates
        return SelectQuery(
            STATEMENTS_TABLE,
            aggregates=[Aggregate("count", "*", alias="violations")],
            where=where,
        )

    def matches(self, catalog, policy_name):
        """Whether this rule fires for ``policy_name``."""
        result = execute(self.to_query(policy_name), catalog)
        violations = result.rows[0][0]
        return violations > 0 if self.behavior == "reject" else violations == 0

    def __repr__(self):
        return f"AppelRule({self.behavior}, group={self.data_group!r})"


class AppelPreferences:
    """A user's ordered APPEL ruleset (first match wins)."""

    def __init__(self, rules, default="reject"):
        if default not in ("accept", "reject"):
            raise PolicyError("default must be accept or reject")
        self.rules = list(rules)
        self.default = default

    def evaluate(self, catalog, policy_name):
        """``('accept'|'reject', matching rule or None)``.

        ``catalog`` is the shredded policy store.  Raises
        :class:`PolicyError` for unknown policies (no statements at all) —
        silence about practices is not acceptance.
        """
        known = execute(
            SelectQuery(
                STATEMENTS_TABLE,
                aggregates=[Aggregate("count", "*")],
                where=Comparison("policy", "=", policy_name),
            ),
            catalog,
        ).rows[0][0]
        if known == 0:
            raise PolicyError(f"no shredded statements for {policy_name!r}")
        for rule in self.rules:
            if rule.matches(catalog, policy_name):
                return rule.behavior, rule
        return self.default, None

    def acceptable(self, catalog, policy_name):
        """Boolean convenience wrapper over :meth:`evaluate`."""
        behavior, _rule = self.evaluate(catalog, policy_name)
        return behavior == "accept"
