"""Privacy views: the second language of §3 — what in a source is private.

A view lists path expressions marking private data, each with the most
revealing form the source will ever disclose it in.  Data not matched by
any view entry is public (EXACT).
"""

from __future__ import annotations

from repro.errors import PolicyError
from repro.policy.model import DisclosureForm, paths_overlap
from repro.xmlkit.path import PathExpr, parse_path


class PrivacyView:
    """A named set of (private path, maximum disclosure form) entries."""

    def __init__(self, name, entries=()):
        if not name:
            raise PolicyError("privacy view needs a name")
        self.name = name
        self.entries = []
        for path, form in entries:
            self.add(path, form)

    def add(self, path, form=DisclosureForm.SUPPRESSED):
        """Mark ``path`` private, disclosable at most as ``form``."""
        if isinstance(path, str):
            path = parse_path(path)
        if not isinstance(path, PathExpr):
            raise PolicyError("view entries need a PathExpr or path string")
        if not isinstance(form, DisclosureForm):
            raise PolicyError("view entries need a DisclosureForm")
        self.entries.append((path, form))

    def form_for(self, path):
        """Most revealing form ``path`` may take under this view.

        Data matched by several entries gets the most restrictive one;
        unmatched data is public (EXACT).
        """
        if isinstance(path, str):
            path = parse_path(path)
        matching = [
            form for view_path, form in self.entries
            if paths_overlap(view_path, path)
        ]
        if not matching:
            return DisclosureForm.EXACT
        return min(matching)

    def is_private(self, path):
        """Whether ``path`` touches any private entry."""
        return self.form_for(path) is not DisclosureForm.EXACT

    def private_paths(self):
        """The view's private paths (for mediated-schema pruning)."""
        return [path for path, _form in self.entries]

    def __repr__(self):
        return f"PrivacyView({self.name!r}, entries={len(self.entries)})"
