"""Source policies: the third language of §3.

An ordered rule list evaluated first-match-wins, with a configurable
default effect (deny, per least privilege).  "Data items in a source can be
shared only if the purpose statement of the requester satisfies the
policy."
"""

from __future__ import annotations

from repro.errors import PolicyError
from repro.policy.model import Decision, PolicyRule
from repro.xmlkit.path import parse_path


class SourcePolicy:
    """A source's ordered disclosure rules."""

    def __init__(self, source, rules=(), default_effect="deny"):
        if default_effect not in ("allow", "deny"):
            raise PolicyError("default effect must be allow or deny")
        self.source = source
        self.rules = list(rules)
        self.default_effect = default_effect

    def add_rule(self, rule):
        """Append a :class:`~repro.policy.model.PolicyRule`."""
        if not isinstance(rule, PolicyRule):
            raise PolicyError("expected a PolicyRule")
        self.rules.append(rule)
        return rule

    def decide(self, path, purpose, purposes, role=None):
        """First-match-wins decision for one requested path."""
        if isinstance(path, str):
            path = parse_path(path)
        for rule in self.rules:
            if rule.applies_to(path, purpose, purposes, role):
                if rule.effect == "deny":
                    return Decision.deny(
                        f"{self.source}: rule denies {path!r} for {purpose}"
                    )
                return Decision(
                    True,
                    rule.form,
                    rule.max_loss,
                    [f"{self.source}: {rule!r}"],
                )
        if self.default_effect == "allow":
            return Decision(True, reasons=[f"{self.source}: default allow"],
                            form=_exact(), max_loss=1.0)
        return Decision.deny(f"{self.source}: no rule matches (default deny)")

    def __repr__(self):
        return (
            f"SourcePolicy({self.source!r}, rules={len(self.rules)}, "
            f"default={self.default_effect})"
        )


def _exact():
    from repro.policy.model import DisclosureForm

    return DisclosureForm.EXACT
