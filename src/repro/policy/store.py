"""The policy store.

Section 3: policies live *both* at each remote source and at the mediation
engine — the source enforces before data leaves, the mediator re-verifies
the integrated result.  The store is therefore a plain registry that both
sides instantiate; :meth:`PolicyStore.replicate` produces the mediator's
copy.
"""

from __future__ import annotations

from repro.errors import PolicyError
from repro.policy.language import parse_policy_document
from repro.policy.model import PurposeTree
from repro.policy.preferences import UserPreferences
from repro.policy.source_policy import SourcePolicy
from repro.policy.views import PrivacyView


class PolicyStore:
    """Views, policies, and preferences indexed by owner."""

    def __init__(self, purposes=None):
        self.purposes = purposes or PurposeTree()
        self._views = {}          # source → PrivacyView
        self._policies = {}       # source → SourcePolicy
        self._preferences = {}    # subject → UserPreferences
        # Monotonic mutation counter: every registration bumps it, and
        # replicas inherit the value they were cloned at.  The mediation
        # cache derives its policy epoch from the per-source versions, so
        # any policy change anywhere invalidates affected cache entries
        # (see repro.cache.epochs).
        self.version = 0

    # -- registration -------------------------------------------------------

    def register_view(self, source, view):
        """Attach a privacy view to ``source``."""
        if not isinstance(view, PrivacyView):
            raise PolicyError("expected a PrivacyView")
        self._views[source] = view
        self.version += 1

    def register_policy(self, policy):
        """Attach a source policy (keyed by its ``source``)."""
        if not isinstance(policy, SourcePolicy):
            raise PolicyError("expected a SourcePolicy")
        self._policies[policy.source] = policy
        self.version += 1

    def register_preferences(self, preferences):
        """Attach a subject's preferences (keyed by ``subject``)."""
        if not isinstance(preferences, UserPreferences):
            raise PolicyError("expected UserPreferences")
        self._preferences[preferences.subject] = preferences
        self.version += 1

    def load_document(self, text, view_source=None):
        """Parse a DSL document and register everything it defines.

        Views are keyed by their own name unless ``view_source`` maps a
        view name to the source it belongs to.
        """
        document = parse_policy_document(text)
        mapping = view_source or {}
        for name, view in document.views.items():
            self.register_view(mapping.get(name, name), view)
        for policy in document.policies.values():
            self.register_policy(policy)
        for preferences in document.preferences.values():
            self.register_preferences(preferences)
        return document

    # -- lookup ---------------------------------------------------------------

    def view_for(self, source):
        """The source's privacy view, or None."""
        return self._views.get(source)

    def policy_for(self, source):
        """The source's policy, or None."""
        return self._policies.get(source)

    def preferences_for(self, subject):
        """The subject's preferences, or None."""
        return self._preferences.get(subject)

    def sources(self):
        """Sources that have a view or a policy registered."""
        return sorted(set(self._views) | set(self._policies))

    def replicate(self):
        """The mediator's copy (shares immutable purpose tree and objects)."""
        clone = PolicyStore(self.purposes)
        clone._views = dict(self._views)
        clone._policies = dict(self._policies)
        clone._preferences = dict(self._preferences)
        clone.version = self.version
        return clone

    def __repr__(self):
        return (
            f"PolicyStore(views={len(self._views)}, "
            f"policies={len(self._policies)}, "
            f"preferences={len(self._preferences)})"
        )
