"""APPEL/P3P-style evaluation: combining the three languages.

The effective disclosure decision for a request is the **most restrictive
combination** of everything that applies: the source's privacy view caps
the form, the source policy and the data subject's preferences must both
allow, and the granted loss budget is the minimum of all budgets.
"""

from __future__ import annotations

from repro.policy.model import Decision, DisclosureForm


def combine(*decisions):
    """Meet (most-restrictive combination) of several decisions.

    Any denial wins; otherwise form = min, max_loss = min, reasons
    concatenated.
    """
    decisions = [d for d in decisions if d is not None]
    if not decisions:
        return Decision.deny("no applicable policy")
    reasons = []
    for decision in decisions:
        if not decision.allowed:
            return Decision(False, DisclosureForm.SUPPRESSED, 0.0,
                            decision.reasons)
        reasons.extend(decision.reasons)
    form = min(d.form for d in decisions)
    max_loss = min(d.max_loss for d in decisions)
    if form is DisclosureForm.SUPPRESSED:
        return Decision(False, form, 0.0,
                        reasons + ["combined form is suppression"])
    return Decision(True, form, max_loss, reasons)


def evaluate_request(store, source, path, purpose, role=None, subjects=()):
    """Effective decision for one path requested from one source.

    ``store`` is a :class:`~repro.policy.store.PolicyStore`.  ``subjects``
    names the data subjects whose records the path touches (when known);
    each subject's preferences must also allow the disclosure.
    """
    parts = []

    policy = store.policy_for(source)
    if policy is not None:
        parts.append(policy.decide(path, purpose, store.purposes, role))

    view = store.view_for(source)
    if view is not None:
        form_cap = view.form_for(path)
        if form_cap is DisclosureForm.SUPPRESSED:
            parts.append(
                Decision.deny(f"{source}: privacy view suppresses {path!r}")
            )
        else:
            parts.append(
                Decision(True, form_cap, 1.0,
                         [f"{source}: view caps form at {form_cap.name.lower()}"])
            )

    for subject in subjects:
        preferences = store.preferences_for(subject)
        if preferences is not None:
            parts.append(preferences.decide(path, purpose, store.purposes))

    return combine(*parts)
