"""User preferences: the first language of §3.

A data subject states how each of their data items may be shared: under
which purpose, in which form, and how much privacy loss they tolerate.
Evaluation mirrors source policies (ordered rules, default deny), but the
subject's rules speak about *their* data wherever it is stored.
"""

from __future__ import annotations

from repro.errors import PolicyError
from repro.policy.model import Decision, PolicyRule
from repro.xmlkit.path import parse_path


class UserPreferences:
    """One subject's ordered sharing preferences."""

    def __init__(self, subject, rules=(), default_effect="deny"):
        if default_effect not in ("allow", "deny"):
            raise PolicyError("default effect must be allow or deny")
        self.subject = subject
        self.rules = list(rules)
        self.default_effect = default_effect

    def add_rule(self, rule):
        """Append a :class:`~repro.policy.model.PolicyRule`."""
        if not isinstance(rule, PolicyRule):
            raise PolicyError("expected a PolicyRule")
        self.rules.append(rule)
        return rule

    def decide(self, path, purpose, purposes):
        """The subject's decision for one of their data paths."""
        if isinstance(path, str):
            path = parse_path(path)
        for rule in self.rules:
            if rule.applies_to(path, purpose, purposes):
                if rule.effect == "deny":
                    return Decision.deny(
                        f"{self.subject}: preference denies {path!r} "
                        f"for {purpose}"
                    )
                return Decision(
                    True, rule.form, rule.max_loss, [f"{self.subject}: {rule!r}"]
                )
        if self.default_effect == "allow":
            from repro.policy.model import DisclosureForm

            return Decision(
                True, DisclosureForm.EXACT, 1.0,
                [f"{self.subject}: default allow"],
            )
        return Decision.deny(
            f"{self.subject}: no preference matches (default deny)"
        )

    def __repr__(self):
        return (
            f"UserPreferences({self.subject!r}, rules={len(self.rules)}, "
            f"default={self.default_effect})"
        )
