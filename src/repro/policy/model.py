"""Core policy vocabulary: purposes, disclosure forms, rules, decisions."""

from __future__ import annotations

import enum
from functools import total_ordering

from repro.errors import PolicyError
from repro.xmlkit.path import PathExpr, parse_path

ANY_PURPOSE = "*"

_DEFAULT_PURPOSES = {
    # child: parent — the default purpose taxonomy used across examples.
    "treatment": "healthcare",
    "payment": "healthcare",
    "research": None,
    "public-health-research": "research",
    "outbreak-surveillance": "public-health-research",
    "drug-discovery": "research",
    "healthcare": None,
    "marketing": None,
    "national-security": None,
    "fraud-detection": "national-security",
}


@total_ordering
class DisclosureForm(enum.Enum):
    """How much a released value reveals, most to least.

    A grant of some form also permits every *less* revealing form: a rule
    allowing RANGE permits range or aggregate or suppressed release, never
    exact values.
    """

    EXACT = 3
    RANGE = 2
    AGGREGATE = 1
    SUPPRESSED = 0

    def permits(self, requested):
        """Whether data granted at this form may be released as ``requested``."""
        return requested.value <= self.value

    def __lt__(self, other):
        if not isinstance(other, DisclosureForm):
            return NotImplemented
        return self.value < other.value

    @classmethod
    def parse(cls, text):
        """Parse a form name (case-insensitive)."""
        try:
            return cls[text.strip().upper()]
        except KeyError as exc:
            raise PolicyError(f"unknown disclosure form {text!r}") from exc


class PurposeTree:
    """A purpose taxonomy with implication (specific ⇒ general).

    ``implies(specific, general)`` is true when ``specific`` equals
    ``general`` or descends from it — a rule allowing *research* is
    satisfied by a request stating *outbreak-surveillance*.
    """

    def __init__(self, parents=None):
        self._parents = dict(_DEFAULT_PURPOSES if parents is None else parents)
        for child, parent in self._parents.items():
            if parent is not None and parent not in self._parents:
                raise PolicyError(
                    f"purpose {child!r} has unknown parent {parent!r}"
                )

    def add(self, purpose, parent=None):
        """Register a purpose (optionally under ``parent``)."""
        if purpose in self._parents:
            raise PolicyError(f"purpose {purpose!r} already defined")
        if parent is not None and parent not in self._parents:
            raise PolicyError(f"unknown parent purpose {parent!r}")
        self._parents[purpose] = parent

    def known(self, purpose):
        """Whether ``purpose`` is in the taxonomy."""
        return purpose in self._parents

    def implies(self, specific, general):
        """True when a request for ``specific`` satisfies a rule for ``general``."""
        if general == ANY_PURPOSE:
            return True
        if not self.known(specific):
            raise PolicyError(f"unknown purpose {specific!r}")
        if not self.known(general):
            raise PolicyError(f"unknown purpose {general!r}")
        current = specific
        while current is not None:
            if current == general:
                return True
            current = self._parents[current]
        return False

    def ancestors(self, purpose):
        """The chain from ``purpose`` up to its root (inclusive)."""
        if not self.known(purpose):
            raise PolicyError(f"unknown purpose {purpose!r}")
        chain = []
        current = purpose
        while current is not None:
            chain.append(current)
            current = self._parents[current]
        return chain


class PolicyRule:
    """One disclosure rule.

    ``effect`` is ``'allow'`` or ``'deny'``; ``path`` the data it covers;
    ``purpose`` the most general purpose it applies to (``'*'`` = any);
    ``form`` the most revealing permitted form; ``max_loss`` the privacy
    loss budget granted; ``roles`` restricts to requester roles when given.
    """

    def __init__(self, effect, path, purpose=ANY_PURPOSE,
                 form=DisclosureForm.EXACT, max_loss=1.0, roles=None):
        if effect not in ("allow", "deny"):
            raise PolicyError(f"rule effect must be allow/deny, got {effect!r}")
        if isinstance(path, str):
            path = parse_path(path)
        if not isinstance(path, PathExpr):
            raise PolicyError("rule path must be a PathExpr or path string")
        if not isinstance(form, DisclosureForm):
            raise PolicyError("rule form must be a DisclosureForm")
        if not 0.0 <= max_loss <= 1.0:
            raise PolicyError("max_loss must be in [0, 1]")
        self.effect = effect
        self.path = path
        self.purpose = purpose
        self.form = form
        self.max_loss = max_loss
        self.roles = frozenset(roles) if roles else None

    def applies_to(self, path, purpose, purposes, role=None):
        """Whether this rule governs the given request."""
        if not paths_overlap(self.path, path):
            return False
        if self.purpose != ANY_PURPOSE and not purposes.implies(
            purpose, self.purpose
        ):
            return False
        if self.roles is not None and role not in self.roles:
            return False
        return True

    def __repr__(self):
        role_part = f" ROLES {sorted(self.roles)}" if self.roles else ""
        return (
            f"{self.effect.upper()} {self.path!r} FOR {self.purpose} "
            f"FORM {self.form.name.lower()} MAXLOSS {self.max_loss}{role_part}"
        )


class Decision:
    """The outcome of evaluating a request against policies."""

    __slots__ = ("allowed", "form", "max_loss", "reasons")

    def __init__(self, allowed, form=DisclosureForm.SUPPRESSED, max_loss=0.0,
                 reasons=()):
        self.allowed = allowed
        self.form = form
        self.max_loss = max_loss
        self.reasons = list(reasons)

    @classmethod
    def deny(cls, reason):
        """A denial with an explanation."""
        return cls(False, DisclosureForm.SUPPRESSED, 0.0, [reason])

    def __repr__(self):
        if not self.allowed:
            return f"Decision(DENY: {'; '.join(self.reasons)})"
        return (
            f"Decision(ALLOW form={self.form.name.lower()} "
            f"max_loss={self.max_loss})"
        )


def paths_overlap(policy_path, request_path):
    """Whether a policy path governs a requested path.

    Two paths overlap when their final name tests agree (or either is
    ``*``) and the non-wildcard tag names of one appear, in order, within
    the other's — so the policy ``//patient/dob`` covers the request
    ``/clinic/patient/dob`` and the request ``//dob``, but not
    ``//physician/license``.
    """
    tags_a = [s.name for s in policy_path.steps]
    tags_b = [s.name for s in request_path.steps]
    last_a, last_b = tags_a[-1], tags_b[-1]
    if last_a != "*" and last_b != "*" and last_a != last_b:
        return False
    shorter, longer = sorted((tags_a, tags_b), key=len)
    shorter = [t for t in shorter if t != "*"]
    longer = [t for t in longer if t != "*"]
    position = 0
    for tag in shorter:
        try:
            position = longer.index(tag, position) + 1
        except ValueError:
            return False
    return True
