"""Named epoch counters — the cache's invalidation currency.

The safety argument of :mod:`repro.cache` (see ``docs/performance.md``)
is that *reusing a disclosure-checked artifact is safe exactly when the
reuse key captures the policy state it was checked under*.  Epochs are
how that state is captured without hashing whole policy stores on every
query: every mutating event bumps a named counter —

* ``policy`` — derived from the per-source policy-store versions (the
  engine sums them; see ``MediationEngine._policy_epoch``);
* ``schema`` — bumped when a source is registered (the mediated schema,
  and therefore every fragmentation plan, changes);
* ``requester:<name>`` — bumped when that requester's auditing state
  advances (a *novel* aggregate probe signature), so only their own
  cached answers are invalidated.

Cached entries carry the ``(name, value)`` vector they were computed
under; a lookup whose current vector differs is an invalidation, never a
hit.  Counters only ever increase, so a stale entry can never validate
again — there is no ABA problem.

Bumps are *observable*: every ``bump()`` emits a ``cache.epoch_bump``
telemetry event and notifies subscribed listeners, so external stores
(the :mod:`repro.persistence` write-ahead log, the observatory) see
each advance the moment it happens instead of polling ``to_dict()``.
Recovery restores counters with :meth:`EpochRegistry.restore_floor`
(a max, never an assignment), so a rebuilt registry can only
over-invalidate relative to the pre-crash one — the safe direction.
"""

from __future__ import annotations

import threading

from repro.telemetry.events import NOOP_EVENTS


class EpochRegistry:
    """Monotonic named counters, safe to bump/read from any thread.

    Durability contract: the registry itself is process-local, but
    every bump is pushed to listeners *after* the counter lock is
    released (so a listener that persists — or raises — can never
    deadlock the registry), and :meth:`restore_floor` lets recovery
    replay persisted bumps without ever moving a counter backwards.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters = {}
        self._listeners = []
        #: Event log ``cache.epoch_bump`` events land in; the owning
        #: :class:`~repro.cache.mediation.MediationCache` points this
        #: at the engine's telemetry.
        self.events = NOOP_EVENTS

    def current(self, name):
        """The counter's current value (0 if never bumped)."""
        with self._lock:
            return self._counters.get(name, 0)

    def bump(self, name):
        """Advance the counter; returns the new value.

        Emits ``cache.epoch_bump`` and notifies every subscriber
        outside the lock.  A subscriber that raises (e.g. a durability
        failure in the write-ahead log) propagates to the bumper — an
        unrecorded invalidation must fail loudly, not silently diverge
        from the persisted stream.
        """
        with self._lock:
            value = self._counters.get(name, 0) + 1
            self._counters[name] = value
        self.events.emit("cache.epoch_bump", epoch=name, value=value)
        for listener in list(self._listeners):
            listener(name, value)
        return value

    def subscribe(self, listener):
        """Register ``listener(name, value)`` to run after every bump.

        This is how the persistence sink records bumps write-ahead
        (see :meth:`repro.persistence.PersistenceSink.bind`) — no
        polling, no missed advances.  Returns the listener for
        chaining.
        """
        with self._lock:
            self._listeners.append(listener)
        return listener

    def restore_floor(self, name, value):
        """Raise the counter to at least ``value`` (recovery path).

        A max, never an assignment: counters bumped during rebuild
        (source registration bumps ``schema`` before recovery runs)
        are never rolled back, and replaying persisted bumps is
        idempotent.  Listeners are *not* notified — the restored
        values came from the store in the first place.  Returns the
        resulting value.
        """
        with self._lock:
            current = self._counters.get(name, 0)
            restored = max(current, int(value))
            self._counters[name] = restored
            return restored

    def snapshot(self, names):
        """An immutable ``((name, value), ...)`` vector for ``names``."""
        with self._lock:
            return tuple(
                (name, self._counters.get(name, 0)) for name in names
            )

    def to_dict(self):
        """Every counter, as a plain dict (for explain/debugging)."""
        with self._lock:
            return dict(self._counters)

    def __repr__(self):
        with self._lock:
            return f"EpochRegistry({dict(self._counters)})"
