"""Named epoch counters — the cache's invalidation currency.

The safety argument of :mod:`repro.cache` (see ``docs/performance.md``)
is that *reusing a disclosure-checked artifact is safe exactly when the
reuse key captures the policy state it was checked under*.  Epochs are
how that state is captured without hashing whole policy stores on every
query: every mutating event bumps a named counter —

* ``policy`` — derived from the per-source policy-store versions (the
  engine sums them; see ``MediationEngine._policy_epoch``);
* ``schema`` — bumped when a source is registered (the mediated schema,
  and therefore every fragmentation plan, changes);
* ``requester:<name>`` — bumped when that requester's auditing state
  advances (a *novel* aggregate probe signature), so only their own
  cached answers are invalidated.

Cached entries carry the ``(name, value)`` vector they were computed
under; a lookup whose current vector differs is an invalidation, never a
hit.  Counters only ever increase, so a stale entry can never validate
again — there is no ABA problem.
"""

from __future__ import annotations

import threading


class EpochRegistry:
    """Monotonic named counters, safe to bump/read from any thread."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters = {}

    def current(self, name):
        """The counter's current value (0 if never bumped)."""
        with self._lock:
            return self._counters.get(name, 0)

    def bump(self, name):
        """Advance the counter; returns the new value."""
        with self._lock:
            value = self._counters.get(name, 0) + 1
            self._counters[name] = value
            return value

    def snapshot(self, names):
        """An immutable ``((name, value), ...)`` vector for ``names``."""
        with self._lock:
            return tuple(
                (name, self._counters.get(name, 0)) for name in names
            )

    def to_dict(self):
        """Every counter, as a plain dict (for explain/debugging)."""
        with self._lock:
            return dict(self._counters)

    def __repr__(self):
        with self._lock:
            return f"EpochRegistry({dict(self._counters)})"
