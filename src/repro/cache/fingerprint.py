"""Canonical plan fingerprints — tier 1 of the mediation cache.

Two ``pose()`` calls may reuse each other's work only when *everything*
that can change the answer is identical.  The fingerprint is a stable
hash over exactly that closure:

* the **canonical PIQL text** — the query rendered by
  :func:`repro.query.language.to_piql` with the WHERE conjuncts sorted
  (AND is commutative, so ``a AND b`` and ``b AND a`` must collide;
  SELECT order is preserved because it shapes the output rows);
* the **requester** and **role** — RBAC and preferences can give two
  requesters different answers to the same text;
* the sorted **subjects** — subject consent changes per-column decisions;
* the **policy epoch** — the sum of per-source policy-store versions, so
  any policy registration anywhere produces a fresh key (old entries are
  then unreachable and age out of the LRU).

The hash is content-addressed (sha256) rather than the tuple itself so
warehouse keys stay short, loggable, and free of query text — a
materialized-keys listing discloses nothing about past queries.
"""

from __future__ import annotations

import hashlib

from repro.query.language import to_piql

#: Unit separator — cannot appear in rendered PIQL, so joined fields
#: cannot collide by concatenation.
_FIELD_SEP = "\x1f"


def canonical_piql(query):
    """Render ``query`` with its WHERE conjuncts in canonical order.

    Returns PIQL text such that queries differing only in conjunct
    order render identically.  The input query is never mutated.
    """
    ordered = sorted(query.where, key=repr)
    if ordered != query.where:
        query = query.clone(where=ordered)
    return to_piql(query)


def plan_fingerprint(canonical, requester=None, role=None, subjects=(),
                     policy_epoch=0):
    """A stable hex fingerprint of one (query, principal, policy state).

    ``canonical`` is the output of :func:`canonical_piql`.  Identical
    inputs always produce the identical fingerprint across processes and
    runs (no randomized hashing), which is what makes warehouse keys
    comparable in persisted explain ledgers and benchmarks.
    """
    material = _FIELD_SEP.join((
        canonical,
        "" if requester is None else str(requester),
        "" if role is None else str(role),
        ",".join(sorted(str(subject) for subject in subjects)),
        str(policy_epoch),
    ))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:32]
