"""A thread-safe LRU cache with TTL, validity callbacks, and stats.

This is the storage primitive of every tier in :mod:`repro.cache`: a
bounded :class:`collections.OrderedDict` guarded by one lock, with

* **LRU eviction** — inserts beyond ``max_entries`` evict the least
  recently used entry (``get`` refreshes recency);
* **TTL expiry** — entries older than ``ttl`` seconds (by the injectable
  ``clock``; defaults to :func:`time.monotonic`, tests pass a fake) are
  dropped on access;
* **validity callbacks** — ``get(key, validator=...)`` lets callers
  attach a per-lookup freshness predicate (the warehouse compares epoch
  vectors this way), and a failing entry is *removed*, not just skipped,
  so stale results cannot resurface;
* **stats** — hits/misses/evictions/expirations/invalidations are
  tracked per tier and mirrored into ``mediator.cache.<tier>.*``
  counters when telemetry is enabled.

Metric emission happens *after* the lock is released: the metrics
registry has its own locks and nesting them invites ordering bugs.

Why the distinction between *expiration* and *invalidation* matters:
expiry is time passing (benign, expected), invalidation is the privacy
state moving underneath the entry (policy change, schema change, audit
state advance) — the differential tests assert on them separately.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

from repro.errors import CacheError
from repro.telemetry import NOOP

#: Default per-tier capacity — generous for test deployments, bounded
#: enough that a scan of distinct queries cannot exhaust memory.
DEFAULT_MAX_ENTRIES = 512


class CacheStats:
    """Counters for one cache tier (mutated under the owning cache's lock)."""

    __slots__ = ("hits", "misses", "evictions", "expirations",
                 "invalidations")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidations = 0

    def to_dict(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
        }

    def __repr__(self):
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, expirations={self.expirations}, "
            f"invalidations={self.invalidations})"
        )


class _Entry:
    __slots__ = ("value", "stored_at")

    def __init__(self, value, stored_at):
        self.value = value
        self.stored_at = stored_at


class LRUCache:
    """One bounded, observable cache tier."""

    def __init__(self, name, max_entries=DEFAULT_MAX_ENTRIES, ttl=None,
                 clock=time.monotonic, telemetry=None,
                 metric_prefix="mediator.cache"):
        if max_entries < 1:
            raise CacheError(
                f"cache tier {name!r} needs max_entries >= 1, "
                f"got {max_entries}"
            )
        if ttl is not None and ttl <= 0:
            raise CacheError(
                f"cache tier {name!r} needs a positive ttl or None, "
                f"got {ttl}"
            )
        self.name = name
        self.max_entries = max_entries
        self.ttl = ttl
        self._clock = clock
        self._metric_prefix = metric_prefix
        self._lock = threading.Lock()
        self._entries = OrderedDict()
        self.stats = CacheStats()
        # Reassigned by the owning engine so tier counters land in the
        # deployment-wide registry; NOOP costs one attribute lookup.
        self.telemetry = telemetry or NOOP

    # -- access --------------------------------------------------------------

    def get(self, key, validator=None):
        """Look up ``key``; returns ``(value, hit)``.

        ``validator`` (optional) receives the cached value and returns
        whether it is still usable; a falsy verdict removes the entry and
        counts an invalidation.  Expired entries count an expiration.
        Either way the lookup is then a miss.
        """
        events = []
        value, hit = None, False
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                events.append("misses")
            elif (self.ttl is not None
                    and self._clock() - entry.stored_at > self.ttl):
                del self._entries[key]
                self.stats.expirations += 1
                self.stats.misses += 1
                events.extend(("expirations", "misses"))
            elif validator is not None and not validator(entry.value):
                del self._entries[key]
                self.stats.invalidations += 1
                self.stats.misses += 1
                events.extend(("invalidations", "misses"))
            else:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                events.append("hits")
                value, hit = entry.value, True
        self._emit(events)
        return value, hit

    def put(self, key, value):
        """Insert/replace ``key`` and evict past ``max_entries`` (LRU)."""
        events = []
        with self._lock:
            self._entries[key] = _Entry(value, self._clock())
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                events.append("evictions")
        self._emit(events)
        return value

    def memoize(self, key, compute, validator=None):
        """``get`` or ``compute()``-and-``put``; returns ``(value, hit)``.

        ``compute`` runs *outside* the lock (it may fan out to sources);
        concurrent misses on the same key may therefore compute twice and
        last-write-wins — the same semantics a plain dict cache had, but
        bounded and accounted.  If ``compute`` raises, nothing is stored.
        """
        value, hit = self.get(key, validator)
        if hit:
            return value, True
        return self.put(key, compute()), False

    def peek(self, key):
        """The entry's value without touching recency or stats (or None)."""
        with self._lock:
            entry = self._entries.get(key)
            return entry.value if entry is not None else None

    # -- invalidation --------------------------------------------------------

    def invalidate(self, key):
        """Drop one key; returns whether it was present."""
        events = []
        with self._lock:
            present = self._entries.pop(key, None) is not None
            if present:
                self.stats.invalidations += 1
                events.append("invalidations")
        self._emit(events)
        return present

    def invalidate_where(self, predicate):
        """Drop every entry where ``predicate(key, value)``; returns count."""
        events = []
        with self._lock:
            doomed = [
                key for key, entry in self._entries.items()
                if predicate(key, entry.value)
            ]
            for key in doomed:
                del self._entries[key]
                self.stats.invalidations += 1
                events.append("invalidations")
        self._emit(events)
        return len(doomed)

    def clear(self):
        """Drop everything; returns how many entries were dropped."""
        events = []
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += dropped
            events.extend(["invalidations"] * dropped)
        self._emit(events)
        return dropped

    # -- inspection ----------------------------------------------------------

    def keys(self):
        """Current keys, least recently used first."""
        with self._lock:
            return list(self._entries)

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __contains__(self, key):
        with self._lock:
            return key in self._entries

    def snapshot(self):
        """Stats plus current size, as a plain dict."""
        with self._lock:
            info = self.stats.to_dict()
            info["entries"] = len(self._entries)
            info["max_entries"] = self.max_entries
            info["ttl"] = self.ttl
        return info

    def _emit(self, events):
        if not events:
            return
        metrics = self.telemetry.metrics
        for event in events:
            metrics.counter(
                f"{self._metric_prefix}.{self.name}.{event}"
            ).inc()

    def __repr__(self):
        return (
            f"LRUCache({self.name!r}, entries={len(self)}/"
            f"{self.max_entries}, ttl={self.ttl})"
        )
